#!/usr/bin/env python3
"""Hotspot-aware routing: heat tracking + hot-destination replication.

Consistent-hash routing pins every destination cluster to one shard —
great for cache locality, terrible when the workload is skewed: a few
popular destinations (a flash-crowd CDN site, a prefix under
diagnosis) can pile 90% of the traffic onto one worker while the rest
of the fleet idles. Because the delta broadcast keeps *every* shard on
the same graph version, spreading a hot destination is pure routing
policy — any shard answers bit-for-bit identically.

This example:

1. stands up a 4-shard service with a ``HeatTracker`` (sliding
   logical-op windows + EMA decay, promote/demote hysteresis),
2. drives a 90%-skewed workload at three destinations owned by one
   shard and watches them get promoted to the hot set,
3. shows the replica fan-out: the hot stream spreads across the ring
   successors (least-loaded pick per query) while answers stay
   identical to the pinned oracle,
4. shifts the traffic away and watches heat decay demote the
   destinations back to pinned routing.

Run:  python examples/hot_destination.py
"""

from repro.client import AtlasServer
from repro.eval import get_scenario


def main() -> None:
    scenario = get_scenario("small")
    server = AtlasServer()
    server.publish(scenario.atlas(day=0))
    prefixes = sorted(scenario.atlas(0).prefix_to_cluster)

    heat_config = dict(
        window=64,  # logical ops per heat window (no wall clocks)
        alpha=0.5,  # EMA weight of the freshest window
        promote_threshold=8.0,  # heat to enter the hot set
        demote_threshold=2.0,  # hysteresis: decay below this to leave
        replicas=4,  # ring successors a hot destination fans to
    )
    with server.serve(n_shards=4, heat=heat_config) as service:
        # three destinations that all hash to the same shard: the
        # worst-case pin for a skewed workload
        owner = service.shard_of_destination(prefixes[0])
        hot_dsts = [
            p for p in prefixes if service.shard_of_destination(p) == owner
        ][:3]
        srcs = prefixes[:16]
        hot_pairs = [(s, d) for d in hot_dsts for s in srcs]
        print(
            f"== {len(hot_dsts)} hot destinations, all pinned to "
            f"shard {owner} =="
        )

        # Phase 1: the skewed stream. Every query records heat for its
        # destination cluster; full windows EMA-decay and promote.
        for _ in range(4):
            service.predict_batch(hot_pairs)
        snap = service.heat.snapshot()
        print(
            f"  after {snap['heat.records']} records: "
            f"{snap['heat.hot_destinations']} hot "
            f"({snap['heat.promotions']} promotions)"
        )
        replicas = service.replicas_of_destination(hot_dsts[0])
        print(f"  replica set of dst {hot_dsts[0]}: shards {replicas}")

        # The spread is observable per shard — and free of correctness
        # cost: replicas answer from the same broadcast-synced graph.
        oracle = server.predict_batch(hot_pairs)
        got = service.predict_batch(hot_pairs)
        moved = [s["pairs"] for s in service.shard_stats()]
        print(f"  per-shard pairs handled: {moved}")
        print(f"  replica-routed queries: {service.stats['replica_routed']}")
        print(f"  bit-for-bit with single-process oracle: {got == oracle}")

        # Phase 2: the crowd moves on. Heat halves every window with no
        # traffic; hysteresis keeps membership stable until the decay
        # crosses the demote threshold.
        cold_dsts = [p for p in prefixes if p not in hot_dsts]
        for _ in range(8):
            service.predict_batch([(s, cold_dsts[0]) for s in srcs] * 4)
        snap = service.heat.snapshot()
        print(
            f"  after the shift: {snap['heat.demotions']} demotions; "
            f"{snap['heat.hot_destinations']} hot (the crowd's new "
            "target promoted in its place)"
        )
        print(
            f"  dst {hot_dsts[0]} routes to "
            f"{service.replicas_of_destination(hot_dsts[0])} (pinned again)"
        )

        # The front-end's load telemetry (also on the wire via
        # FLAG_STATS through a gateway).
        load = service.load_stats()
        print(
            f"  load: queue_depth={load['queue_depth']} "
            f"inflight={load['inflight']} "
            f"req p50={load['req_p50_us']:.0f}us "
            f"p99={load['req_p99_us']:.0f}us"
        )


if __name__ == "__main__":
    main()
