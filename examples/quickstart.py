#!/usr/bin/env python3
"""Quickstart: stand up iNano end to end and query it.

This walks the whole life of the system on a synthetic Internet:

1. generate a ground-truth topology,
2. run the measurement campaign (traceroutes from PlanetLab-like vantage
   points, alias resolution, PoP clustering, BGP feeds),
3. build the compact link-level atlas and publish it on the central server,
4. start a *client* that swarms the atlas down, runs its own daily
   traceroutes, and serves path queries locally,
5. query paths/latency/loss between arbitrary prefixes and compare with
   the ground truth.

Run:  python examples/quickstart.py
"""

from repro.client import AtlasServer, INanoClient
from repro.eval import get_scenario
from repro.util.compression import megabytes
from repro.util.ids import PrefixId

def main() -> None:
    # Steps 1-3 are packaged as a scenario preset (see repro.eval.scenarios
    # for the full pipeline spelled out).
    scenario = get_scenario("small")
    atlas = scenario.atlas(day=0)
    print("== atlas built ==")
    for name, count in atlas.entry_counts().items():
        print(f"  {name:24s} {count:7d} entries")

    server = AtlasServer()
    server.publish(atlas)
    payload = server.full_atlas_bytes()
    print(f"  encoded atlas: {megabytes(len(payload)):.3f} MB")

    # Step 4: a client at one of the held-out end hosts.
    source = scenario.validation_set().sources[0]
    client = INanoClient(
        server,
        vantage=source.vantage,
        measurement_toolkit=scenario.simulator(0),
        cluster_map=scenario.cluster_map(0),
    )
    client.fetch()
    n = client.measure(n_prefixes=30)
    print(f"\n== client at {source.vantage.name} "
          f"(prefix {PrefixId(source.vantage.prefix_index)}) ==")
    print(f"  issued {n} daily traceroutes; "
          f"{len(client.from_src_links)} FROM_SRC links")

    # Step 5: queries.
    engine = scenario.engine(0)
    print("\n== queries ==")
    shown = 0
    for dst in source.validation_targets:
        info = client.query_or_none(source.vantage.prefix_index, dst)
        if info is None:
            continue
        true_rtt = scenario.true_rtt_ms(source.vantage.prefix_index, dst)
        true_as = engine.as_path_between(source.vantage.prefix_index, dst)
        print(f"  -> {PrefixId(dst)}")
        print(f"     predicted AS path {info.as_path}  (truth {true_as})")
        print(f"     predicted RTT {info.rtt_ms:7.1f} ms  (truth {true_rtt:7.1f} ms)")
        print(f"     predicted loss {info.loss_round_trip:6.3f}   "
              f"MOS {info.mos():.2f}   "
              f"TCP {info.tcp_throughput_bps() * 8 / 1e6:.2f} Mbit/s")
        shown += 1
        if shown >= 5:
            break

if __name__ == "__main__":
    main()
