#!/usr/bin/env python3
"""Quickstart: the sharded multi-process prediction service.

A single ``AtlasRuntime`` caps prediction throughput at one core. This
example stands up the scale-out path instead:

1. build and publish an atlas on the central server,
2. ``server.serve(n_shards=...)`` — compile the CSR once, export it to
   shared memory, and spawn N shard worker processes that map it
   zero-copy (no per-worker compile, one physical copy of the graph),
3. route queries through the front-end: consistent-hash fan-out by
   destination cluster, request coalescing windows, batched fan-out,
4. publish the next day and broadcast the binary delta — every worker
   patches its arrays in place and the fleet converges on one graph
   version (verified by cross-process fingerprints),
5. register a measuring client's FROM_SRC plane on every shard.

Run:  python examples/sharded_service.py
"""

import time

from repro.client import AtlasServer, ClientConfig, INanoClient
from repro.core.predictor import PredictorConfig
from repro.eval import get_scenario


def main() -> None:
    scenario = get_scenario("small")
    server = AtlasServer()
    server.publish(scenario.atlas(day=0))
    print("== atlas published (day 0) ==")

    # Spawn the fleet: one AtlasRuntime + predictor pool per shard
    # worker, all mapping one shared-memory CSR export.
    with server.serve(n_shards=2) as service:
        print(
            f"  {service.n_shards} shard workers over "
            f"{service.shared_bytes / 2**20:.2f} MB of shared CSR"
        )

        prefixes = sorted(scenario.atlas(0).prefix_to_cluster)
        pairs = [(s, d) for s in prefixes[:8] for d in prefixes[8:24]]

        # Batched fan-out: pairs are grouped per destination shard and
        # all involved shards work concurrently.
        start = time.perf_counter()
        paths = service.predict_batch(pairs)
        elapsed = time.perf_counter() - start
        answered = sum(1 for p in paths if p is not None)
        print(
            f"  predict_batch: {answered}/{len(pairs)} answered "
            f"in {elapsed * 1000:.1f} ms"
        )

        # Coalescing window: duplicate submissions share one wire slot,
        # same-destination queries ride one kernel search worker-side.
        futures = [service.submit(prefixes[0], prefixes[9]) for _ in range(5)]
        service.flush()
        print(
            f"  coalescing: 5 submits -> "
            f"{service.stats['coalesced']} coalesced, "
            f"result: {futures[0].result() is not None}"
        )

        # Two-way PathInfos (forward by destination shard, reverse by
        # source shard), same payload a co-located client would build.
        info = service.query(prefixes[2], prefixes[11])
        if info is not None:
            print(
                f"  query: rtt={info.rtt_ms:.1f} ms "
                f"loss={info.loss_round_trip:.3f} day={info.atlas_day}"
            )

        # A measuring client: its FROM_SRC plane merges onto the shared
        # base on every shard (bit-for-bit with the co-located path).
        source = scenario.validation_set().sources[0]
        client = INanoClient(
            server,
            vantage=source.vantage,
            measurement_toolkit=scenario.simulator(0),
            cluster_map=scenario.cluster_map(0),
            config=ClientConfig(use_swarm=False),
            shared_runtime=server.runtime(),
        )
        client.fetch()
        client.measure(n_prefixes=20)
        service.register_client(
            "edge-client",
            client.from_src_links,
            client_cluster_as=client.cluster_map.cluster_asn,
            from_src_prefixes={source.vantage.prefix_index},
            rev=client._from_src_rev,
        )
        mine = service.query_batch(
            [(source.vantage.prefix_index, d) for d in prefixes[30:36]],
            config=PredictorConfig.inano(),
            client="edge-client",
        )
        print(f"  measuring client: {sum(1 for i in mine if i)} answered")

        # Day 2: publish, then broadcast the binary delta to the fleet.
        server.publish(scenario.atlas(day=1))
        applied = service.sync_from(server)
        print(
            f"  delta broadcast: {applied} day(s) applied, "
            f"fleet converged={service.converged()}, now at day {service.day}"
        )
        print(f"  front-end stats: {service.stats}")
        for stats in service.shard_stats():
            print(f"    shard {stats['shard']}: {stats}")


if __name__ == "__main__":
    main()
