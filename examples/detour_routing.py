#!/usr/bin/env python3
"""Routing around failures with iNano path predictions (Section 7.3).

When a destination becomes unreachable, a host can relay its traffic
through another end host (detour routing). Picking detours whose
*predicted* paths are maximally disjoint from the broken direct path
roughly halves residual unreachability versus picking detours at random —
without sending a single extra probe.

This example injects partial outages near destinations (some sources cut
off, others fine — the paper's >=10%/>=10% criterion), then compares the
two detour-ranking strategies as a function of how many detours a source
is willing to try.

Run:  python examples/detour_routing.py
"""

from repro.apps.detour import DetourExperiment
from repro.eval import get_scenario
from repro.eval.reporting import render_table
from repro.routing.failures import sample_failures
from repro.util.rng import derive_rng

def main() -> None:
    scenario = get_scenario("small")
    engine = scenario.engine(0)
    topo = scenario.topology(0)
    prefixes = scenario.all_prefixes()
    rng = derive_rng(23, "example.detour")

    hosts = [int(p) for p in rng.choice(prefixes, size=30, replace=False)]
    events = []
    for dst in hosts[:12]:
        sources = [h for h in hosts if h != dst]
        sampled = sample_failures(topo, engine, dst, sources, seed=dst)
        if sampled is None:
            continue
        scenario_obj, cut_sources, _ = sampled
        for src in cut_sources[:2]:
            candidates = [h for h in hosts if h not in (src, dst)]
            events.append((scenario_obj, src, dst, candidates))

    experiment = DetourExperiment(
        engine=engine, predictor=scenario.shared_predictor(), max_detours=6
    )
    result = experiment.run(events)

    rows = []
    for n in range(1, 7):
        rows.append((
            n,
            f"{result.unreachable_fraction('inano_disjoint', n):.3f}",
            f"{result.unreachable_fraction('random', n):.3f}",
        ))
    print(render_table(
        f"Unreachable fraction vs detours tried ({result.n_events} failure events)",
        ["N detours", "iNano disjoint", "random"],
        rows,
    ))

if __name__ == "__main__":
    main()
