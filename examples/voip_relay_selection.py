#!/usr/bin/env python3
"""VoIP relay selection with iNano (the paper's Section 7.2 case study).

Two NATed hosts call each other through a relay. Call quality lives and
dies by the relay choice: loss wrecks audio far faster than latency. The
paper's recipe — shortlist the 10 relays with the lowest *predicted* loss,
then take the lowest-latency one — is compared against picking the relay
closest to the caller, closest to the callee, or at random.

Run:  python examples/voip_relay_selection.py
"""

from repro.apps.voip import VoipExperiment
from repro.eval import get_scenario
from repro.eval.reporting import render_table
from repro.util.rng import derive_rng

def main() -> None:
    scenario = get_scenario("small")
    prefixes = scenario.all_prefixes()
    rng = derive_rng(17, "example.voip")
    hosts = [int(p) for p in rng.choice(prefixes, size=30, replace=False)]

    experiment = VoipExperiment(engine=scenario.engine(0), hosts=hosts, seed=9)
    result = experiment.run(
        scenario.shared_predictor(), n_calls=60, max_relays=20
    )

    rows = []
    for name in ("inano", "closest_src", "closest_dst", "random"):
        rows.append((
            name,
            f"{result.median_loss(name):.4f}",
            f"{sum(result.latencies_ms[name]) / len(result.latencies_ms[name]):.1f}",
            f"{result.mean_mos(name):.2f}",
        ))
    print(render_table(
        "Relay selection over 60 emulated calls",
        ["strategy", "median loss", "mean one-way ms", "mean MOS"],
        rows,
    ))

if __name__ == "__main__":
    main()
