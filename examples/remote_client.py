#!/usr/bin/env python3
"""Quickstart: the network gateway and remote clients.

The paper's Section 5 future work — "support remote queries so that
only one local host need download the atlas" — over a real transport.
This example stands up the node boundary:

1. publish an atlas and start a :class:`NetworkGateway` listening on a
   TCP port *and* a unix-domain socket (same protocol, both ends),
2. connect a **delegate** client: no atlas, every query ships a binary
   frame over the wire and the gateway answers from its backend,
3. connect a **bootstrap** client: it fetches the full encoded atlas
   over ``ATLAS_FETCH``, builds its own local runtime, and subscribes
   to delta pushes — from here its queries never touch the network,
4. publish the next day and :meth:`push_delta` — the subscribed client
   receives the ``DELTA_PUSH`` frame and patches its compiled arrays
   **in place** (the same daily-update path a co-located consumer
   runs), staying bit-for-bit identical to the server side.

Run:  python examples/remote_client.py
"""

import tempfile
from pathlib import Path

from repro.client import AtlasServer, INanoRemoteClient
from repro.net import NetworkGateway
from repro.eval import get_scenario


def main() -> None:
    scenario = get_scenario("small")
    server = AtlasServer()
    server.publish(scenario.atlas(day=0))
    print("== atlas published (day 0) ==")

    uds_path = str(Path(tempfile.mkdtemp()) / "inano.sock")
    with NetworkGateway(server, tcp=("127.0.0.1", 0), uds=uds_path) as gateway:
        host, port = gateway.tcp_address
        print(f"  gateway listening on tcp://{host}:{port} and uds://{uds_path}")

        prefixes = sorted(scenario.atlas(0).prefix_to_cluster)
        pairs = [(prefixes[0], d) for d in prefixes[10:16]]

        # Delegate mode (TCP): the client holds no atlas; each query is
        # one frame round trip, answered from the server's shared pool.
        with INanoRemoteClient.connect_tcp(host, port) as delegate:
            print(f"  delegate connected: backend={delegate.backend_name}, "
                  f"day={delegate.server_day}, mode={delegate.mode}")
            info = delegate.query(*pairs[0])
            if info is not None:
                print(f"  remote query: rtt={info.rtt_ms:.1f} ms "
                      f"loss={info.loss_round_trip:.3f} day={info.atlas_day}")
            # pipelining: N requests on the wire before the first reply
            paths = delegate.pipeline_predict(pairs * 4)
            print(f"  pipelined {len(paths)} predicts over one connection")

            # Bootstrap mode (UDS): fetch the atlas over the wire, build
            # a local runtime, subscribe to the daily pushes.
            with INanoRemoteClient.connect_uds(uds_path) as full:
                atlas = full.bootstrap()
                print(f"  bootstrapped over UDS: day {atlas.day}, "
                      f"mode={full.mode}, subscribed={full.subscribed}")
                local = full.query_batch(pairs)
                remote = delegate.query_batch(pairs)
                print(f"  local == remote answers: {local == remote}")

                # Day 2: publish, push — the subscribed client applies
                # the delta in place, no re-download.
                server.publish(scenario.atlas(day=1))
                push = gateway.push_delta(server.delta_for(1))
                full.wait_for_day(push["day"])
                print(f"  delta push: {push['wire_bytes']:,} wire bytes to "
                      f"{push['subscribers']} subscriber(s); client now at "
                      f"day {full.day} ({full.runtime.updates_patched} in-place "
                      f"patch(es), {full.deltas_applied} push(es) applied)")
                same = full.query_batch(pairs) == delegate.query_batch(pairs)
                print(f"  post-delta local == remote answers: {same}")

        print(f"  gateway stats: {gateway.stats}")


if __name__ == "__main__":
    main()
