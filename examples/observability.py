#!/usr/bin/env python3
"""The unified observability layer: metrics, traces, fleet dashboard.

Every tier of the serving stack reports into one substrate now — the
:mod:`repro.obs` metrics registry and the end-to-end request tracer.
This example lights up all of it against a real sharded deployment:

1. publish an atlas, serve it with a 2-shard
   :class:`~repro.serve.service.PredictionService` behind a
   :class:`~repro.net.gateway.NetworkGateway` on TCP,
2. connect a ``trace=True`` client: its HELLO negotiates ``FLAG_TRACE``,
   each query carries a ``(trace_id, span_id)`` context on the wire,
   and every layer it crosses records spans — gateway decode /
   admission / dispatch, the front-end's shard routing (pinned vs
   promoted replica), the worker's batch handling, the kernel search
   itself (cache-hit vs cold, repair class),
3. fetch the assembled span tree back over ``TRACE_FETCH`` and render
   it,
4. heat one destination until the hotspot layer promotes it, and watch
   the ``serve.route`` span flip from ``replica=pinned`` to
   ``replica=promoted``,
5. pull the fleet-wide metrics snapshot (front-end registry + every
   worker's registry folded together) and render the ``repro-top``
   dashboard plus the Prometheus text exposition.

Run:  python examples/observability.py
"""

import copy

from repro.client import AtlasServer
from repro.eval import get_scenario
from repro.net import NetworkClient, NetworkGateway
from repro.obs import MetricsRegistry, render_tree
from repro.obs.dashboard import render


def main() -> None:
    scenario = get_scenario("small")
    server = AtlasServer()
    server.publish(copy.deepcopy(scenario.atlas(day=0)))
    prefixes = sorted(scenario.atlas(0).prefix_to_cluster)
    print("== atlas published (day 0) ==")

    heat = dict(window=16, alpha=0.5, promote_threshold=4.0, replicas=2)
    service = server.serve(n_shards=2, heat=heat)
    try:
        with NetworkGateway(service, tcp=("127.0.0.1", 0)) as gateway:
            host, port = gateway.tcp_address
            print(f"  gateway on tcp://{host}:{port}, 2 shards, heat on")

            # -- 2. a traced query end to end --------------------------
            with NetworkClient.connect_tcp(
                host, port, trace=True, trace_seed=11
            ) as client:
                cold_dst = prefixes[5]
                client.predict_batch([(prefixes[1], cold_dst)])
                print("\n== span tree: cold destination (pinned) ==")
                print(render_tree(client.fetch_trace(), indent="   "))

                # -- 4. heat a destination until it is promoted --------
                hot_dst = prefixes[0]
                hot_pairs = [(s, hot_dst) for s in prefixes[1:9]]
                for _ in range(8):
                    client.predict_batch(hot_pairs)
                cluster = service.atlas.cluster_of_prefix(hot_dst)
                assert service.heat.is_hot(cluster)
                client.predict_batch(hot_pairs)
                spans = client.fetch_trace()
                route = next(s for s in spans if s.name == "serve.route")
                print("\n== span tree: hot destination "
                      f"(replica={route.tags['replica']}) ==")
                print(render_tree(spans, indent="   "))

            # -- 5. the fleet dashboard --------------------------------
            fleet = service.fleet_snapshot()
            fleet = MetricsRegistry.merge_snapshots(fleet, gateway.obs.snapshot())
            print()
            print(render(fleet, title="repro-top — 1 gateway, 2 shards"))

            prom = gateway.obs.expose_text()
            print("\n== prometheus exposition (gateway registry, head) ==")
            print("\n".join(prom.splitlines()[:10]))
    finally:
        service.close()


if __name__ == "__main__":
    main()
