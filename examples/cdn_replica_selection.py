#!/usr/bin/env python3
"""CDN replica selection with iNano (the paper's Section 7.1 case study).

A client-based CDN must send each client to one of the replicas holding
its content. This example pits five selection strategies against each
other on 30KB ("web object") and 1.5MB ("video chunk") downloads:

  optimal            pick the true best replica (oracle)
  measured           ping all replicas, pick the lowest measured RTT
  inano              iNano's predictions: latency for small files,
                     PFTK(latency, loss) for large files — no probes sent
  vivaldi            network coordinates (latency only)
  oasis              geolocation + stale cached probes
  random             no information

Run:  python examples/cdn_replica_selection.py
"""

import numpy as np

from repro.apps.cdn import LARGE_FILE_BYTES, SMALL_FILE_BYTES, CdnExperiment
from repro.eval import get_scenario
from repro.eval.reporting import render_table
from repro.util.rng import derive_rng

def main() -> None:
    scenario = get_scenario("small")
    prefixes = scenario.all_prefixes()
    rng = derive_rng(11, "example.cdn")

    clients = [vp.prefix_index for vp in scenario.validation_vps()]
    replica_pool = [p for p in prefixes if p not in clients]
    replicas = [int(p) for p in rng.choice(replica_pool, size=24, replace=False)]

    experiment = CdnExperiment(
        engine=scenario.engine(0), clients=clients, replicas=replicas, seed=5
    )
    predictor = scenario.shared_predictor()
    vivaldi = scenario.vivaldi()
    oasis = scenario.oasis(clients, replicas)
    # Vivaldi/OASIS need to know the replica nodes too.
    for replica in replicas:
        for client in clients:
            rtt = scenario.true_rtt_ms(client, replica)
            if rtt is not None:
                vivaldi.observe(client, replica, rtt)
                vivaldi.observe(replica, client, rtt)

    for size, label in ((SMALL_FILE_BYTES, "30KB"), (LARGE_FILE_BYTES, "1.5MB")):
        strategies = {
            "measured": experiment.strategy_measured_latency(),
            "inano": experiment.strategy_inano(predictor, size),
            "vivaldi": experiment.strategy_vivaldi(vivaldi),
            "oasis": experiment.strategy_oasis(oasis),
            "random": experiment.strategy_random(),
        }
        result = experiment.run(strategies, size)
        rows = [("optimal", f"{float(np.median(result.optimal_seconds)):.3f}", "1.00x")]
        for name in strategies:
            med = result.median_seconds(name)
            slow = float(np.median(result.slowdown_vs_optimal(name)))
            rows.append((name, f"{med:.3f}", f"{slow:.2f}x"))
        print(render_table(
            f"{label} downloads ({len(clients)} clients, 5 replicas each)",
            ["strategy", "median seconds", "median vs optimal"],
            rows,
        ))
        print()

if __name__ == "__main__":
    main()
