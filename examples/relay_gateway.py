#!/usr/bin/env python3
"""Planetary delta distribution: relay tiers and log compaction.

The paper distributes a compact atlas once and then ships small daily
deltas to every consumer. One origin cannot fan out to the planet by
itself, so gateways compose into a distribution tree:

1. start an **origin** :class:`NetworkGateway` over a published atlas,
2. start two :class:`RelayGateway` tiers — each bootstraps its backend
   from its upstream over the same wire protocol, subscribes to delta
   pushes, re-applies them to its own backend, and re-serves anchor
   bytes and push payloads **verbatim** (no re-encode) downstream,
3. connect clients behind the tail relay: a delegate (queries over the
   wire) and a bootstrapped subscriber (local runtime + pushes) — both
   answer bit-for-bit what the origin's backend answers,
4. push several days at the origin and watch them cascade through both
   tiers to the subscribed client,
5. **compaction**: every ``compact_days`` the gateway folds its delta
   log into a fresh losslessly-encoded anchor, so a client that shows
   up a week late downloads one anchor plus a short suffix instead of
   the whole history.

Run:  python examples/relay_gateway.py
"""

from repro.client import AtlasServer, INanoRemoteClient
from repro.eval import get_scenario
from repro.net import NetworkGateway, RelayGateway


def main() -> None:
    scenario = get_scenario("small")
    server = AtlasServer()
    server.publish(scenario.atlas(day=0))
    print("== atlas published (day 0) ==")

    # compact aggressively so the example shows a fold; the default is
    # every 7 days / 64 MiB of log
    with NetworkGateway(
        server, tcp=("127.0.0.1", 0), compact_days=3
    ) as origin:
        host, port = origin.tcp_address
        print(f"  origin listening on tcp://{host}:{port}")

        with RelayGateway(
            upstream_tcp=(host, port), tcp=("127.0.0.1", 0), compact_days=3
        ) as mid, RelayGateway(
            upstream_tcp=mid.tcp_address, tcp=("127.0.0.1", 0), compact_days=3
        ) as tail:
            t_host, t_port = tail.tcp_address
            print(f"  relay tiers: origin -> {mid.tcp_address} -> "
                  f"{tail.tcp_address}")

            prefixes = sorted(scenario.atlas(0).prefix_to_cluster)
            pairs = [(prefixes[0], d) for d in prefixes[10:16]]

            with INanoRemoteClient.connect_tcp(t_host, t_port) as delegate, \
                    INanoRemoteClient.connect_tcp(t_host, t_port) as sub:
                print(f"  delegate behind 2 relay tiers: "
                      f"backend={delegate.backend_name}, "
                      f"day={delegate.server_day}")
                atlas = sub.bootstrap()
                print(f"  subscriber bootstrapped: day {atlas.day}, "
                      f"subscribed={sub.subscribed}")

                # five days of churn pushed at the origin cascade
                # through both tiers to the subscribed client
                for day in range(1, 6):
                    server.publish(scenario.atlas(day=day))
                    push = origin.push_delta(server.delta_for(day))
                    sub.wait_for_day(push["day"], timeout=30.0)
                print(f"  pushed days 1..5: subscriber at day {sub.day}, "
                      f"{sub.deltas_applied} pushes applied in place")
                same = sub.query_batch(pairs) == delegate.query_batch(pairs)
                print(f"  subscriber == delegate answers: {same}")

                for name, gw in (("origin", origin), ("mid", mid),
                                 ("tail", tail)):
                    s = gw.stats
                    print(f"  {name}: compactions={s['compactions']} "
                          f"anchor_day={s['anchor_day']} "
                          f"log_days={s['delta_log_days']} "
                          f"log_bytes={s['delta_log_bytes']:,}")

                # a week-late client: one compacted anchor + a short
                # suffix instead of the whole history
                with INanoRemoteClient.connect_tcp(t_host, t_port) as late:
                    atlas = late.bootstrap()
                    print(f"  late bootstrap behind the tail relay: day "
                          f"{atlas.day} via anchor day "
                          f"{tail.stats['anchor_day']} + "
                          f"{late.deltas_applied} catch-up delta(s)")
                    same = late.query_batch(pairs) == delegate.query_batch(pairs)
                    print(f"  late == delegate answers: {same}")


if __name__ == "__main__":
    main()
