"""Figure 4: PoP-level path similarity across consecutive days.

Measures every vantage-point -> prefix route on day 0 and day 1, maps both
to PoP-level paths, and histograms the Jaccard similarity in 0.05 bins —
exactly the paper's methodology. Shape targets from the paper: ~91% of
paths with similarity >= 0.75, ~68% >= 0.9, ~50% identical.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NoRouteError, RoutingError
from repro.eval.reporting import render_table
from repro.eval.similarity import path_similarity
from repro.util.stats import histogram_bins


def _pop_paths(scenario, day, pairs):
    engine = scenario.engine(day)
    out = {}
    for src, dst in pairs:
        try:
            out[(src, dst)] = engine.pop_path(src, dst).pops
        except (NoRouteError, RoutingError):
            continue
    return out


def test_fig4_path_similarity_across_days(benchmark, scenario, report):
    vps = scenario.atlas_vps()
    targets = scenario.all_prefixes()
    pairs = [
        (vp.prefix_index, dst)
        for vp in vps
        for dst in targets[:: max(1, len(targets) // 40)]
        if dst != vp.prefix_index
    ]

    def compute():
        day0 = _pop_paths(scenario, 0, pairs)
        day1 = _pop_paths(scenario, 1, pairs)
        similarities = [
            path_similarity(day0[key], day1[key])
            for key in day0
            if key in day1
        ]
        return similarities

    similarities = benchmark(compute)
    arr = np.asarray(similarities)
    identical = float(np.mean(arr == 1.0))
    at_least_90 = float(np.mean(arr >= 0.9))
    at_least_75 = float(np.mean(arr >= 0.75))

    bins = histogram_bins(similarities, 0.05, 0.0, 1.0000001)
    rows = [(f"{edge:.2f}", f"{frac:.3f}") for edge, frac in bins if frac > 0]
    rows.append(("identical", f"{identical:.3f}"))
    rows.append((">= 0.90", f"{at_least_90:.3f}"))
    rows.append((">= 0.75", f"{at_least_75:.3f}"))
    report(
        "fig4_path_stationarity",
        render_table(
            f"Figure 4 — PoP path similarity across days (n={len(similarities)}; "
            "paper: 50% identical, 68% >=0.9, 91% >=0.75)",
            ["similarity bin", "fraction"],
            rows,
        ),
    )

    # Shape: strong stationarity with a heavy identical mass.
    assert identical >= 0.30
    assert at_least_75 >= 0.70
    assert at_least_90 >= identical
    assert len(similarities) > 200
