"""Sharded prediction-service benchmarks: shard-count sweeps.

The serving tentpole's claim: a ``PredictionService`` fleet of N shard
workers over the shared-memory CSR scales ``predict_batch`` throughput
with shard count while the delta broadcast keeps every shard on one
graph version. Two mechanisms carry the scaling:

* **aggregate search-cache capacity** — consistent-hash routing
  partitions the destination working set, so N shards hold N
  per-destination LRUs. The benchmark workload covers every
  destination cluster of the default scenario (more destinations than
  one pool's LRU holds), which a single shard must re-search every
  round and a 4-shard fleet answers warm. This effect is
  machine-independent — it shows even on one core;
* **process parallelism** — cold searches fan out to all involved
  shards concurrently (visible on multi-core hosts; ``cpus`` is
  recorded so trajectories are comparable).

Recorded per shard count: cold and steady-state round time, steady
throughput, and single-query p50/p99 round-trip latency; plus the
delta-broadcast convergence time and wire size. Appends to
``BENCH_serve.json`` under ``BENCH_RECORD=1`` (``make bench-serve``).
"""

from __future__ import annotations

import copy
import gc
import os
import time

import pytest

from repro.atlas.delta import compute_delta
from repro.client import AtlasServer
from repro.core.predictor import _SEARCH_CACHE_MAX
from repro.obs import Tracer
from repro.util.stats import nearest_rank

SHARD_COUNTS = (1, 2, 4)
STEADY_ROUNDS = 3
SINGLE_QUERIES = 60


@pytest.fixture(scope="module")
def server(scenario):
    server = AtlasServer()
    server.publish(copy.deepcopy(scenario.atlas(0)))
    return server


@pytest.fixture(scope="module")
def workload(scenario):
    """Pairs covering every destination cluster (one prefix per
    cluster, a few sources each) — a working set larger than one
    predictor pool's LRU, the regime sharding exists for."""
    atlas = scenario.atlas(0)
    prefix_of_cluster: dict[int, int] = {}
    for prefix, cluster in sorted(atlas.prefix_to_cluster.items()):
        prefix_of_cluster.setdefault(cluster, prefix)
    dsts = sorted(prefix_of_cluster.values())
    srcs = sorted(atlas.prefix_to_cluster)[:3]
    return [(src, dst) for dst in dsts for src in srcs], len(dsts)


def test_bench_shard_scaling(
    server, scenario, workload, bench_record_serve, report
):
    pairs, n_dsts = workload
    delta = compute_delta(scenario.atlas(0), _next_day(scenario))
    sweep = {}
    gc.disable()
    try:
        for n_shards in SHARD_COUNTS:
            service = server.serve(n_shards=n_shards)
            try:
                start = time.perf_counter()
                service.predict_batch(pairs)
                cold_s = time.perf_counter() - start
                start = time.perf_counter()
                for _ in range(STEADY_ROUNDS):
                    service.predict_batch(pairs)
                steady_s = (time.perf_counter() - start) / STEADY_ROUNDS
                singles = []
                warm = pairs[: SINGLE_QUERIES]
                for src, dst in warm:
                    start = time.perf_counter()
                    service.predict(src, dst)
                    singles.append(time.perf_counter() - start)
                # full tracing on every batch: route + worker + kernel
                # spans recorded and shipped back over the pipe — the
                # worst-case obs cost, recorded for the trajectory
                tracer = Tracer()
                start = time.perf_counter()
                for _ in range(STEADY_ROUNDS):
                    service.predict_batch(pairs, trace=tracer.start_trace())
                traced_s = (time.perf_counter() - start) / STEADY_ROUNDS
                start = time.perf_counter()
                update = service.apply_delta(delta)
                broadcast_s = time.perf_counter() - start
                converged = service.converged()
                sweep[n_shards] = {
                    "cold_s": round(cold_s, 4),
                    "steady_s": round(steady_s, 4),
                    "steady_traced_s": round(traced_s, 4),
                    "trace_overhead_pct": round(
                        max(0.0, (traced_s / steady_s - 1.0) * 100), 2
                    ),
                    "throughput_pairs_s": round(len(pairs) / steady_s, 1),
                    "p50_ms": round(nearest_rank(singles, 0.50) * 1000, 3),
                    "p99_ms": round(nearest_rank(singles, 0.99) * 1000, 3),
                    "broadcast_s": round(broadcast_s, 4),
                    "broadcast_wire_bytes": update["wire_bytes"],
                    "converged": converged,
                    "shared_mb": round(service.shared_bytes / 2**20, 2),
                }
                assert converged, "fleet must hold one graph version"
            finally:
                service.close()
    finally:
        gc.enable()

    base = sweep[SHARD_COUNTS[0]]["throughput_pairs_s"]
    for n_shards in SHARD_COUNTS:
        sweep[n_shards]["speedup_vs_1"] = round(
            sweep[n_shards]["throughput_pairs_s"] / base, 2
        )
    bench_record_serve(
        "shard_scaling",
        pairs=len(pairs),
        destinations=n_dsts,
        lru_capacity=_SEARCH_CACHE_MAX,
        cpus=os.cpu_count(),
        sweep={str(n): stats for n, stats in sweep.items()},
    )
    from repro.eval.reporting import render_table

    report(
        "serve_scaling",
        render_table(
            f"Sharded predict_batch ({len(pairs)} pairs, {n_dsts} "
            f"destinations, LRU {_SEARCH_CACHE_MAX}/shard)",
            ["shards", "steady tput (pairs/s)", "speedup", "p50 ms", "p99 ms", "bcast ms"],
            [
                (
                    str(n),
                    f"{sweep[n]['throughput_pairs_s']:,.0f}",
                    f"{sweep[n]['speedup_vs_1']:.1f}x",
                    f"{sweep[n]['p50_ms']:.2f}",
                    f"{sweep[n]['p99_ms']:.2f}",
                    f"{sweep[n]['broadcast_s'] * 1000:.0f}",
                )
                for n in SHARD_COUNTS
            ],
        ),
    )
    # The acceptance gate: >= 2x steady throughput at 4 shards vs 1.
    # The destination working set (> one LRU) makes this hold even on a
    # single core; multi-core hosts add cold-path parallelism on top.
    if n_dsts > _SEARCH_CACHE_MAX:
        assert sweep[4]["speedup_vs_1"] >= 2.0, sweep
    else:  # pragma: no cover - scenario shrank below the LRU
        pytest.skip("workload fits one shard's LRU; scaling gate n/a")


def _next_day(scenario):
    nxt = copy.deepcopy(scenario.atlas(1))
    nxt.day = 1
    return nxt


# -- hotspot replication sweep -------------------------------------------

ZIPF_HOT_DSTS = 3
HOT_ROUNDS = 4
#: bench heat config: promote within the warmup rounds, replicate a hot
#: destination across the whole 4-shard fleet
HEAT_BENCH = dict(window=24, alpha=0.5, promote_threshold=4.0, replicas=4)


def test_bench_hotspot_replication(
    server, scenario, bench_record_serve, report
):
    """Uniform vs zipf-skewed traffic, pinned vs heat-replicated routing.

    The pinned case concentrates a 90%-skewed stream on the one shard
    that owns the hot destinations (max per-shard load share ~1.0); the
    replicated case promotes them and fans the same stream across all
    4 shards. The load-share collapse is machine-independent; the
    throughput lift needs real cores (``cpus`` is recorded so the CI
    gate can scale its expectation)."""
    atlas = scenario.atlas(0)
    prefixes = sorted(atlas.prefix_to_cluster)
    # enough sources that each replica's slice of a batch amortizes its
    # round-trip (the lift should measure compute spread, not framing)
    srcs = (prefixes * 4)[:64]
    # destinations that all hash to one shard: the worst-case pin
    probe = server.serve(n_shards=4)
    try:
        owner_of = {p: probe.shard_of_destination(p) for p in prefixes}
    finally:
        probe.close()
    target = owner_of[prefixes[0]]
    hot_dsts = [p for p in prefixes if owner_of[p] == target][:ZIPF_HOT_DSTS]
    hot_pairs = [(s, d) for d in hot_dsts for s in srcs]
    uniform_pairs = [
        (s, d) for d in prefixes[: len(hot_dsts) * 8] for s in srcs[:2]
    ]

    results = {}
    gc.disable()
    try:
        for mode, heat in (("pinned", None), ("replicated", dict(HEAT_BENCH))):
            service = server.serve(n_shards=4, heat=heat)
            try:
                start = time.perf_counter()
                service.predict_batch(uniform_pairs)
                service.predict_batch(uniform_pairs)
                uniform_s = (time.perf_counter() - start) / 2
                # warm the hot stream (and, replicated, drive it hot)
                for _ in range(2):
                    service.predict_batch(hot_pairs)
                if heat is not None:
                    assert service.heat.hot, "hot set must form in warmup"
                before = [s["pairs"] for s in service.shard_stats()]
                start = time.perf_counter()
                for _ in range(HOT_ROUNDS):
                    service.predict_batch(hot_pairs)
                hot_s = (time.perf_counter() - start) / HOT_ROUNDS
                after = [s["pairs"] for s in service.shard_stats()]
                moved = [b - a for a, b in zip(before, after)]
                results[mode] = {
                    "hot_throughput_pairs_s": round(len(hot_pairs) / hot_s, 1),
                    "uniform_throughput_pairs_s": round(
                        len(uniform_pairs) / uniform_s, 1
                    ),
                    "max_shard_load_share": round(
                        max(moved) / max(1, sum(moved)), 3
                    ),
                    "hot_shard_pairs": moved,
                    "replica_routed": service.stats["replica_routed"],
                }
            finally:
                service.close()
    finally:
        gc.enable()

    pinned, replicated = results["pinned"], results["replicated"]
    lift = round(
        replicated["hot_throughput_pairs_s"]
        / pinned["hot_throughput_pairs_s"],
        2,
    )
    cpus = os.cpu_count() or 1
    bench_record_serve(
        "hotspot_replication",
        hot_destinations=len(hot_dsts),
        hot_pairs=len(hot_pairs),
        cpus=cpus,
        replicas=HEAT_BENCH["replicas"],
        hot_throughput_lift=lift,
        pinned=pinned,
        replicated=replicated,
    )
    from repro.eval.reporting import render_table

    report(
        "serve_hotspot",
        render_table(
            f"Hot-destination routing ({len(hot_pairs)} pairs to "
            f"{len(hot_dsts)} destinations on one shard, {cpus} cpus)",
            ["routing", "hot tput (pairs/s)", "max shard share", "uniform tput"],
            [
                (
                    mode,
                    f"{results[mode]['hot_throughput_pairs_s']:,.0f}",
                    f"{results[mode]['max_shard_load_share']:.2f}",
                    f"{results[mode]['uniform_throughput_pairs_s']:,.0f}",
                )
                for mode in ("pinned", "replicated")
            ],
        ),
    )
    # Machine-independent: replication must collapse the pinned shard's
    # load share (1.0) by at least half. The throughput lift gate lives
    # in check_serve_floor.py, scaled to the recorded cpu count.
    assert replicated["max_shard_load_share"] <= (
        0.5 * pinned["max_shard_load_share"]
    ), results
    assert replicated["replica_routed"] > 0, results
    if cpus >= 4:
        assert lift >= 2.0, results
