#!/usr/bin/env python
"""CI gate for the network gateway's perf floors (stdlib only).

``make bench-net`` appends one run to ``BENCH_net.json``; this script
then fails the build if the *latest* run regressed:

* **fan-out flatness** (absolute) — the push->all-received latency
  ratio between 200 and 1 loopback subscribers must stay <=
  ``FANOUT_RATIO_CEILING`` (the ISSUE acceptance bar: per-subscriber
  distribution work stays negligible against the day's shared
  encode+apply cost);
* **pipelined QPS** (absolute + relative) — >= ``QPS_FLOOR`` warm
  pipelined queries/s through the gateway, and >= ``QPS_TOLERANCE`` of
  the best QPS ever recorded in the trajectory, so a slow decay that
  never crosses the absolute bar still trips the gate;
* **push latency** (relative) — the 200-subscriber push->all-received
  wall time must stay <= ``LATENCY_HEADROOM`` x the best recorded, so
  the fan-out can't quietly grow as long as the shared work grows with
  it.

Older trajectory entries predating the fan-out sweep are skipped when
computing historical bests; a latest run *without* the sweep entries
(e.g. a filtered pytest invocation) is an error, because the gate
would otherwise silently pass on no data.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_NET_JSON = Path(__file__).parent.parent / "BENCH_net.json"

#: ISSUE acceptance bar: push->all-received flat within 2x, 1 -> 200.
FANOUT_RATIO_CEILING = 2.0
#: acceptance gate carried by the gateway bench since it landed.
QPS_FLOOR = 1000.0
#: fraction of the best-ever pipelined QPS the latest run must retain.
#: Generous on purpose: bench hosts vary (CI vs the 1-core container
#: the trajectory was seeded on) and the absolute floor already guards
#: the acceptance bar.
QPS_TOLERANCE = 0.55
#: multiple of the best-ever 200-subscriber push latency the latest
#: run may take before the gate trips.
LATENCY_HEADROOM = 2.5


def fanout_entry(timings: dict) -> dict | None:
    entry = timings.get("push_fanout")
    return entry if isinstance(entry, dict) else None


def pipelined_qps(timings: dict) -> float | None:
    entry = timings.get("gateway_tcp")
    if not isinstance(entry, dict):
        return None
    qps = entry.get("pipelined_qps")
    return float(qps) if isinstance(qps, (int, float)) else None


def main() -> int:
    if not BENCH_NET_JSON.exists():
        print(f"FAIL: {BENCH_NET_JSON} missing — run `make bench-net`")
        return 1
    payload = json.loads(BENCH_NET_JSON.read_text())
    runs = payload.get("runs") or []
    if not runs:
        print("FAIL: BENCH_net.json has no recorded runs")
        return 1

    latest = runs[-1].get("timings", {})
    history = [run.get("timings", {}) for run in runs[:-1]]
    failures = []

    sweep = fanout_entry(latest)
    if sweep is None:
        print(
            "FAIL: latest run recorded no push_fanout sweep "
            "— run the full `make bench-net`, not a filtered subset"
        )
        return 1
    ratio = sweep.get("ratio_200_over_1")
    if not isinstance(ratio, (int, float)):
        failures.append("push_fanout entry lacks ratio_200_over_1")
    elif ratio > FANOUT_RATIO_CEILING:
        failures.append(
            f"fan-out ratio 200/1 = {ratio:.2f}x exceeds the "
            f"{FANOUT_RATIO_CEILING}x ceiling"
        )
    else:
        print(
            f"ok: fan-out ratio 200/1 = {ratio:.2f}x "
            f"(ceiling {FANOUT_RATIO_CEILING}x)"
        )

    latency = sweep.get("all_received_200_ms")
    past_latencies = [
        v
        for t in history
        if (e := fanout_entry(t)) is not None
        and isinstance(v := e.get("all_received_200_ms"), (int, float))
    ]
    if not isinstance(latency, (int, float)):
        failures.append("push_fanout entry lacks all_received_200_ms")
    elif past_latencies:
        ceiling = min(past_latencies) * LATENCY_HEADROOM
        if latency > ceiling:
            failures.append(
                f"push->all-received @200 = {latency:.1f} ms exceeds "
                f"{ceiling:.1f} ms ({LATENCY_HEADROOM} x best recorded "
                f"{min(past_latencies):.1f} ms)"
            )
        else:
            print(
                f"ok: push->all-received @200 = {latency:.1f} ms "
                f"(ceiling {ceiling:.1f} ms)"
            )
    else:
        print(
            f"ok: push->all-received @200 = {latency:.1f} ms "
            "(first sweep entry; no recorded ceiling yet)"
        )

    qps = pipelined_qps(latest)
    if qps is None:
        failures.append("latest run recorded no gateway_tcp pipelined_qps")
    else:
        past_qps = [
            v for t in history if (v := pipelined_qps(t)) is not None
        ]
        floor = QPS_FLOOR
        if past_qps:
            floor = max(floor, max(past_qps) * QPS_TOLERANCE)
        if qps < floor:
            failures.append(
                f"pipelined QPS {qps:,.0f} below floor {floor:,.0f} "
                f"(= max(absolute {QPS_FLOOR:,.0f}, {QPS_TOLERANCE} * "
                f"best-recorded"
                f"{f' {max(past_qps):,.0f}' if past_qps else ' n/a'}))"
            )
        else:
            print(f"ok: pipelined QPS {qps:,.0f} (floor {floor:,.0f})")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: network gateway floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
