"""Update-path benchmarks: in-place delta patching vs full recompile.

The runtime's claim (ISSUE 2 tentpole) is that the daily ~1MB delta
should be absorbed by the *compute* layer as cheaply as it is by the
wire: patch the compiled CSR arrays in place and let every co-located
consumer keep its pooled predictor, instead of each consumer recompiling
its private graphs from scratch.

Two metrics, both "delta-apply-to-first-query" on the default scenario
with GC off, medians over alternating-day delta chains:

* ``single`` — one warm runtime (directed + closed + one FROM_SRC
  merged view materialized) absorbing a delta and answering one query:
  ``mode="patch"`` vs ``mode="recompile"`` (the executable spec the
  equivalence suite proves bit-for-bit identical).
* ``node`` — the paper's one-atlas-per-subnet deployment: eight
  co-located consumers (six plain clients, a query agent, and one
  client with its own FROM_SRC plane) behind one shared runtime,
  versus the seed architecture where *every* consumer owns its
  compiled state (primary + warm closed fallback, rebuilt via
  ``INanoPredictor``'s constructor after every update).

The acceptance gate rides on the ``node`` ratio: one patched runtime
must beat per-consumer recompilation by >= 5x update-to-first-query.
Results append to ``BENCH_update.json``.
"""

from __future__ import annotations

import copy
import gc
import itertools
import os
import time

import pytest

from repro.atlas.delta import apply_delta, compute_delta
from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.runtime import AtlasRuntime

#: consumers on the shared node: (name, uses own FROM_SRC plane)
_CONSUMERS = [
    ("client-0", False),
    ("client-1", False),
    ("measurer", True),
    ("client-2", False),
    ("client-3", False),
    ("client-4", False),
    ("client-5", False),
    ("agent", False),
]
#: distinct query destinations across the node; the rest re-hit hot
#: targets (shared-cache wins the pool architecture is built for)
_DISTINCT_DESTINATIONS = 4
_ROUNDS = 8


@pytest.fixture(scope="module")
def update_chain(scenario):
    """Alternating day-0/day-1 content as a reusable delta chain."""
    a0 = scenario.atlas(0)
    a1 = scenario.atlas(1)
    chain = []
    for day in range(_ROUNDS + 1):
        atlas = copy.deepcopy(a0 if day % 2 == 0 else a1)
        atlas.day = day
        chain.append(atlas)
    deltas = [compute_delta(b, n) for b, n in zip(chain, chain[1:])]
    return chain, deltas


@pytest.fixture(scope="module")
def from_src(scenario):
    return dict(itertools.islice(scenario.atlas(0).links.items(), 40))


@pytest.fixture(scope="module")
def query_pairs(scenario):
    """One (src, dst) probe per consumer, distinct destinations.

    Pairs are chosen answerable on the primary directed plane for both
    alternating chain contents, so every arm pays exactly one cold
    search per consumer per update (no fallback-graph noise).
    """
    prefixes = [int(p) for p in scenario.all_prefixes()]
    config = PredictorConfig.inano()
    atlases = [scenario.atlas(0), scenario.atlas(1)]
    predictors = [INanoPredictor(atlas, config) for atlas in atlases]

    def primary_answerable(src, dst):
        for atlas, predictor in zip(atlases, predictors):
            src_cluster = atlas.cluster_of_prefix(src)
            dst_cluster = atlas.cluster_of_prefix(dst)
            if src_cluster is None or dst_cluster is None:
                return False
            states = predictor._search(predictor.graph, dst_cluster, dst)
            path = predictor._lookup(
                predictor.graph, states, src, src_cluster, dst_cluster
            )
            if path is None:
                return False
        return True

    distinct = []
    used_dst = set()
    step = max(1, len(prefixes) // 37)
    candidates = itertools.product(prefixes[::step], prefixes[5::step])
    for src, dst in candidates:
        if src == dst or dst in used_dst:
            continue
        if primary_answerable(src, dst):
            distinct.append((src, dst))
            used_dst.add(dst)
            if len(distinct) == _DISTINCT_DESTINATIONS:
                break
    assert len(distinct) == _DISTINCT_DESTINATIONS, (
        "not enough primary-answerable pairs"
    )
    # Consumers beyond the distinct set re-query earlier destinations
    # (hot targets): the shared pool answers them from its per-runtime
    # LRU search cache, while the seed's private caches cannot.
    pairs = list(distinct)
    k = 0
    while len(pairs) < len(_CONSUMERS):
        src, dst = distinct[k % len(distinct)]
        pairs.append((prefixes[(7 * k + 11) % len(prefixes)], dst))
        k += 1
    return pairs


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _runtime_cycle_times(chain, deltas, from_src, query_pairs, mode):
    """Per-delta update-to-all-consumers-answered, shared runtime."""
    config = PredictorConfig.inano()
    runtime = AtlasRuntime(copy.deepcopy(chain[0]))
    runtime.directed_graph()
    runtime.closed_graph()
    runtime.merged_graph("measurer", from_src, {}, rev=0)
    for (name, measures), (src, dst) in zip(_CONSUMERS, query_pairs):
        predictor = runtime.pool.predictor(
            config,
            client_key=name if measures else None,
            from_src_links=from_src if measures else None,
            from_src_rev=0,
        )
        predictor.predict_or_none(src, dst)
    times = []
    apply_times = []
    for delta in deltas:
        start = time.perf_counter()
        runtime.apply_delta(delta, mode=mode)
        mid = time.perf_counter()
        for (name, measures), (src, dst) in zip(_CONSUMERS, query_pairs):
            predictor = runtime.pool.predictor(
                config,
                client_key=name if measures else None,
                from_src_links=from_src if measures else None,
                from_src_rev=0,
            )
            predictor.predict_or_none(src, dst)
        times.append((time.perf_counter() - start) * 1000)
        apply_times.append((mid - start) * 1000)
    return times, apply_times


def _seed_cycle_times(chain, deltas, from_src, query_pairs):
    """The pre-runtime architecture: every consumer owns its compiled
    state and rebuilds it (primary + warm closed fallback) per update."""
    config = PredictorConfig.inano()
    atlas = copy.deepcopy(chain[0])
    times = []
    for delta in deltas:
        start = time.perf_counter()
        atlas = apply_delta(atlas, delta)
        for (name, measures), (src, dst) in zip(_CONSUMERS, query_pairs):
            predictor = INanoPredictor(
                atlas, config, from_src_links=from_src if measures else None
            )
            predictor.fallback_graph  # the warm consumer's closed graph
            predictor.predict_or_none(src, dst)
        times.append((time.perf_counter() - start) * 1000)
    return times


def test_bench_update_to_first_query(
    update_chain, from_src, query_pairs, bench_record_update, report
):
    chain, deltas = update_chain
    gc.disable()
    try:
        patched, patched_apply = _runtime_cycle_times(
            chain, deltas, from_src, query_pairs, "patch"
        )
        recompiled, recompiled_apply = _runtime_cycle_times(
            chain, deltas, from_src, query_pairs, "recompile"
        )
        seed_arch = _seed_cycle_times(chain, deltas, from_src, query_pairs)
    finally:
        gc.enable()

    single_patch = _median(patched)
    single_recompile = _median(recompiled)
    node_seed = _median(seed_arch)
    single_ratio = single_recompile / single_patch
    node_ratio = node_seed / single_patch

    bench_record_update(
        "update_to_first_query",
        consumers=len(_CONSUMERS),
        rounds=len(deltas),
        patched_node_ms=round(single_patch, 3),
        recompile_runtime_ms=round(single_recompile, 3),
        seed_per_consumer_ms=round(node_seed, 3),
        runtime_ratio=round(single_ratio, 2),
        node_ratio=round(node_ratio, 2),
        # schema-2 phase breakdown: the apply segment (patch/recompile +
        # warm-start repair + prewarm) vs the consumers' first queries
        phases={
            "patch_apply_ms": round(_median(patched_apply), 3),
            "patch_queries_ms": round(
                _median([t - a for t, a in zip(patched, patched_apply)]), 3
            ),
            "recompile_apply_ms": round(_median(recompiled_apply), 3),
        },
    )
    from repro.eval.reporting import render_table

    report(
        "update_performance",
        render_table(
            f"Delta-apply-to-first-query (default scenario, "
            f"{len(_CONSUMERS)} consumers)",
            ["arm", "median ms", "vs patched"],
            [
                ("shared runtime, in-place patch", f"{single_patch:.2f}", "1.0x"),
                (
                    "shared runtime, full recompile",
                    f"{single_recompile:.2f}",
                    f"{single_ratio:.1f}x",
                ),
                (
                    "seed arch (per-consumer compile)",
                    f"{node_seed:.2f}",
                    f"{node_ratio:.1f}x",
                ),
            ],
        ),
    )
    # The acceptance gate: one patched runtime beats the seed's
    # per-consumer recompilation by >= 5x update-to-first-query. The
    # full bar applies to the dedicated `make bench-update` run (GC
    # off, quiet machine); mixed full-suite runs use a conservative
    # floor that still catches real regressions without timing flake.
    dedicated = os.environ.get("BENCH_RECORD") == "1"
    node_floor = 5.0 if dedicated else 3.0
    assert node_ratio >= node_floor, (node_ratio, single_patch, node_seed)
    # And patching must beat even a *shared* full recompile outright
    # (loose floor: this arm shares everything except the patch itself).
    # The mixed-run floor sits well under the quiet-machine ratio
    # (~1.15-1.3 on a 1-core container): at full-suite load the margin
    # has been observed dipping to ~1.07 on unchanged code, so 1.1 was
    # still flaking without catching anything real.
    single_floor = 1.2 if dedicated else 1.05
    assert single_ratio >= single_floor, (
        single_ratio,
        single_patch,
        single_recompile,
    )


def test_bench_patch_vs_compile_graph_only(
    update_chain, bench_record_update
):
    """Graph-maintenance cost alone (no queries): in-place patch of the
    directed+closed pair vs compiling both from the updated atlas."""
    chain, deltas = update_chain
    gc.disable()
    try:
        runtime = AtlasRuntime(copy.deepcopy(chain[0]))
        runtime.directed_graph()
        runtime.closed_graph()
        patch_times = []
        for delta in deltas:
            start = time.perf_counter()
            runtime.apply_delta(delta, mode="patch")
            patch_times.append((time.perf_counter() - start) * 1000)

        runtime = AtlasRuntime(copy.deepcopy(chain[0]))
        runtime.directed_graph()
        runtime.closed_graph()
        compile_times = []
        for delta in deltas:
            start = time.perf_counter()
            runtime.apply_delta(delta, mode="recompile")
            compile_times.append((time.perf_counter() - start) * 1000)
    finally:
        gc.enable()
    patch_ms = _median(patch_times)
    compile_ms = _median(compile_times)
    bench_record_update(
        "graph_maintenance",
        patch_ms=round(patch_ms, 3),
        recompile_ms=round(compile_ms, 3),
        ratio=round(compile_ms / patch_ms, 2),
    )
    assert patch_ms < compile_ms
