"""Query-engine microbenchmarks (Section 5's local-lookup claim).

iNano's pitch is that lookups are *local*: after a one-time atlas fetch,
an end host answers path queries from memory. These benches time cold
(new destination, full backtracking search) and warm (cached destination)
queries, and the swarm distribution of the atlas itself.
"""

from __future__ import annotations

from repro.atlas.serialization import decode_atlas, encode_atlas
from repro.atlas.swarm import SwarmConfig, simulate_swarm
from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.util.rng import derive_rng


def test_bench_cold_query(benchmark, scenario, atlas, bench_record):
    prefixes = scenario.all_prefixes()
    rng = derive_rng(1, "bench.query.cold")

    def cold_query():
        predictor = INanoPredictor(atlas, PredictorConfig.inano())
        src, dst = rng.choice(prefixes, size=2, replace=False)
        return predictor.predict_or_none(int(src), int(dst))

    benchmark(cold_query)
    bench_record(
        "cold_query",
        benchmark,
        engine=INanoPredictor(atlas, PredictorConfig.inano()).engine,
    )


def test_bench_warm_query_batch(benchmark, scenario, atlas, bench_record):
    prefixes = scenario.all_prefixes()
    predictor = INanoPredictor(atlas, PredictorConfig.inano())
    rng = derive_rng(2, "bench.query.warm")
    dst = int(prefixes[len(prefixes) // 2])
    sources = [int(s) for s in rng.choice(prefixes, size=50, replace=False) if s != dst]
    predictor.predict_or_none(sources[0], dst)  # warm the per-dst cache

    def warm_batch():
        return predictor.predict_batch([(s, dst) for s in sources])

    results = benchmark(warm_batch)
    assert sum(r is not None for r in results) > len(sources) * 0.6
    bench_record(
        "warm_query_batch", benchmark, engine=predictor.engine, batch=len(sources)
    )


def test_bench_atlas_decode(benchmark, atlas, bench_record):
    payload = encode_atlas(atlas)

    def decode():
        return decode_atlas(payload)

    decoded = benchmark(decode)
    assert len(decoded.links) == len(atlas.links)
    bench_record("atlas_decode", benchmark)


def test_bench_swarm_distribution(benchmark, atlas, report):
    from repro.eval.reporting import render_table

    payload_size = len(encode_atlas(atlas))

    def swarm():
        return simulate_swarm(
            SwarmConfig(n_peers=60, file_bytes=payload_size, seed=3)
        )

    result = benchmark(swarm)
    report(
        "swarm_distribution",
        render_table(
            "Atlas swarm distribution (Section 5; seed serves a minority)",
            ["peers", "rounds", "seed chunk share", "completed"],
            [
                (
                    60,
                    result.rounds,
                    f"{result.seed_byte_fraction:.2%}",
                    result.completed_peers,
                )
            ],
        ),
    )
    assert result.completed_peers == 60
    assert result.seed_byte_fraction < 0.5
