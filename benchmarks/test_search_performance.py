"""Search-kernel benchmarks: cold per-destination search + warm starts.

Two metrics on two atlases (GC off, medians), appended to
``BENCH_search.json``:

* ``cold_search`` — one uncached per-destination backtracking search,
  vectorized kernel (:mod:`repro.core.search`) vs the scalar spec loop
  (``_search_compiled``), for the full-iNano and GRAPH-baseline
  configs, on (a) the default-scenario atlas and (b) a synthetic
  production-shape "fanout" atlas (~4k ASes, one cluster per AS, dense
  multi-homing — the scale regime the kernel targets).
* ``post_delta_first_query`` — the update-to-first-query path the
  ROADMAP names as the top open item: after ``apply_delta``, the first
  query against a hot destination under warm-start repair + pool
  prewarming, versus the pre-repair architecture where the version
  bump cold-started every destination (simulated by flushing the
  pooled search cache after the patch).
* ``value_repair_first_query`` — bounded in-place repair: a chain of
  latency-only deltas on the fanout atlas, where touched cached
  searches replay from their journal frontier at apply time; gates
  that the replay path fires and that the first post-delta query stays
  within 3x of an untouched warm-path hit.

Schema-2 entries carry per-phase breakdowns (``phases`` sub-dicts:
state alloc vs relax vs extract for cold searches).

Gates: the kernel must beat the spec loop outright on cold searches
(dedicated floor 1.35x on the best config; measured 1.5-1.7x), and
repair+prewarming must cut post-delta first-query latency by >= 3x (it
lands at orders of magnitude — the first query becomes a cache hit).
"""

from __future__ import annotations

import copy
import gc
import os
import random
import statistics
import time

import pytest

from repro.atlas.delta import compute_delta
from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.relationships import REL_CUSTOMER, REL_PEER, REL_PROVIDER
from repro.core import search as search_kernel
from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.runtime import AtlasRuntime

_COLD_DESTINATIONS = 10
_COLD_REPS = 7
_DELTA_ROUNDS = 6
_HOT_DESTINATIONS = 4


def fanout_atlas(
    seed=3, n_t1=16, n_t2=360, n_t3=3600, peers2=6, homing=3
) -> Atlas:
    """A production-shape synthetic atlas: three-tier AS hierarchy, one
    cluster per AS (coarse PoP clustering), dense peering/multi-homing,
    with full three-tuple witnesses, preferences and provider sets so
    every corrective component is live."""
    rng = random.Random(seed)
    atlas = Atlas(day=0)
    asn = 1
    tiers = []
    for n in (n_t1, n_t2, n_t3):
        tiers.append(list(range(asn, asn + n)))
        asn += n
    t1, t2, t3 = tiers
    for a in t1 + t2 + t3:
        c = a * 4
        atlas.cluster_to_as[c] = a
        atlas.prefix_to_cluster[c * 100] = c
        atlas.prefix_to_as[c * 100] = a

    def cl(a):
        return a * 4

    def link(a, b):
        lat = float(rng.randint(2, 20))
        atlas.links[(cl(a), cl(b))] = LinkRecord(latency_ms=lat)
        atlas.links[(cl(b), cl(a))] = LinkRecord(latency_ms=lat)

    def rel(a, b, ab, ba):
        atlas.relationship_codes[(a, b)] = ab
        atlas.relationship_codes[(b, a)] = ba

    neigh: dict[int, set[int]] = {}

    def addadj(a, b):
        neigh.setdefault(a, set()).add(b)
        neigh.setdefault(b, set()).add(a)

    for i, a in enumerate(t1):
        for b in t1[i + 1:]:
            rel(a, b, REL_PEER, REL_PEER)
            addadj(a, b)
            link(a, b)
    for b in t2:
        for a in rng.sample(t1, rng.randint(1, homing)):
            rel(a, b, REL_PROVIDER, REL_CUSTOMER)
            addadj(a, b)
            link(a, b)
        for b2 in rng.sample(t2, peers2):
            if b2 != b and (b, b2) not in atlas.relationship_codes:
                rel(b, b2, REL_PEER, REL_PEER)
                addadj(b, b2)
                link(b, b2)
    for c in t3:
        for b in rng.sample(t2, rng.randint(1, homing)):
            rel(b, c, REL_PROVIDER, REL_CUSTOMER)
            addadj(b, c)
            link(b, c)
    atlas.as_degrees = {a: len(v) for a, v in neigh.items()}
    up: dict[int, list[int]] = {}
    for (a, b), code in atlas.relationship_codes.items():
        if code == REL_PROVIDER:
            up.setdefault(b, []).append(a)
    for b, nbrs in neigh.items():
        for x in nbrs:
            for y in nbrs:
                if x != y:
                    atlas.three_tuples.add((x, b, y))
    for _ in range(3000):
        a = rng.choice(t2 + t3)
        ups = up.get(a, [])
        if len(ups) >= 2:
            x, y = rng.sample(ups, 2)
            atlas.preferences.add((a, x, y))
    for p, a in atlas.prefix_to_as.items():
        if a in up:
            atlas.providers[a] = frozenset(up[a])
    return atlas


def _median_cold_ms(predictor, search_fn, destinations):
    times = []
    for _ in range(_COLD_REPS):
        start = time.perf_counter()
        for prefix, cluster in destinations:
            search_fn(
                predictor.graph, cluster, predictor._provider_gate(prefix)
            )
        times.append(
            (time.perf_counter() - start) / len(destinations) * 1000
        )
    return statistics.median(times)


def test_bench_cold_search(scenario, bench_record_search, report):
    arenas = [
        ("scenario", scenario.atlas(0), 7),
        ("fanout", fanout_atlas(), 431),
    ]
    configs = {
        "iNano": PredictorConfig.inano(),
        "GRAPH": PredictorConfig.graph_baseline(),
    }
    rows = []
    timings = {}
    ratios = []
    gc.disable()
    try:
        for arena, atlas, step in arenas:
            prefixes = sorted(atlas.prefix_to_cluster)[::step]
            destinations = [
                (p, atlas.cluster_of_prefix(p))
                for p in prefixes[:_COLD_DESTINATIONS]
            ]
            for name, config in configs.items():
                kernel = INanoPredictor(atlas, config, kernel="vector")
                spec = INanoPredictor(atlas, config, kernel="scalar")
                # warm the kernel views (one-time per graph version)
                kernel._run_search(
                    kernel.graph,
                    destinations[0][1],
                    kernel._provider_gate(destinations[0][0]),
                )
                kernel_ms = min(
                    _median_cold_ms(kernel, kernel._run_search, destinations)
                    for _ in range(2)
                )
                spec_ms = min(
                    _median_cold_ms(spec, spec._search_compiled, destinations)
                    for _ in range(2)
                )
                ratio = spec_ms / kernel_ms
                ratios.append(ratio)
                # schema-2 phase breakdown: one profiled pass splits the
                # kernel's wall time into state acquisition (alloc),
                # relaxation (the bucket/contest engine proper), and
                # everything outside the kernel window (view resolution
                # + result extraction)
                search_kernel.PROFILE = profile = {}
                t0 = time.perf_counter()
                for prefix, cluster in destinations:
                    kernel._run_search(
                        kernel.graph, cluster, kernel._provider_gate(prefix)
                    )
                total_s = time.perf_counter() - t0
                search_kernel.PROFILE = None
                n = len(destinations)
                alloc_s = profile.get("alloc_s", 0.0)
                relax_s = max(profile.get("search_s", 0.0) - alloc_s, 0.0)
                extract_s = max(total_s - alloc_s - relax_s, 0.0)
                timings[f"{arena}_{name}"] = {
                    "kernel_ms": round(kernel_ms, 4),
                    "spec_ms": round(spec_ms, 4),
                    "ratio": round(ratio, 3),
                    "phases": {
                        "alloc_ms": round(alloc_s / n * 1000, 4),
                        "relax_ms": round(relax_s / n * 1000, 4),
                        "extract_ms": round(extract_s / n * 1000, 4),
                    },
                }
                rows.append(
                    (
                        f"{arena} / {name}",
                        f"{kernel_ms:.3f}",
                        f"{spec_ms:.3f}",
                        f"{ratio:.2f}x",
                    )
                )
    finally:
        gc.enable()
        search_kernel.PROFILE = None
    bench_record_search("cold_search", **timings)
    from repro.eval.reporting import render_table

    report(
        "search_performance",
        render_table(
            "Cold per-destination search: kernel vs scalar spec",
            ["atlas / config", "kernel ms", "spec ms", "speedup"],
            rows,
        ),
    )
    # The kernel must beat the spec loop outright; the dedicated run
    # (GC off, quiet machine) holds the full floor on the best config
    # (measured 1.5-1.7x; the 3x aspiration and remaining scalar floor
    # are tracked in ROADMAP open items).
    dedicated = os.environ.get("BENCH_RECORD") == "1"
    floor = 1.35 if dedicated else 1.02
    assert max(ratios) >= floor, (ratios, timings)
    # The array-native engine's headline gate rides on the
    # production-shape atlas: the kernel must hold >= 2.2x over the
    # scalar spec there on a dedicated run (measured ~4.5x on GRAPH).
    if dedicated:
        fanout_best = max(
            entry["ratio"]
            for key, entry in timings.items()
            if key.startswith("fanout_")
        )
        assert fanout_best >= 2.2, timings


@pytest.fixture(scope="module")
def search_update_chain(scenario):
    a0 = scenario.atlas(0)
    a1 = scenario.atlas(1)
    chain = []
    for day in range(_DELTA_ROUNDS + 1):
        atlas = copy.deepcopy(a0 if day % 2 == 0 else a1)
        atlas.day = day
        chain.append(atlas)
    deltas = [compute_delta(b, n) for b, n in zip(chain, chain[1:])]
    return chain, deltas


def test_bench_post_delta_first_query(
    scenario, search_update_chain, bench_record_search, report
):
    chain, deltas = search_update_chain
    config = PredictorConfig.inano()
    prefixes = [int(p) for p in scenario.all_prefixes()]
    hot = [
        (prefixes[i], prefixes[-(i + 1)]) for i in range(_HOT_DESTINATIONS)
    ]

    def first_query_times(warm: bool):
        runtime = AtlasRuntime(copy.deepcopy(chain[0]))
        runtime.pool.prewarm_max = 8 if warm else 0
        predictor = runtime.pool.predictor(config)
        for pair in hot:
            predictor.predict_or_none(*pair)
        times = []
        for delta in deltas:
            runtime.apply_delta(delta)
            if not warm:
                # the pre-repair architecture: the version bump strands
                # every cached search, the first query runs cold
                predictor._search_cache.clear()
            start = time.perf_counter()
            predictor.predict_or_none(*hot[0])
            times.append((time.perf_counter() - start) * 1000)
            for pair in hot:
                predictor.predict_or_none(*pair)
        return statistics.median(times)

    gc.disable()
    try:
        cold_ms = first_query_times(warm=False)
        warm_ms = first_query_times(warm=True)
    finally:
        gc.enable()
    speedup = cold_ms / warm_ms
    bench_record_search(
        "post_delta_first_query",
        cold_start_ms=round(cold_ms, 4),
        warm_start_ms=round(warm_ms, 4),
        speedup=round(speedup, 1),
        rounds=len(deltas),
    )
    from repro.eval.reporting import render_table

    report(
        "search_warmstart",
        render_table(
            "Post-delta first query (hot destination)",
            ["arm", "median ms"],
            [
                ("cold start (pre-repair architecture)", f"{cold_ms:.3f}"),
                ("warm-start repair + prewarm", f"{warm_ms:.4f}"),
                ("speedup", f"{speedup:.0f}x"),
            ],
        ),
    )
    dedicated = os.environ.get("BENCH_RECORD") == "1"
    assert speedup >= (3.0 if dedicated else 2.0), (cold_ms, warm_ms)


def _value_only_next(atlas: Atlas, seed: int) -> Atlas:
    """The next day with only link *values* changed (no edge added or
    removed): rescale ~1% of the latencies — the paper's small-daily-
    churn regime, and well inside the repair path's touched-edge budget
    (``warmstart._REPAIR_MAX_TOUCHED``) — so the delta patches in place
    and the pooled searches repair via bounded re-relaxation."""
    nxt = copy.deepcopy(atlas)
    nxt.day = atlas.day + 1
    rng = random.Random(seed)
    keys = sorted(nxt.links)
    for key in rng.sample(keys, max(1, len(keys) // 100)):
        rec = nxt.links[key]
        nxt.links[key] = LinkRecord(
            latency_ms=round(rec.latency_ms * rng.uniform(0.6, 1.5), 3),
            loss_rate=rec.loss_rate,
        )
    return nxt


def test_bench_value_repair_first_query(bench_record_search, report):
    """Bounded in-place repair on value-only days: after a latency-only
    delta, the first query against a hot destination (whose cached
    search was repaired — replayed from the journal frontier — at apply
    time) must land within 3x of an untouched warm-path hit, and the
    replay path must actually fire (counted from the apply reports)."""
    atlas = fanout_atlas()
    config = PredictorConfig.inano()
    all_prefixes = sorted(atlas.prefix_to_cluster)
    dsts = all_prefixes[::431]
    srcs = all_prefixes[7::97]
    hot = [(srcs[i], dsts[-(i + 1)]) for i in range(_HOT_DESTINATIONS)]
    runtime = AtlasRuntime(copy.deepcopy(atlas))
    predictor = runtime.pool.predictor(config)
    for pair in hot:
        predictor.predict_or_none(*pair)
    counts = {"reused": 0, "repaired": 0, "replayed": 0, "dirty": 0}
    first_times: list[float] = []
    warm_times: list[float] = []
    gc.disable()
    try:
        current = atlas
        for day in range(1, _DELTA_ROUNDS + 1):
            nxt = _value_only_next(current, seed=day)
            apply_report = runtime.apply_delta(compute_delta(current, nxt))
            for key in counts:
                counts[key] += apply_report.cache.get(key, 0)
            # one unmeasured query on a *different* entry absorbs the
            # node's one-time post-patch lazy work (compiled-view
            # refresh) — that cost belongs to the apply segment
            # (bench-update), not to per-entry repair
            predictor.predict_or_none(*hot[1])
            start = time.perf_counter()
            predictor.predict_or_none(*hot[0])
            first_times.append((time.perf_counter() - start) * 1000)
            # the untouched-warm-path baseline: the same warm cached
            # search serving a source it has not answered yet — a pure
            # pooled-cache hit plus one path extraction, which is what
            # any not-yet-memoized pair costs regardless of repair
            # (the repair itself must flush memoized paths: the values
            # they baked in changed)
            fresh_src = srcs[_HOT_DESTINATIONS + day]
            start = time.perf_counter()
            predictor.predict_or_none(fresh_src, hot[0][1])
            warm_times.append((time.perf_counter() - start) * 1000)
            for pair in hot:
                predictor.predict_or_none(*pair)
            current = nxt
    finally:
        gc.enable()
    first_ms = statistics.median(first_times)
    warm_ms = statistics.median(warm_times)
    ratio = first_ms / warm_ms
    bench_record_search(
        "value_repair_first_query",
        first_query_ms=round(first_ms, 4),
        warm_hit_ms=round(warm_ms, 4),
        ratio=round(ratio, 2),
        rounds=_DELTA_ROUNDS,
        **counts,
    )
    from repro.eval.reporting import render_table

    report(
        "search_value_repair",
        render_table(
            "Value-only delta: repaired first query vs untouched warm hit",
            ["metric", "value"],
            [
                ("first query after delta (ms)", f"{first_ms:.4f}"),
                ("untouched warm path, new pair (ms)", f"{warm_ms:.4f}"),
                ("ratio", f"{ratio:.2f}x"),
                ("replayed", str(counts["replayed"])),
                ("reused", str(counts["reused"])),
                ("dirty", str(counts["dirty"])),
            ],
        ),
    )
    # the bounded-repair path must carry real traffic on value-only days
    assert counts["replayed"] >= 1, counts
    dedicated = os.environ.get("BENCH_RECORD") == "1"
    assert ratio <= (3.0 if dedicated else 6.0), (first_ms, warm_ms, counts)
