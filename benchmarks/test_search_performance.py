"""Search-kernel benchmarks: cold per-destination search + warm starts.

Two metrics on two atlases (GC off, medians), appended to
``BENCH_search.json``:

* ``cold_search`` — one uncached per-destination backtracking search,
  vectorized kernel (:mod:`repro.core.search`) vs the scalar spec loop
  (``_search_compiled``), for the full-iNano and GRAPH-baseline
  configs, on (a) the default-scenario atlas and (b) a synthetic
  production-shape "fanout" atlas (~4k ASes, one cluster per AS, dense
  multi-homing — the scale regime the kernel targets).
* ``post_delta_first_query`` — the update-to-first-query path the
  ROADMAP names as the top open item: after ``apply_delta``, the first
  query against a hot destination under warm-start repair + pool
  prewarming, versus the pre-repair architecture where the version
  bump cold-started every destination (simulated by flushing the
  pooled search cache after the patch).

Gates: the kernel must beat the spec loop outright on cold searches
(dedicated floor 1.35x on the best config; measured 1.5-1.7x), and
repair+prewarming must cut post-delta first-query latency by >= 3x (it
lands at orders of magnitude — the first query becomes a cache hit).
"""

from __future__ import annotations

import copy
import gc
import os
import random
import statistics
import time

import pytest

from repro.atlas.delta import compute_delta
from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.relationships import REL_CUSTOMER, REL_PEER, REL_PROVIDER
from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.runtime import AtlasRuntime

_COLD_DESTINATIONS = 10
_COLD_REPS = 7
_DELTA_ROUNDS = 6
_HOT_DESTINATIONS = 4


def fanout_atlas(
    seed=3, n_t1=16, n_t2=360, n_t3=3600, peers2=6, homing=3
) -> Atlas:
    """A production-shape synthetic atlas: three-tier AS hierarchy, one
    cluster per AS (coarse PoP clustering), dense peering/multi-homing,
    with full three-tuple witnesses, preferences and provider sets so
    every corrective component is live."""
    rng = random.Random(seed)
    atlas = Atlas(day=0)
    asn = 1
    tiers = []
    for n in (n_t1, n_t2, n_t3):
        tiers.append(list(range(asn, asn + n)))
        asn += n
    t1, t2, t3 = tiers
    for a in t1 + t2 + t3:
        c = a * 4
        atlas.cluster_to_as[c] = a
        atlas.prefix_to_cluster[c * 100] = c
        atlas.prefix_to_as[c * 100] = a

    def cl(a):
        return a * 4

    def link(a, b):
        lat = float(rng.randint(2, 20))
        atlas.links[(cl(a), cl(b))] = LinkRecord(latency_ms=lat)
        atlas.links[(cl(b), cl(a))] = LinkRecord(latency_ms=lat)

    def rel(a, b, ab, ba):
        atlas.relationship_codes[(a, b)] = ab
        atlas.relationship_codes[(b, a)] = ba

    neigh: dict[int, set[int]] = {}

    def addadj(a, b):
        neigh.setdefault(a, set()).add(b)
        neigh.setdefault(b, set()).add(a)

    for i, a in enumerate(t1):
        for b in t1[i + 1:]:
            rel(a, b, REL_PEER, REL_PEER)
            addadj(a, b)
            link(a, b)
    for b in t2:
        for a in rng.sample(t1, rng.randint(1, homing)):
            rel(a, b, REL_PROVIDER, REL_CUSTOMER)
            addadj(a, b)
            link(a, b)
        for b2 in rng.sample(t2, peers2):
            if b2 != b and (b, b2) not in atlas.relationship_codes:
                rel(b, b2, REL_PEER, REL_PEER)
                addadj(b, b2)
                link(b, b2)
    for c in t3:
        for b in rng.sample(t2, rng.randint(1, homing)):
            rel(b, c, REL_PROVIDER, REL_CUSTOMER)
            addadj(b, c)
            link(b, c)
    atlas.as_degrees = {a: len(v) for a, v in neigh.items()}
    up: dict[int, list[int]] = {}
    for (a, b), code in atlas.relationship_codes.items():
        if code == REL_PROVIDER:
            up.setdefault(b, []).append(a)
    for b, nbrs in neigh.items():
        for x in nbrs:
            for y in nbrs:
                if x != y:
                    atlas.three_tuples.add((x, b, y))
    for _ in range(3000):
        a = rng.choice(t2 + t3)
        ups = up.get(a, [])
        if len(ups) >= 2:
            x, y = rng.sample(ups, 2)
            atlas.preferences.add((a, x, y))
    for p, a in atlas.prefix_to_as.items():
        if a in up:
            atlas.providers[a] = frozenset(up[a])
    return atlas


def _median_cold_ms(predictor, search_fn, destinations):
    times = []
    for _ in range(_COLD_REPS):
        start = time.perf_counter()
        for prefix, cluster in destinations:
            search_fn(
                predictor.graph, cluster, predictor._provider_gate(prefix)
            )
        times.append(
            (time.perf_counter() - start) / len(destinations) * 1000
        )
    return statistics.median(times)


def test_bench_cold_search(scenario, bench_record_search, report):
    arenas = [
        ("scenario", scenario.atlas(0), 7),
        ("fanout", fanout_atlas(), 431),
    ]
    configs = {
        "iNano": PredictorConfig.inano(),
        "GRAPH": PredictorConfig.graph_baseline(),
    }
    rows = []
    timings = {}
    ratios = []
    gc.disable()
    try:
        for arena, atlas, step in arenas:
            prefixes = sorted(atlas.prefix_to_cluster)[::step]
            destinations = [
                (p, atlas.cluster_of_prefix(p))
                for p in prefixes[:_COLD_DESTINATIONS]
            ]
            for name, config in configs.items():
                kernel = INanoPredictor(atlas, config, kernel="vector")
                spec = INanoPredictor(atlas, config, kernel="scalar")
                # warm the kernel views (one-time per graph version)
                kernel._run_search(
                    kernel.graph,
                    destinations[0][1],
                    kernel._provider_gate(destinations[0][0]),
                )
                kernel_ms = min(
                    _median_cold_ms(kernel, kernel._run_search, destinations)
                    for _ in range(2)
                )
                spec_ms = min(
                    _median_cold_ms(spec, spec._search_compiled, destinations)
                    for _ in range(2)
                )
                ratio = spec_ms / kernel_ms
                ratios.append(ratio)
                timings[f"{arena}_{name}"] = {
                    "kernel_ms": round(kernel_ms, 4),
                    "spec_ms": round(spec_ms, 4),
                    "ratio": round(ratio, 3),
                }
                rows.append(
                    (
                        f"{arena} / {name}",
                        f"{kernel_ms:.3f}",
                        f"{spec_ms:.3f}",
                        f"{ratio:.2f}x",
                    )
                )
    finally:
        gc.enable()
    bench_record_search("cold_search", **timings)
    from repro.eval.reporting import render_table

    report(
        "search_performance",
        render_table(
            "Cold per-destination search: kernel vs scalar spec",
            ["atlas / config", "kernel ms", "spec ms", "speedup"],
            rows,
        ),
    )
    # The kernel must beat the spec loop outright; the dedicated run
    # (GC off, quiet machine) holds the full floor on the best config
    # (measured 1.5-1.7x; the 3x aspiration and remaining scalar floor
    # are tracked in ROADMAP open items).
    dedicated = os.environ.get("BENCH_RECORD") == "1"
    floor = 1.35 if dedicated else 1.02
    assert max(ratios) >= floor, (ratios, timings)


@pytest.fixture(scope="module")
def search_update_chain(scenario):
    a0 = scenario.atlas(0)
    a1 = scenario.atlas(1)
    chain = []
    for day in range(_DELTA_ROUNDS + 1):
        atlas = copy.deepcopy(a0 if day % 2 == 0 else a1)
        atlas.day = day
        chain.append(atlas)
    deltas = [compute_delta(b, n) for b, n in zip(chain, chain[1:])]
    return chain, deltas


def test_bench_post_delta_first_query(
    scenario, search_update_chain, bench_record_search, report
):
    chain, deltas = search_update_chain
    config = PredictorConfig.inano()
    prefixes = [int(p) for p in scenario.all_prefixes()]
    hot = [
        (prefixes[i], prefixes[-(i + 1)]) for i in range(_HOT_DESTINATIONS)
    ]

    def first_query_times(warm: bool):
        runtime = AtlasRuntime(copy.deepcopy(chain[0]))
        runtime.pool.prewarm_max = 8 if warm else 0
        predictor = runtime.pool.predictor(config)
        for pair in hot:
            predictor.predict_or_none(*pair)
        times = []
        for delta in deltas:
            runtime.apply_delta(delta)
            if not warm:
                # the pre-repair architecture: the version bump strands
                # every cached search, the first query runs cold
                predictor._search_cache.clear()
            start = time.perf_counter()
            predictor.predict_or_none(*hot[0])
            times.append((time.perf_counter() - start) * 1000)
            for pair in hot:
                predictor.predict_or_none(*pair)
        return statistics.median(times)

    gc.disable()
    try:
        cold_ms = first_query_times(warm=False)
        warm_ms = first_query_times(warm=True)
    finally:
        gc.enable()
    speedup = cold_ms / warm_ms
    bench_record_search(
        "post_delta_first_query",
        cold_start_ms=round(cold_ms, 4),
        warm_start_ms=round(warm_ms, 4),
        speedup=round(speedup, 1),
        rounds=len(deltas),
    )
    from repro.eval.reporting import render_table

    report(
        "search_warmstart",
        render_table(
            "Post-delta first query (hot destination)",
            ["arm", "median ms"],
            [
                ("cold start (pre-repair architecture)", f"{cold_ms:.3f}"),
                ("warm-start repair + prewarm", f"{warm_ms:.4f}"),
                ("speedup", f"{speedup:.0f}x"),
            ],
        ),
    )
    dedicated = os.environ.get("BENCH_RECORD") == "1"
    assert speedup >= (3.0 if dedicated else 2.0), (cold_ms, warm_ms)
