"""Benchmark fixtures: one default-scale scenario per session, plus a
report sink that both prints each regenerated table/figure and archives it
under ``benchmarks/results/``, and a query-perf recorder that appends
cold/warm/decode timings to ``BENCH_query.json`` at the repo root so
successive PRs accumulate a comparable trajectory."""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.eval import get_scenario

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_QUERY_JSON = Path(__file__).parent.parent / "BENCH_query.json"
_BENCH_HISTORY_MAX = 40


@pytest.fixture(scope="session")
def scenario():
    return get_scenario("default")


@pytest.fixture(scope="session")
def atlas(scenario):
    return scenario.atlas(0)


@pytest.fixture(scope="session")
def validation(scenario):
    return scenario.validation_set()


@pytest.fixture(scope="session")
def report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(name: str, text: str) -> None:
        print("\n" + text + "\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return emit


@pytest.fixture(scope="session")
def bench_record():
    """Collect query-benchmark stats; on session teardown, append one run
    entry to ``BENCH_query.json`` (bounded history, oldest dropped).

    Recording is opt-in via ``BENCH_RECORD=1`` (set by the Makefile bench
    targets, which also disable GC) so plain ``make verify`` runs don't
    pollute the trajectory with non-comparable timings.
    """
    enabled = os.environ.get("BENCH_RECORD") == "1"
    timings: dict[str, dict] = {}

    def record(name: str, benchmark, **extra) -> None:
        stats = getattr(getattr(benchmark, "stats", None), "stats", None)
        if stats is None:  # --benchmark-disable et al.
            return
        entry = {
            "mean_s": stats.mean,
            "median_s": stats.median,
            "min_s": stats.min,
            "stddev_s": stats.stddev,
            "rounds": stats.rounds,
        }
        entry.update(extra)
        timings[name] = entry

    yield record

    if not (enabled and timings):
        return
    payload: dict = {"schema": 1, "runs": []}
    if BENCH_QUERY_JSON.exists():
        try:
            loaded = json.loads(BENCH_QUERY_JSON.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                payload = loaded
        except (OSError, ValueError):
            pass
    payload["runs"].append(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "timings": timings,
        }
    )
    payload["runs"] = payload["runs"][-_BENCH_HISTORY_MAX:]
    BENCH_QUERY_JSON.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
