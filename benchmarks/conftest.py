"""Benchmark fixtures: one default-scale scenario per session, plus a
report sink that both prints each regenerated table/figure and archives it
under ``benchmarks/results/``, and a query-perf recorder that appends
cold/warm/decode timings to ``BENCH_query.json`` at the repo root so
successive PRs accumulate a comparable trajectory."""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.eval import get_scenario

RESULTS_DIR = Path(__file__).parent / "results"
BENCH_QUERY_JSON = Path(__file__).parent.parent / "BENCH_query.json"
BENCH_UPDATE_JSON = Path(__file__).parent.parent / "BENCH_update.json"
BENCH_SEARCH_JSON = Path(__file__).parent.parent / "BENCH_search.json"
BENCH_SERVE_JSON = Path(__file__).parent.parent / "BENCH_serve.json"
BENCH_NET_JSON = Path(__file__).parent.parent / "BENCH_net.json"
_BENCH_HISTORY_MAX = 40


#: trajectory schema: 2 adds optional per-phase breakdowns to entries
#: ("phases" sub-dicts — e.g. state alloc vs relax vs extract for the
#: search kernel, patch vs cache-repair vs query for the update path)
BENCH_SCHEMA = 2


def append_bench_run(path: Path, timings: dict) -> None:
    """Append one run entry to a trajectory JSON (bounded history)."""
    payload: dict = {"schema": BENCH_SCHEMA, "runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                payload = loaded
                # older entries stay as-is: schema 2 only adds fields
                payload["schema"] = BENCH_SCHEMA
        except (OSError, ValueError):
            pass
    payload["runs"].append(
        {
            "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "timings": timings,
        }
    )
    payload["runs"] = payload["runs"][-_BENCH_HISTORY_MAX:]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def scenario():
    return get_scenario("default")


@pytest.fixture(scope="session")
def atlas(scenario):
    return scenario.atlas(0)


@pytest.fixture(scope="session")
def validation(scenario):
    return scenario.validation_set()


@pytest.fixture(scope="session")
def report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(name: str, text: str) -> None:
        print("\n" + text + "\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return emit


def _trajectory_recorder(path: Path, make_entry):
    """Shared recorder plumbing: collect named entries, flush one run to
    ``path`` on teardown. Recording is opt-in via ``BENCH_RECORD=1``
    (set by the Makefile bench targets, which also disable GC) so plain
    ``make verify`` runs don't pollute the trajectories with
    non-comparable timings.
    """
    enabled = os.environ.get("BENCH_RECORD") == "1"
    timings: dict[str, dict] = {}

    def record(name: str, *args, **kwargs) -> None:
        entry = make_entry(*args, **kwargs)
        if entry is not None:
            timings[name] = entry

    def flush() -> None:
        if enabled and timings:
            append_bench_run(path, timings)

    return record, flush


@pytest.fixture(scope="session")
def bench_record():
    """Collect query-benchmark (pytest-benchmark) stats; appends one run
    entry to ``BENCH_query.json`` on session teardown."""

    def make_entry(benchmark, **extra):
        stats = getattr(getattr(benchmark, "stats", None), "stats", None)
        if stats is None:  # --benchmark-disable et al.
            return None
        entry = {
            "mean_s": stats.mean,
            "median_s": stats.median,
            "min_s": stats.min,
            "stddev_s": stats.stddev,
            "rounds": stats.rounds,
        }
        entry.update(extra)
        return entry

    record, flush = _trajectory_recorder(BENCH_QUERY_JSON, make_entry)
    yield record
    flush()


@pytest.fixture(scope="session")
def bench_record_update():
    """Collect update-benchmark stats (plain dicts, manual timing);
    appends one run entry to ``BENCH_update.json`` on session teardown."""
    record, flush = _trajectory_recorder(
        BENCH_UPDATE_JSON, lambda **stats: stats
    )
    yield record
    flush()


@pytest.fixture(scope="session")
def bench_record_search():
    """Collect search-kernel benchmark stats (plain dicts, manual
    timing); appends one run entry to ``BENCH_search.json``."""
    record, flush = _trajectory_recorder(
        BENCH_SEARCH_JSON, lambda **stats: stats
    )
    yield record
    flush()


@pytest.fixture(scope="session")
def bench_record_serve():
    """Collect sharded-service benchmark stats (shard-count sweeps,
    delta-broadcast convergence); appends one run entry to
    ``BENCH_serve.json``."""
    record, flush = _trajectory_recorder(
        BENCH_SERVE_JSON, lambda **stats: stats
    )
    yield record
    flush()


@pytest.fixture(scope="session")
def bench_record_net():
    """Collect network-gateway benchmark stats (connect latency,
    pipelined QPS, delta-push latency); appends one run entry to
    ``BENCH_net.json`` on session teardown."""
    record, flush = _trajectory_recorder(BENCH_NET_JSON, lambda **stats: stats)
    yield record
    flush()
