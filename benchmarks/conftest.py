"""Benchmark fixtures: one default-scale scenario per session, plus a
report sink that both prints each regenerated table/figure and archives it
under ``benchmarks/results/``."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.eval import get_scenario

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scenario():
    return get_scenario("default")


@pytest.fixture(scope="session")
def atlas(scenario):
    return scenario.atlas(0)


@pytest.fixture(scope="session")
def validation(scenario):
    return scenario.validation_set()


@pytest.fixture(scope="session")
def report():
    RESULTS_DIR.mkdir(exist_ok=True)

    def emit(name: str, text: str) -> None:
        print("\n" + text + "\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return emit
