"""Section 6.1.2: does the atlas stay tractable with more vantage points?

The paper added 845 DIMES end-host agents and measured the *marginal*
links and 3-tuples they contribute, then extrapolated linearly. We run the
same experiment: add batches of DIMES-like agents (each probing a random
sample of prefixes) and report marginal link/tuple counts plus the linear
extrapolation to all-edge coverage.
"""

from __future__ import annotations

from repro.atlas.builder import AtlasBuilder, AtlasInputs
from repro.eval.reporting import render_table
from repro.measurement.vantage import select_vantage_points
from repro.util.rng import derive_rng


def test_s612_atlas_scaling_with_vantage_points(benchmark, scenario, atlas, report):
    topo = scenario.topology(0)
    sim = scenario.simulator(0)
    base_links = len(atlas.links)
    base_tuples = len(atlas.three_tuples)

    exclude = {vp.prefix_index for vp in scenario.vantage_points()}
    dimes = select_vantage_points(
        topo, 30, kind="dimes", seed=scenario.config.seed, exclude_prefixes=exclude
    )
    rng = derive_rng(scenario.config.seed, "s612.targets")
    all_prefixes = scenario.all_prefixes()

    def build_with_agents(agents):
        extra_traces = []
        for vp in agents:
            targets = rng.choice(all_prefixes, size=20, replace=False)
            extra_traces += [
                sim.trace_to_prefix(vp, int(t)) for t in targets if t != vp.prefix_index
            ]
        # Rebuild the atlas with the extra agent measurements folded in.
        cmap = scenario.cluster_map(0).clone()
        cmap.extend_with_client_traces(extra_traces, scenario.feed(0).prefix_to_as())
        inputs = AtlasInputs(
            traceroutes=scenario.traces(0) + extra_traces,
            cluster_map=cmap,
            feed=scenario.feed(0),
            day=0,
        )
        return AtlasBuilder(inputs).build()

    def run():
        results = []
        for n_agents in (10, 20, 30):
            grown = build_with_agents(dimes[:n_agents])
            results.append(
                (n_agents, len(grown.links), len(grown.three_tuples))
            )
        return results

    results = benchmark(run)

    n_edge_prefixes = len(all_prefixes)
    rows = [("0 (PlanetLab only)", base_links, base_tuples, "-", "-")]
    for n_agents, links, tuples in results:
        marg_links = (links - base_links) / n_agents
        marg_tuples = (tuples - base_tuples) / n_agents
        extrap_links = base_links + marg_links * n_edge_prefixes
        rows.append(
            (
                str(n_agents),
                links,
                tuples,
                f"{extrap_links:.0f}",
                f"{(extrap_links / base_links):.1f}x",
            )
        )
    report(
        "s612_atlas_scaling",
        render_table(
            "Section 6.1.2 — atlas growth with DIMES-like agents "
            "(paper: 8x links, 3x tuples at full edge coverage)",
            ["agents", "links", "3-tuples", "extrapolated links", "growth"],
            rows,
        ),
    )

    final_links = results[-1][1]
    final_tuples = results[-1][2]
    # More agents discover more links/tuples, but sub-linearly: the growth
    # from the atlas baseline must stay within an order of magnitude.
    assert final_links >= base_links
    assert final_tuples >= base_tuples
    assert final_links < 10 * base_links
    # Marginal contribution shrinks (sub-linear growth), comparing the
    # first and last batch.
    first_marginal = results[0][1] - base_links
    last_marginal = (results[-1][1] - results[-2][1])
    assert last_marginal <= max(1, first_marginal) * 1.5
