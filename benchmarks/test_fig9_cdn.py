"""Figure 9: peer-to-peer file transfer (CDN replica selection).

(a) 30KB downloads: latency-dominated; iNano's latency predictions should
track the measured-latency strategy and beat Vivaldi/OASIS/random.
(b) 1.5MB downloads: loss matters; iNano combines latency and loss via
PFTK and (in the paper) beats even measured-latency selection.

Each point is the median over clients of the download time via the chosen
replica, normalized by the per-client optimal.
"""

from __future__ import annotations

import numpy as np

from repro.apps.cdn import LARGE_FILE_BYTES, SMALL_FILE_BYTES, CdnExperiment
from repro.eval.reporting import render_table
from repro.util.rng import derive_rng


def _setup(scenario):
    prefixes = scenario.all_prefixes()
    rng = derive_rng(scenario.config.seed, "bench.cdn")
    vp_prefixes = {vp.prefix_index for vp in scenario.vantage_points()}
    pool = [p for p in prefixes if p not in vp_prefixes]
    clients = [int(p) for p in rng.choice(pool, size=40, replace=False)]
    remaining = [p for p in pool if p not in set(clients)]
    replicas = [int(p) for p in rng.choice(remaining, size=30, replace=False)]
    experiment = CdnExperiment(
        engine=scenario.engine(0),
        clients=clients,
        replicas=replicas,
        seed=scenario.config.seed,
    )
    vivaldi = scenario.vivaldi()
    for client in clients:
        for replica in experiment.candidate_sets()[client]:
            rtt = scenario.true_rtt_ms(client, replica)
            if rtt is not None:
                vivaldi.observe(client, replica, rtt)
                vivaldi.observe(replica, client, rtt)
    oasis = scenario.oasis(clients, replicas)
    return experiment, vivaldi, oasis


def _run(scenario, experiment, vivaldi, oasis, file_bytes):
    predictor = scenario.shared_predictor()
    strategies = {
        "measured latency": experiment.strategy_measured_latency(),
        "inano": experiment.strategy_inano(predictor, file_bytes),
        "vivaldi": experiment.strategy_vivaldi(vivaldi),
        "oasis": experiment.strategy_oasis(oasis),
        "random": experiment.strategy_random(),
    }
    return experiment.run(strategies, file_bytes)


def _rows(result):
    rows = [("optimal", f"{float(np.median(result.optimal_seconds)):.3f}s", "1.00x")]
    for name in result.download_seconds:
        rows.append(
            (
                name,
                f"{result.median_seconds(name):.3f}s",
                f"{float(np.median(result.slowdown_vs_optimal(name))):.2f}x",
            )
        )
    return rows


def test_fig9a_small_files(benchmark, scenario, report):
    experiment, vivaldi, oasis = _setup(scenario)
    result = benchmark(_run, scenario, experiment, vivaldi, oasis, SMALL_FILE_BYTES)
    report(
        "fig9a_cdn_30kb",
        render_table(
            f"Figure 9a — 30KB downloads, {len(experiment.clients)} clients "
            "(paper: iNano ≈ measured, both near optimal)",
            ["strategy", "median time", "median vs optimal"],
            _rows(result),
        ),
    )
    med = {name: float(np.median(result.slowdown_vs_optimal(name)))
           for name in result.download_seconds}
    # iNano near-optimal in the median and no worse than the blind baselines.
    assert med["inano"] <= 1.8
    assert med["inano"] <= med["random"] + 0.05
    assert med["inano"] <= med["oasis"] + 0.05


def test_fig9b_large_files(benchmark, scenario, report):
    experiment, vivaldi, oasis = _setup(scenario)
    result = benchmark(_run, scenario, experiment, vivaldi, oasis, LARGE_FILE_BYTES)
    report(
        "fig9b_cdn_1500kb",
        render_table(
            f"Figure 9b — 1.5MB downloads, {len(experiment.clients)} clients "
            "(paper: iNano's loss-awareness beats measured latency)",
            ["strategy", "median time", "median vs optimal"],
            _rows(result),
        ),
    )
    med = {name: float(np.median(result.slowdown_vs_optimal(name)))
           for name in result.download_seconds}
    assert med["inano"] <= med["random"], "predictions must beat blind choice"
    assert med["inano"] <= med["oasis"] + 0.05
    # Loss-awareness: iNano within striking distance of measured-latency
    # (the paper has it strictly better; we accept parity or better).
    assert med["inano"] <= med["measured latency"] * 1.6
