"""Section 6.2.2: stationarity of packet loss.

100 ICMP probes per path, repeated 6, 12 and 24 hours later. The paper's
numbers: 66% of initially-lossy paths still lossy after 6h, decaying to
53% at 12h and *staying* at 53% at 24h (a persistent lossy core — in our
network, structurally lossy access links).
"""

from __future__ import annotations

from dataclasses import replace

from repro.eval.reporting import render_table
from repro.eval.scenarios import STATIONARITY_DAY_CONFIG
from repro.measurement.ping import PingProber
from repro.routing.dynamics import evolve_topology
from repro.routing.forwarding import ForwardingEngine
from repro.util.rng import derive_rng

#: Treat one evolution step as 6 hours by scaling the daily magnitudes.
SIX_HOURS = 0.25


def _six_hour_config():
    cfg = STATIONARITY_DAY_CONFIG
    return replace(
        cfg,
        latency_jitter_fraction=cfg.latency_jitter_fraction * SIX_HOURS,
        loss_toggle_on_prob=cfg.loss_toggle_on_prob * SIX_HOURS,
        loss_toggle_off_prob=cfg.loss_toggle_off_prob * SIX_HOURS,
        loss_resample_prob=cfg.loss_resample_prob * SIX_HOURS,
        rank_shuffle_fraction=cfg.rank_shuffle_fraction * SIX_HOURS,
        interconnect_drop_prob=0.0,
        interconnect_add_prob=0.0,
    )


def test_s622_loss_stationarity(benchmark, scenario, report):
    topo0 = scenario.topology(0)
    vps = scenario.atlas_vps()[:12]
    targets = scenario.all_prefixes()[::4]
    loss_threshold = 0.005

    def run():
        # t=0 measurement.
        prober0 = PingProber(
            topo0, scenario.engine(0), derive_rng(1, "s622.t0"), n_probes=100
        )
        lossy_at_t0 = []
        for vp in vps:
            for dst in targets:
                if dst == vp.prefix_index:
                    continue
                m = prober0.measure_loss(vp.prefix_index, dst)
                if m.observed_loss > loss_threshold:
                    lossy_at_t0.append((vp.prefix_index, dst))

        persistence = {}
        cfg = _six_hour_config()
        for steps, label in ((1, "6h"), (2, "12h"), (4, "24h")):
            topo_t = evolve_topology(topo0, steps, cfg, seed=901)
            engine_t = ForwardingEngine(topo_t)
            prober_t = PingProber(
                topo_t, engine_t, derive_rng(steps, "s622.t"), n_probes=100
            )
            still = 0
            for src, dst in lossy_at_t0:
                m = prober_t.measure_loss(src, dst)
                if m.observed_loss > loss_threshold:
                    still += 1
            persistence[label] = still / max(1, len(lossy_at_t0))
        return lossy_at_t0, persistence

    lossy_at_t0, persistence = benchmark(run)

    rows = [(label, f"{persistence[label]:.2%}") for label in ("6h", "12h", "24h")]
    report(
        "s622_loss_stationarity",
        render_table(
            f"Section 6.2.2 — lossy paths still lossy after interval "
            f"(n={len(lossy_at_t0)}; paper: 66% / 53% / 53%)",
            ["interval", "still lossy"],
            rows,
        ),
    )

    assert len(lossy_at_t0) >= 20, "need a meaningful lossy population"
    # Shape: substantial persistence at 6h, decaying with interval, and a
    # persistent floor (the 12h -> 24h plateau).
    assert persistence["6h"] >= 0.45
    assert persistence["6h"] >= persistence["12h"] - 0.02
    assert persistence["12h"] >= persistence["24h"] - 0.05
    assert persistence["24h"] >= 0.25
