"""Figure 10: VoIP relay selection.

Emulated calls between random host pairs, relayed through a third host.
iNano shortlists 10 relays by predicted loss and picks the lowest-latency
one; the paper shows its relays see significantly less packet loss than
closest-to-source, closest-to-destination, or random relays.
"""

from __future__ import annotations

import numpy as np

from repro.apps.voip import VoipExperiment
from repro.eval.reporting import render_table
from repro.util.rng import derive_rng
from repro.util.stats import Cdf


def test_fig10_voip_relay_selection(benchmark, scenario, report):
    prefixes = scenario.all_prefixes()
    rng = derive_rng(scenario.config.seed, "bench.voip")
    hosts = [int(p) for p in rng.choice(prefixes, size=60, replace=False)]
    experiment = VoipExperiment(
        engine=scenario.engine(0), hosts=hosts, seed=scenario.config.seed
    )

    result = benchmark(
        experiment.run, scenario.shared_predictor(), 150, 40
    )

    rows = []
    for name in ("inano", "closest_src", "closest_dst", "random"):
        losses = result.loss_rates[name]
        cdf = Cdf(losses)
        rows.append(
            (
                name,
                f"{cdf.median:.4f}",
                f"{float(np.mean(losses)):.4f}",
                f"{cdf.at(0.01):.2%}",
                f"{result.mean_mos(name):.2f}",
            )
        )
    report(
        "fig10_voip",
        render_table(
            "Figure 10 — loss on the chosen relay path over 150 calls "
            "(paper: iNano's relays see significantly less loss)",
            ["strategy", "median loss", "mean loss", "P[loss<=1%]", "mean MOS"],
            rows,
        ),
    )

    mean_loss = {name: float(np.mean(vals)) for name, vals in result.loss_rates.items()}
    assert mean_loss["inano"] <= mean_loss["random"], "iNano must beat random relays"
    assert mean_loss["inano"] <= mean_loss["closest_src"] + 0.005
    assert mean_loss["inano"] <= mean_loss["closest_dst"] + 0.005
    assert result.mean_mos("inano") >= result.mean_mos("random")
