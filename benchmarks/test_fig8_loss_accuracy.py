"""Figure 8: loss-rate estimation accuracy.

iNano composes per-link loss annotations along the predicted forward and
reverse paths; the paper reports <10% absolute error for over 80% of
paths, approximating the path-based estimates with a far smaller atlas.
Coordinates cannot estimate loss at all, so (as in the paper) only the
path-based baseline is compared.
"""

from __future__ import annotations

from repro.core.predictor import PredictorConfig
from repro.errors import NoRouteError, RoutingError
from repro.eval.reporting import render_table
from repro.util.stats import Cdf


def test_fig8_loss_error_cdf(benchmark, scenario, atlas, validation, report):
    engine = scenario.engine(0)
    comp = scenario.composition_predictor()

    def collect():
        inano_errors = []
        comp_errors = []
        truths = []
        for source in validation.sources:
            src = source.vantage.prefix_index
            predictor = source.predictor(atlas, PredictorConfig.inano())
            for dst in source.validation_targets:
                try:
                    e2e = engine.end_to_end(src, dst)
                except (NoRouteError, RoutingError):
                    continue
                true_loss = e2e.loss_round_trip
                truths.append(true_loss)
                fwd = predictor.predict_or_none(src, dst)
                rev = predictor.predict_or_none(dst, src)
                if fwd is not None and rev is not None:
                    est = 1 - (1 - fwd.loss) * (1 - rev.loss)
                    inano_errors.append(abs(est - true_loss))
                cf = comp.predict_or_none(src, dst)
                cr = comp.predict_or_none(dst, src)
                if cf is not None and cr is not None:
                    est = 1 - (1 - cf.loss) * (1 - cr.loss)
                    comp_errors.append(abs(est - true_loss))
        return inano_errors, comp_errors, truths

    inano_errors, comp_errors, truths = benchmark(collect)

    inano_cdf = Cdf(inano_errors)
    comp_cdf = Cdf(comp_errors)
    rows = [
        (
            name,
            len(cdf),
            f"{cdf.median:.4f}",
            f"{cdf.at(0.10):.2%}",
        )
        for name, cdf in (("iNano", inano_cdf), ("path composition", comp_cdf))
    ]
    report(
        "fig8_loss_accuracy",
        render_table(
            "Figure 8 — loss-rate estimation error "
            "(paper: iNano error < 0.10 for >80% of paths, ≈ path-based)",
            ["technique", "n", "median |error|", "P[err <= 0.10]"],
            rows,
        ),
    )

    # Shape: most paths estimated within 10% absolute loss.
    assert inano_cdf.at(0.10) >= 0.70
    # iNano approximates the path-based estimates (same order of quality).
    assert inano_cdf.at(0.10) >= comp_cdf.at(0.10) - 0.15
    assert len(inano_errors) > 0.7 * len(truths)
