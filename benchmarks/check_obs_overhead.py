#!/usr/bin/env python
"""CI gate for the observability layer's overhead (stdlib only).

``make bench-net`` records two pipelined-QPS measurements for the
same warm workload in ``BENCH_net.json``: a classic client and a
client that negotiated ``FLAG_TRACE`` with sampling off — the
deployment default for always-on tracing support. This script fails
the build if the latest run shows tracing support costing more than
``OVERHEAD_CEILING_PCT`` of pipelined throughput.

With sampling off the traced client never mints a context, no TRACE
field rides the wire, and the gateway's per-request obs work is one
``conn.trace`` flag check plus the registry-backed stats counters the
classic path also pays — so the two measurements should be noise
apart. The generous ceiling absorbs scheduler jitter on loaded
1-core CI hosts without letting a real per-request regression
(accidental span recording, eager context minting, payload re-scans)
slip through.

The serve-side trajectory (``BENCH_serve.json``) records the
*full-tracing* cost per shard count (``steady_traced_s`` /
``trace_overhead_pct``) for observation; that mode is opt-in per
request, so it is recorded, not gated.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_NET_JSON = Path(__file__).parent.parent / "BENCH_net.json"

#: ISSUE acceptance bar: tracing support (sampling off) may cost at
#: most this fraction of pipelined QPS.
OVERHEAD_CEILING_PCT = 5.0


def main() -> int:
    if not BENCH_NET_JSON.exists():
        print(f"FAIL: {BENCH_NET_JSON} missing — run `make bench-net`")
        return 1
    payload = json.loads(BENCH_NET_JSON.read_text())
    runs = payload.get("runs") or []
    if not runs:
        print("FAIL: BENCH_net.json has no recorded runs")
        return 1

    entry = runs[-1].get("timings", {}).get("gateway_tcp")
    if not isinstance(entry, dict):
        print(
            "FAIL: latest run recorded no gateway_tcp entry "
            "— run the full `make bench-net`, not a filtered subset"
        )
        return 1
    base = entry.get("pipelined_qps")
    traced = entry.get("pipelined_qps_trace_off")
    if not isinstance(base, (int, float)) or not isinstance(
        traced, (int, float)
    ):
        print(
            "FAIL: latest gateway_tcp entry predates the tracing "
            "overhead measurement — re-run `make bench-net`"
        )
        return 1

    overhead = max(0.0, (1.0 - traced / base) * 100)
    if overhead > OVERHEAD_CEILING_PCT:
        print(
            f"FAIL: tracing support costs {overhead:.1f}% pipelined QPS "
            f"({base:,.0f} -> {traced:,.0f}); ceiling is "
            f"{OVERHEAD_CEILING_PCT:.0f}%"
        )
        return 1
    print(
        f"ok: pipelined QPS {base:,.0f} classic vs {traced:,.0f} with "
        f"FLAG_TRACE + sampling off ({overhead:.1f}% overhead, ceiling "
        f"{OVERHEAD_CEILING_PCT:.0f}%)"
    )
    print("OK: observability overhead within budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
