#!/usr/bin/env python
"""CI gate for the sharded service's perf floors (stdlib only).

``make bench-serve`` appends one run to ``BENCH_serve.json``; this
script then fails the build if the *latest* run regressed:

* **shard scaling** (absolute) — steady ``predict_batch`` throughput at
  4 shards must stay >= ``SCALING_FLOOR`` x the 1-shard number (the
  serving tentpole's acceptance bar; holds even on one core via
  aggregate LRU capacity);
* **hot-spot load collapse** (absolute, machine-independent) — under
  the 90%-skewed workload, heat-replicated routing must cut the
  busiest shard's load share to <= ``SHARE_CEILING`` x the pinned
  case's (pinned concentrates ~1.0 of the stream on one shard;
  replication across 4 shards should land well under half);
* **hot-spot throughput lift** (absolute, cpu-gated) — the replicated
  hot stream must run >= ``LIFT_FLOOR`` x the pinned one on hosts with
  at least as many cores as replicas. On smaller hosts the parallelism
  physically isn't there (four workers time-slice one core, and the
  router's extra per-pair work is pure overhead), so the lift is
  recorded for the trajectory but the gate is waived — the load-share
  collapse above is the machine-independent half of the acceptance
  bar.

A latest run *without* the hotspot sweep (e.g. a filtered pytest
invocation) is an error: the gate must never silently pass on no data.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_SERVE_JSON = Path(__file__).parent.parent / "BENCH_serve.json"

#: acceptance bar carried by the shard-scaling bench since it landed.
SCALING_FLOOR = 2.0
#: replicated max-shard load share vs pinned, 90%-skewed workload.
SHARE_CEILING = 0.5
#: ISSUE acceptance bar: >= 2x hot-destination throughput, given cores.
LIFT_FLOOR = 2.0


def entry(timings: dict, name: str) -> dict | None:
    found = timings.get(name)
    return found if isinstance(found, dict) else None


def main() -> int:
    if not BENCH_SERVE_JSON.exists():
        print(f"FAIL: {BENCH_SERVE_JSON} missing — run `make bench-serve`")
        return 1
    payload = json.loads(BENCH_SERVE_JSON.read_text())
    runs = payload.get("runs") or []
    if not runs:
        print("FAIL: BENCH_serve.json has no recorded runs")
        return 1

    latest = runs[-1].get("timings", {})
    failures = []

    scaling = entry(latest, "shard_scaling")
    if scaling is None:
        failures.append("latest run recorded no shard_scaling sweep")
    else:
        sweep = scaling.get("sweep", {})
        speedup = (sweep.get("4") or {}).get("speedup_vs_1")
        if not isinstance(speedup, (int, float)):
            failures.append("shard_scaling sweep lacks 4-shard speedup_vs_1")
        elif speedup < SCALING_FLOOR:
            failures.append(
                f"4-shard speedup {speedup:.2f}x below the "
                f"{SCALING_FLOOR}x floor"
            )
        else:
            print(
                f"ok: 4-shard steady speedup {speedup:.2f}x "
                f"(floor {SCALING_FLOOR}x)"
            )

    hotspot = entry(latest, "hotspot_replication")
    if hotspot is None:
        print(
            "FAIL: latest run recorded no hotspot_replication sweep "
            "— run the full `make bench-serve`, not a filtered subset"
        )
        return 1
    pinned = hotspot.get("pinned") or {}
    replicated = hotspot.get("replicated") or {}

    pinned_share = pinned.get("max_shard_load_share")
    replicated_share = replicated.get("max_shard_load_share")
    if not isinstance(pinned_share, (int, float)) or not isinstance(
        replicated_share, (int, float)
    ):
        failures.append("hotspot_replication lacks max_shard_load_share")
    else:
        ceiling = SHARE_CEILING * pinned_share
        if replicated_share > ceiling:
            failures.append(
                f"replicated max shard share {replicated_share:.2f} "
                f"exceeds {ceiling:.2f} ({SHARE_CEILING} x pinned "
                f"{pinned_share:.2f})"
            )
        else:
            print(
                f"ok: hot-spot load share {pinned_share:.2f} -> "
                f"{replicated_share:.2f} (ceiling {ceiling:.2f})"
            )

    lift = hotspot.get("hot_throughput_lift")
    cpus = hotspot.get("cpus")
    replicas = hotspot.get("replicas", 4)
    if not isinstance(lift, (int, float)) or not isinstance(cpus, int):
        failures.append("hotspot_replication lacks hot_throughput_lift/cpus")
    elif cpus < replicas:
        print(
            f"ok: hot-destination throughput lift {lift:.2f}x recorded "
            f"({cpus} cpus < {replicas} replicas: no parallel headroom, "
            "gate waived)"
        )
    elif lift < LIFT_FLOOR:
        failures.append(
            f"hot-destination throughput lift {lift:.2f}x below the "
            f"{LIFT_FLOOR}x acceptance bar ({cpus} cpus)"
        )
    else:
        print(
            f"ok: hot-destination throughput lift {lift:.2f}x "
            f"(floor {LIFT_FLOOR}x, {cpus} cpus)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: sharded service floors hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
