"""Figure 11: routing around failures with predicted-path disjointness.

Partial outages are injected near destinations (>=10% of sources cut off,
>=10% fine, the paper's event filter). A cut-off source tries up to N
detours: either ranked by iNano-predicted path disjointness or chosen at
random (SOSR). The paper: for equal N, disjointness-ranking roughly
halves the fraction of still-unreachable cases (e.g. 2% vs 4% at N=5);
the y axis is log2 in the paper, so we report fractions per N directly.
"""

from __future__ import annotations

from repro.apps.detour import DetourExperiment
from repro.eval.reporting import render_table
from repro.routing.failures import sample_failures
from repro.util.rng import derive_rng

MAX_DETOURS = 8


def _collect_events(scenario, n_hosts=45, n_destinations=25, sources_per_event=3):
    engine = scenario.engine(0)
    topo = scenario.topology(0)
    prefixes = scenario.all_prefixes()
    rng = derive_rng(scenario.config.seed, "bench.detour")
    hosts = [int(p) for p in rng.choice(prefixes, size=n_hosts, replace=False)]
    events = []
    for dst in hosts[:n_destinations]:
        sources = [h for h in hosts if h != dst]
        sampled = sample_failures(topo, engine, dst, sources, seed=dst)
        if sampled is None:
            continue
        failure, cut_sources, _ = sampled
        for src in cut_sources[:sources_per_event]:
            candidates = [h for h in hosts if h not in (src, dst)]
            events.append((failure, src, dst, candidates))
    return events


def test_fig11_detour_around_failures(benchmark, scenario, report):
    events = _collect_events(scenario)
    assert len(events) >= 15, "need a meaningful failure-event population"
    experiment = DetourExperiment(
        engine=scenario.engine(0),
        predictor=scenario.shared_predictor(),
        max_detours=MAX_DETOURS,
        seed=scenario.config.seed,
    )

    result = benchmark(experiment.run, events)

    rows = []
    for n in range(1, MAX_DETOURS + 1):
        rows.append(
            (
                n,
                f"{result.unreachable_fraction('inano_disjoint', n):.3f}",
                f"{result.unreachable_fraction('random', n):.3f}",
            )
        )
    report(
        "fig11_detour",
        render_table(
            f"Figure 11 — unreachable fraction vs detours tried "
            f"({result.n_events} events; paper: iNano ≈ half of random)",
            ["N detours", "iNano disjoint ranking", "random (SOSR)"],
            rows,
        ),
    )

    # Shape: both monotone non-increasing in N; disjointness ranking at
    # least as good as random on average over N, and strictly better
    # somewhere in the small-N regime the paper emphasizes.
    inano = [result.unreachable_fraction("inano_disjoint", n) for n in range(1, MAX_DETOURS + 1)]
    rand = [result.unreachable_fraction("random", n) for n in range(1, MAX_DETOURS + 1)]
    assert all(a >= b - 1e-9 for a, b in zip(inano, inano[1:]))
    assert all(a >= b - 1e-9 for a, b in zip(rand, rand[1:]))
    assert sum(inano[:4]) <= sum(rand[:4]) + 1e-9, (
        "disjointness ranking must help in the few-detours regime"
    )
