"""Figure 5: AS-path prediction accuracy as iNano's components stack up.

The paper's ladder: RouteScope < GRAPH << GRAPH+asymmetry < +3-tuples <
+preferences < +providers (= iNano, 70%) ≈ path composition (70%) <
improved path composition (81%). We regenerate both bars (exact AS path
and AS path length) for every technique on the held-out validation set.
"""

from __future__ import annotations

from repro.baselines.routescope import RouteScopePredictor
from repro.core.predictor import PredictorConfig
from repro.errors import NoRouteError, RoutingError
from repro.eval.accuracy import as_path_metrics
from repro.eval.reporting import render_table

LADDER = [
    ("GRAPH", PredictorConfig.graph_baseline()),
    (
        "GRAPH+asym",
        PredictorConfig(
            use_from_src=True,
            use_three_tuples=False,
            use_preferences=False,
            use_providers=False,
        ),
    ),
    (
        "GRAPH+asym+tuples",
        PredictorConfig(
            use_from_src=True,
            use_three_tuples=True,
            use_preferences=False,
            use_providers=False,
        ),
    ),
    (
        "GRAPH+asym+tuples+prefs",
        PredictorConfig(
            use_from_src=True,
            use_three_tuples=True,
            use_preferences=True,
            use_providers=False,
        ),
    ),
    ("iNano (all components)", PredictorConfig.inano()),
]


def _validation_pairs(scenario, validation):
    engine = scenario.engine(0)
    pairs, truths = [], []
    for source in validation.sources:
        for dst in source.validation_targets:
            try:
                truth = engine.as_path_between(source.vantage.prefix_index, dst)
            except (NoRouteError, RoutingError):
                continue
            pairs.append((source, dst))
            truths.append(truth)
    return pairs, truths


def test_fig5_as_path_accuracy(benchmark, scenario, atlas, validation, report):
    pairs, truths = _validation_pairs(scenario, validation)

    def evaluate():
        results = {}
        # RouteScope baseline.
        rs = RouteScopePredictor(atlas, seed=scenario.config.seed)
        rs_preds = [
            rs.predict_as_path(source.vantage.prefix_index, dst)
            for source, dst in pairs
        ]
        results["RouteScope"] = as_path_metrics(rs_preds, truths)
        # The iNano component ladder.
        for name, config in LADDER:
            predictions = []
            for source, dst in pairs:
                path = source.predictor(atlas, config).predict_or_none(
                    source.vantage.prefix_index, dst
                )
                predictions.append(path.as_path if path else None)
            results[name] = as_path_metrics(predictions, truths)
        # Path composition, plain and improved.
        for improved, label in ((False, "path composition (iPlane)"),
                                (True, "improved path composition")):
            comp = scenario.composition_predictor(improved)
            predictions = []
            for source, dst in pairs:
                path = comp.predict_or_none(source.vantage.prefix_index, dst)
                if path is None:
                    predictions.append(None)
                    continue
                as_path = path.as_path
                if as_path and as_path[0] != source.vantage.asn:
                    as_path = (source.vantage.asn,) + as_path
                predictions.append(as_path)
            results[label] = as_path_metrics(predictions, truths)
        return results

    results = benchmark(evaluate)

    rows = [
        (name, f"{m.exact_fraction:.2%}", f"{m.length_fraction:.2%}", m.failures)
        for name, m in results.items()
    ]
    report(
        "fig5_as_path_accuracy",
        render_table(
            f"Figure 5 — AS path prediction accuracy (n={len(truths)}; "
            "paper: GRAPH 31% -> iNano 70% ≈ path-based 70% -> improved 81%)",
            ["technique", "exact AS path", "correct length", "failed"],
            rows,
        ),
    )

    exact = {name: m.exact_fraction for name, m in results.items()}
    # The paper's ordering claims, as shape assertions:
    assert exact["iNano (all components)"] > exact["GRAPH"], "components must help"
    assert exact["iNano (all components)"] > exact["RouteScope"], (
        "iNano beats RouteScope (paper: >2x)"
    )
    assert exact["GRAPH+asym+tuples"] > exact["GRAPH+asym"], "3-tuples are the big lever"
    assert exact["iNano (all components)"] >= exact["GRAPH+asym+tuples+prefs"] - 0.02
    # iNano lands in the neighborhood of path composition (paper: equal).
    assert exact["iNano (all components)"] >= 0.6 * exact["path composition (iPlane)"]
    # Improved composition is the best technique overall.
    assert exact["improved path composition"] >= exact["path composition (iPlane)"] - 0.02
