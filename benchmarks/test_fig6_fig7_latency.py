"""Figures 6 and 7: latency estimation accuracy and closest-node ranking.

Figure 6: CDF of absolute RTT estimation error for iNano (composed link
latencies over predicted forward+reverse paths), path composition, and
Vivaldi. Paper medians: iNano 11ms, Vivaldi 20ms, composition 6ms, with
the tail order reversed (Vivaldi best in the tail).

Figure 7: per source, |top-10 predicted closest ∩ top-10 actually
closest| — iNano ≈ path-based, both well above Vivaldi.
"""

from __future__ import annotations

import numpy as np

from repro.core.predictor import PredictorConfig
from repro.eval.accuracy import ranking_overlap
from repro.eval.reporting import render_table
from repro.util.stats import Cdf


def _collect(scenario, atlas, validation):
    """Per-technique RTT estimates aligned with ground truth."""
    vivaldi = scenario.vivaldi()
    comp = scenario.composition_predictor()
    estimates = {"inano": {}, "composition": {}, "vivaldi": {}}
    truth = {}
    for source in validation.sources:
        src = source.vantage.prefix_index
        predictor = source.predictor(atlas, PredictorConfig.inano())
        for dst in source.validation_targets:
            true_rtt = scenario.true_rtt_ms(src, dst)
            if true_rtt is None:
                continue
            truth[(src, dst)] = true_rtt
            fwd = predictor.predict_or_none(src, dst)
            rev = predictor.predict_or_none(dst, src)
            if fwd is not None and rev is not None:
                estimates["inano"][(src, dst)] = fwd.latency_ms + rev.latency_ms
            cf = comp.predict_or_none(src, dst)
            cr = comp.predict_or_none(dst, src)
            if cf is not None and cr is not None:
                estimates["composition"][(src, dst)] = cf.latency_ms + cr.latency_ms
            estimates["vivaldi"][(src, dst)] = vivaldi.distance_ms(src, dst)
    return estimates, truth


def test_fig6_latency_error_cdf(benchmark, scenario, atlas, validation, report):
    estimates, truth = benchmark(_collect, scenario, atlas, validation)

    errors = {}
    for name, table in estimates.items():
        errors[name] = [
            abs(est - truth[key]) for key, est in table.items() if key in truth
        ]
    cdfs = {name: Cdf(vals) for name, vals in errors.items() if vals}
    rows = []
    for name, cdf in cdfs.items():
        rows.append(
            (
                name,
                len(cdf),
                f"{cdf.median:.1f} ms",
                f"{cdf.quantile(0.9):.1f} ms",
                f"{cdf.at(20.0):.2f}",
            )
        )
    report(
        "fig6_latency_accuracy",
        render_table(
            "Figure 6 — RTT estimation error "
            "(paper medians: composition 6ms < iNano 11ms < Vivaldi 20ms)",
            ["technique", "n", "median error", "p90 error", "P[err<=20ms]"],
            rows,
        ),
    )

    assert cdfs["inano"].median < cdfs["vivaldi"].median, (
        "iNano must beat coordinates at the median"
    )
    # Composition's RTT-difference estimates stay within the same order of
    # magnitude (the paper has them slightly *better* at the median; with
    # our much sparser vantage set they carry more splice noise — see
    # EXPERIMENTS.md).
    assert cdfs["composition"].median < 4.0 * cdfs["inano"].median
    # Coverage: iNano answered most pairs.
    assert len(cdfs["inano"]) > 0.7 * len(truth)


def test_fig7_closest_destination_ranking(benchmark, scenario, atlas, validation, report):
    estimates, truth = _collect(scenario, atlas, validation)

    def compute():
        overlaps = {"inano": [], "composition": [], "vivaldi": []}
        for source in validation.sources:
            src = source.vantage.prefix_index
            actual = {
                dst: truth[(src, dst)]
                for dst in source.validation_targets
                if (src, dst) in truth
            }
            if len(actual) < 10:
                continue
            for name in overlaps:
                est = {
                    dst: estimates[name].get((src, dst), float("inf"))
                    for dst in actual
                }
                overlaps[name].append(ranking_overlap(est, actual, k=10))
        return overlaps

    overlaps = benchmark(compute)
    rows = [
        (name, f"{np.mean(vals):.2f}", f"{min(vals)} - {max(vals)}")
        for name, vals in overlaps.items()
        if vals
    ]
    report(
        "fig7_ranking",
        render_table(
            "Figure 7 — |top-10 predicted ∩ top-10 actual| per source "
            "(paper: iNano ≈ path-based > Vivaldi)",
            ["technique", "mean overlap (of 10)", "range"],
            rows,
        ),
    )

    assert np.mean(overlaps["inano"]) >= np.mean(overlaps["vivaldi"]), (
        "iNano's ranking must be at least as good as Vivaldi's"
    )
    assert np.mean(overlaps["inano"]) >= 5.0
