"""Network-gateway benchmarks: the cost of crossing the node boundary.

Three sweeps over a gateway serving the default scenario's atlas on
both transports, recorded to ``BENCH_net.json`` under ``BENCH_RECORD=1``
(``make bench-net``):

* **connect** — TCP connect + HELLO/WELCOME handshake latency (the
  per-client session setup cost);
* **pipelined QPS** — single-PREDICT frames pipelined N-deep vs. sent
  one-at-a-time (request/reply lockstep), plus ``predict_batch`` for
  the one-frame batching ceiling. Pipelining is where the front-end
  protocol wins back the wire's round trip — the acceptance gate is
  ≥ 1k pipelined queries/s on warm destinations;
* **delta push** — wall time from :meth:`NetworkGateway.push_delta` to
  a subscribed bootstrapped client having *applied* the day in place
  (decode + CSR patch + warm-start repair included), plus the wire
  size of the push;
* **fan-out sweep** — wall time from :meth:`NetworkGateway.push_delta`
  to the *last* of N loopback subscribers having received the day's
  push frame, for N = 1, 50, 200. The acceptance gate is the 200/1
  latency ratio staying within ``FANOUT_RATIO_GATE``: per-subscriber
  distribution work must stay negligible against the day's shared
  encode+apply cost. Subscribers here *receive* rather than apply —
  on a shared-CPU loopback host, N clients applying serialize on the
  interpreter, which would measure the harness, not the gateway; one
  subscriber's bytes are decode-validated out of band each round.
"""

from __future__ import annotations

import copy
import gc
import os
import selectors
import socket
import threading
import time

import pytest

from repro.atlas.delta import compute_delta
from repro.atlas.model import LinkRecord
from repro.atlas.serialization import decode_delta, encode_delta
from repro.client import AtlasServer
from repro.net import NetworkClient, NetworkGateway
from repro.net import protocol as P
from repro.util.stats import nearest_rank

N_CONNECTS = 20
PIPELINE_DEPTH = 256
PIPELINE_ROUNDS = 4
LOCKSTEP_QUERIES = 200
QPS_GATE = 1000.0
SWEEP_NS = (1, 50, 200)
SWEEP_ROUNDS = 3
FANOUT_RATIO_GATE = 2.0


@pytest.fixture(scope="module")
def server(scenario):
    server = AtlasServer()
    server.publish(copy.deepcopy(scenario.atlas(0)))
    return server


@pytest.fixture(scope="module")
def workload(scenario):
    """Warm-destination pairs: a small destination set (well inside one
    pool's LRU) so the sweep times the wire, not cold searches."""
    atlas = scenario.atlas(0)
    prefixes = sorted(atlas.prefix_to_cluster)
    dsts = prefixes[:8]
    srcs = prefixes[:25]
    return [(s, d) for d in dsts for s in srcs if s != d]


def test_bench_gateway(server, scenario, workload, bench_record_net, report):
    delta = compute_delta(scenario.atlas(0), _next_day(scenario))
    gateway = NetworkGateway(server, tcp=("127.0.0.1", 0))
    gateway.start()
    gc.disable()
    try:
        host, port = gateway.tcp_address

        # -- connect + handshake latency --
        connects = []
        for _ in range(N_CONNECTS):
            start = time.perf_counter()
            NetworkClient.connect_tcp(host, port).close()
            connects.append(time.perf_counter() - start)

        client = NetworkClient.connect_tcp(host, port)
        client.predict_batch(workload)  # warm the pooled search caches

        # -- lockstep (one in flight) vs pipelined vs one-frame batch --
        lockstep = workload[:LOCKSTEP_QUERIES]
        start = time.perf_counter()
        for src, dst in lockstep:
            client.predict(src, dst)
        lockstep_s = time.perf_counter() - start
        lockstep_qps = len(lockstep) / lockstep_s

        window = (workload * ((PIPELINE_DEPTH // len(workload)) + 1))[
            :PIPELINE_DEPTH
        ]
        start = time.perf_counter()
        for _ in range(PIPELINE_ROUNDS):
            client.pipeline_predict(window)
        pipelined_s = (time.perf_counter() - start) / PIPELINE_ROUNDS
        pipelined_qps = len(window) / pipelined_s

        start = time.perf_counter()
        for _ in range(PIPELINE_ROUNDS):
            client.predict_batch(window)
        batch_s = (time.perf_counter() - start) / PIPELINE_ROUNDS
        batch_qps = len(window) / batch_s

        # -- tracing overhead: FLAG_TRACE negotiated, sampling off --
        # the deployment default for always-on tracing support; the
        # obs gate (benchmarks/check_obs_overhead.py) holds the
        # pipelined-QPS regression of this mode within 5%
        traced = NetworkClient.connect_tcp(
            host, port, trace=True, trace_sample=0.0
        )
        traced.predict_batch(workload)  # same cache warmth as `client`
        start = time.perf_counter()
        for _ in range(PIPELINE_ROUNDS):
            traced.pipeline_predict(window)
        traced_s = (time.perf_counter() - start) / PIPELINE_ROUNDS
        traced_qps = len(window) / traced_s
        traced.close()

        # -- delta push latency: gateway apply -> client applied in place --
        subscriber = NetworkClient.connect_tcp(host, port)
        subscriber.bootstrap()
        start = time.perf_counter()
        push = gateway.push_delta(delta)
        pushed_s = time.perf_counter() - start
        subscriber.wait_for_day(push["day"], timeout=30.0)
        applied_s = time.perf_counter() - start
        subscriber.close()
        client.close()
    finally:
        gc.enable()
        gateway.close()

    stats = {
        "connect_p50_ms": round(nearest_rank(connects, 0.50) * 1000, 3),
        "connect_p99_ms": round(nearest_rank(connects, 0.99) * 1000, 3),
        "lockstep_qps": round(lockstep_qps, 1),
        "pipelined_qps": round(pipelined_qps, 1),
        "pipelined_qps_trace_off": round(traced_qps, 1),
        "trace_overhead_pct": round(
            max(0.0, (1.0 - traced_qps / pipelined_qps) * 100), 2
        ),
        "pipeline_depth": PIPELINE_DEPTH,
        "batch_qps": round(batch_qps, 1),
        "push_apply_ms": round(pushed_s * 1000, 3),
        "push_applied_client_ms": round(applied_s * 1000, 3),
        "push_wire_bytes": push["wire_bytes"],
        "cpus": os.cpu_count(),
    }
    bench_record_net("gateway_tcp", **stats)
    from repro.eval.reporting import render_table

    report(
        "net_gateway",
        render_table(
            f"Network gateway (TCP loopback, {len(workload)} warm pairs)",
            ["metric", "value"],
            [
                ("connect p50", f"{stats['connect_p50_ms']:.2f} ms"),
                ("lockstep QPS", f"{stats['lockstep_qps']:,.0f}"),
                (
                    f"pipelined QPS (depth {PIPELINE_DEPTH})",
                    f"{stats['pipelined_qps']:,.0f}",
                ),
                (
                    "pipelined QPS (trace on, sample 0)",
                    f"{stats['pipelined_qps_trace_off']:,.0f}",
                ),
                ("batch QPS", f"{stats['batch_qps']:,.0f}"),
                ("delta push -> applied", f"{stats['push_applied_client_ms']:.1f} ms"),
                ("push wire size", f"{stats['push_wire_bytes']:,} B"),
            ],
        ),
    )
    # the acceptance gate: the wire must not cap the service below 1k
    # pipelined queries/s on warm destinations. (The pipelined-vs-
    # lockstep ratio is recorded, not asserted — on a loaded 1-core
    # host scheduler jitter can invert the ~25% margin.)
    assert pipelined_qps >= QPS_GATE, stats
    assert lockstep_qps >= QPS_GATE, stats


def _next_day(scenario):
    nxt = copy.deepcopy(scenario.atlas(1))
    nxt.day = 1
    return nxt


class _SweepSubscribers:
    """N raw subscribed sockets drained by one selector thread.

    Completion is byte-counted (every socket must receive exactly one
    push frame's worth of bytes per round) so the timed window contains
    no parsing; subscriber 0 keeps its bytes for out-of-band frame
    decode + delta validation. The reader sleeps briefly between
    selector batches so fan-out writes accumulate instead of the reader
    stealing the interpreter from the gateway loop once per socket —
    the ~0.5 ms granularity this adds to the measured latency is the
    same for every N.
    """

    def __init__(self, host: str, port: int, n: int) -> None:
        self.n = n
        self.socks: list[socket.socket] = []
        self.sel = selectors.DefaultSelector()
        self.counts: dict[int, list] = {}
        self._scratch = bytearray(1 << 20)
        hello = P.encode_frame(P.HELLO, 0, P.encode_hello(P.FLAG_SUBSCRIBE))
        for i in range(n):
            s = socket.create_connection((host, port))
            s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            s.sendall(hello)
            self.socks.append(s)
        for i, s in enumerate(self.socks):
            dec = P.FrameDecoder(P.DEFAULT_MAX_FRAME)
            welcome = None
            while welcome is None:
                for frame in dec.feed(s.recv(65536)):
                    welcome = frame
                    break
            assert welcome[0] == P.WELCOME
            s.setblocking(False)
            self.sel.register(s, selectors.EVENT_READ)
            # [socket, bytes received, kept bytes (subscriber 0 only)]
            self.counts[s.fileno()] = [s, 0, bytearray() if i == 0 else None]

    def await_round(self, wire_bytes: int, done: threading.Event) -> None:
        targets = {fd: ent[1] + wire_bytes for fd, ent in self.counts.items()}
        need = self.n
        while need:
            time.sleep(0.0005)  # batch wakes; see class docstring
            for key, _ in self.sel.select(timeout=5.0):
                ent = self.counts[key.fd]
                try:
                    m = ent[0].recv_into(self._scratch)
                except BlockingIOError:
                    continue
                if ent[2] is not None:
                    ent[2] += self._scratch[:m]
                before = ent[1]
                ent[1] += m
                if before < targets[key.fd] <= ent[1]:
                    need -= 1
        done.set()

    def validate_round(self, delta) -> None:
        kept = self.counts[self.socks[0].fileno()][2]
        frames = P.FrameDecoder(P.DEFAULT_MAX_FRAME).feed(bytes(kept))
        del kept[:]
        assert frames and frames[-1][0] == P.DELTA_PUSH
        decoded = decode_delta(frames[-1][2])
        assert decoded.new_day == delta.new_day

    def close(self) -> None:
        for s in self.socks:
            self.sel.unregister(s)
            s.close()
        self.sel.close()


def _wait_until(predicate, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


def test_bench_push_fanout_sweep(server, bench_record_net, report):
    server.runtime()  # live runtime: every push repairs the compiled core
    gateway = NetworkGateway(server, tcp=("127.0.0.1", 0))
    gateway.start()
    gc.disable()
    stats: dict = {}
    try:
        host, port = gateway.tcp_address
        # synthetic successive days off the gateway's live atlas: every
        # link's latency nudges, i.e. a full-size value-churn day (a
        # real scenario day costs a ~10 s topology rebuild per round)
        cur = copy.deepcopy(server.runtime().atlas)
        best_ms: dict[int, float] = {}
        fanout_us: dict[int, float] = {}
        wire_bytes = 0
        for n in SWEEP_NS:
            _wait_until(lambda: not gateway._conns)
            subs = _SweepSubscribers(host, port, n)
            try:
                _wait_until(lambda: len(gateway._conns) == n)
                for _ in range(SWEEP_ROUNDS):
                    nxt = copy.deepcopy(cur)
                    nxt.day = cur.day + 1
                    for key, rec in nxt.links.items():
                        nxt.links[key] = LinkRecord(
                            latency_ms=rec.latency_ms * 1.01 + 0.01,
                            loss_rate=rec.loss_rate,
                        )
                    delta = compute_delta(cur, nxt)
                    cur = nxt
                    wire = len(encode_delta(delta)) + P.HEADER_SIZE
                    done = threading.Event()
                    th = threading.Thread(
                        target=subs.await_round, args=(wire, done)
                    )
                    th.start()
                    start = time.perf_counter()
                    push = gateway.push_delta(delta)
                    assert done.wait(30.0)
                    elapsed_ms = (time.perf_counter() - start) * 1e3
                    th.join()
                    assert push["subscribers"] == n
                    wire_bytes = push["wire_bytes"]
                    subs.validate_round(delta)
                    if n not in best_ms or elapsed_ms < best_ms[n]:
                        best_ms[n] = elapsed_ms
                        fanout_us[n] = gateway.stats["push_enqueue_us"]
            finally:
                subs.close()
        assert gateway.stats["push_errors"] == 0
        assert gateway.stats["push_drops"] == 0
    finally:
        gc.enable()
        gateway.close()

    ratio = best_ms[SWEEP_NS[-1]] / best_ms[SWEEP_NS[0]]
    for n in SWEEP_NS:
        stats[f"all_received_{n}_ms"] = round(best_ms[n], 3)
    stats["ratio_200_over_1"] = round(ratio, 3)
    stats["fanout_loop_us_200"] = round(fanout_us[SWEEP_NS[-1]], 1)
    stats["wire_bytes"] = wire_bytes
    stats["rounds"] = SWEEP_ROUNDS
    stats["cpus"] = os.cpu_count()
    bench_record_net("push_fanout", **stats)
    from repro.eval.reporting import render_table

    report(
        "net_push_fanout",
        render_table(
            "Delta push fan-out (TCP loopback, best of "
            f"{SWEEP_ROUNDS} rounds)",
            ["subscribers", "push -> all received"],
            [(str(n), f"{best_ms[n]:.2f} ms") for n in SWEEP_NS]
            + [
                ("ratio 200/1", f"{ratio:.2f}x"),
                ("fan-out loop @200", f"{fanout_us[SWEEP_NS[-1]]:.0f} us"),
            ],
        ),
    )
    # the tentpole gate: distribution latency stays flat as subscribers
    # scale — per-subscriber cost must not rival the day's shared work
    assert ratio <= FANOUT_RATIO_GATE, stats
