"""Network-gateway benchmarks: the cost of crossing the node boundary.

Three sweeps over a gateway serving the default scenario's atlas on
both transports, recorded to ``BENCH_net.json`` under ``BENCH_RECORD=1``
(``make bench-net``):

* **connect** — TCP connect + HELLO/WELCOME handshake latency (the
  per-client session setup cost);
* **pipelined QPS** — single-PREDICT frames pipelined N-deep vs. sent
  one-at-a-time (request/reply lockstep), plus ``predict_batch`` for
  the one-frame batching ceiling. Pipelining is where the front-end
  protocol wins back the wire's round trip — the acceptance gate is
  ≥ 1k pipelined queries/s on warm destinations;
* **delta push** — wall time from :meth:`NetworkGateway.push_delta` to
  a subscribed bootstrapped client having *applied* the day in place
  (decode + CSR patch + warm-start repair included), plus the wire
  size of the push.
"""

from __future__ import annotations

import copy
import gc
import os
import time

import pytest

from repro.atlas.delta import compute_delta
from repro.client import AtlasServer
from repro.net import NetworkClient, NetworkGateway

N_CONNECTS = 20
PIPELINE_DEPTH = 256
PIPELINE_ROUNDS = 4
LOCKSTEP_QUERIES = 200
QPS_GATE = 1000.0


@pytest.fixture(scope="module")
def server(scenario):
    server = AtlasServer()
    server.publish(copy.deepcopy(scenario.atlas(0)))
    return server


@pytest.fixture(scope="module")
def workload(scenario):
    """Warm-destination pairs: a small destination set (well inside one
    pool's LRU) so the sweep times the wire, not cold searches."""
    atlas = scenario.atlas(0)
    prefixes = sorted(atlas.prefix_to_cluster)
    dsts = prefixes[:8]
    srcs = prefixes[:25]
    return [(s, d) for d in dsts for s in srcs if s != d]


def _percentile(values: list[float], q: float) -> float:
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def test_bench_gateway(server, scenario, workload, bench_record_net, report):
    delta = compute_delta(scenario.atlas(0), _next_day(scenario))
    gateway = NetworkGateway(server, tcp=("127.0.0.1", 0))
    gateway.start()
    gc.disable()
    try:
        host, port = gateway.tcp_address

        # -- connect + handshake latency --
        connects = []
        for _ in range(N_CONNECTS):
            start = time.perf_counter()
            NetworkClient.connect_tcp(host, port).close()
            connects.append(time.perf_counter() - start)

        client = NetworkClient.connect_tcp(host, port)
        client.predict_batch(workload)  # warm the pooled search caches

        # -- lockstep (one in flight) vs pipelined vs one-frame batch --
        lockstep = workload[:LOCKSTEP_QUERIES]
        start = time.perf_counter()
        for src, dst in lockstep:
            client.predict(src, dst)
        lockstep_s = time.perf_counter() - start
        lockstep_qps = len(lockstep) / lockstep_s

        window = (workload * ((PIPELINE_DEPTH // len(workload)) + 1))[
            :PIPELINE_DEPTH
        ]
        start = time.perf_counter()
        for _ in range(PIPELINE_ROUNDS):
            client.pipeline_predict(window)
        pipelined_s = (time.perf_counter() - start) / PIPELINE_ROUNDS
        pipelined_qps = len(window) / pipelined_s

        start = time.perf_counter()
        for _ in range(PIPELINE_ROUNDS):
            client.predict_batch(window)
        batch_s = (time.perf_counter() - start) / PIPELINE_ROUNDS
        batch_qps = len(window) / batch_s

        # -- delta push latency: gateway apply -> client applied in place --
        subscriber = NetworkClient.connect_tcp(host, port)
        subscriber.bootstrap()
        start = time.perf_counter()
        push = gateway.push_delta(delta)
        pushed_s = time.perf_counter() - start
        subscriber.wait_for_day(push["day"], timeout=30.0)
        applied_s = time.perf_counter() - start
        subscriber.close()
        client.close()
    finally:
        gc.enable()
        gateway.close()

    stats = {
        "connect_p50_ms": round(_percentile(connects, 0.50) * 1000, 3),
        "connect_p99_ms": round(_percentile(connects, 0.99) * 1000, 3),
        "lockstep_qps": round(lockstep_qps, 1),
        "pipelined_qps": round(pipelined_qps, 1),
        "pipeline_depth": PIPELINE_DEPTH,
        "batch_qps": round(batch_qps, 1),
        "push_apply_ms": round(pushed_s * 1000, 3),
        "push_applied_client_ms": round(applied_s * 1000, 3),
        "push_wire_bytes": push["wire_bytes"],
        "cpus": os.cpu_count(),
    }
    bench_record_net("gateway_tcp", **stats)
    from repro.eval.reporting import render_table

    report(
        "net_gateway",
        render_table(
            f"Network gateway (TCP loopback, {len(workload)} warm pairs)",
            ["metric", "value"],
            [
                ("connect p50", f"{stats['connect_p50_ms']:.2f} ms"),
                ("lockstep QPS", f"{stats['lockstep_qps']:,.0f}"),
                (
                    f"pipelined QPS (depth {PIPELINE_DEPTH})",
                    f"{stats['pipelined_qps']:,.0f}",
                ),
                ("batch QPS", f"{stats['batch_qps']:,.0f}"),
                ("delta push -> applied", f"{stats['push_applied_client_ms']:.1f} ms"),
                ("push wire size", f"{stats['push_wire_bytes']:,} B"),
            ],
        ),
    )
    # the acceptance gate: the wire must not cap the service below 1k
    # pipelined queries/s on warm destinations. (The pipelined-vs-
    # lockstep ratio is recorded, not asserted — on a loaded 1-core
    # host scheduler jitter can invert the ~25% margin.)
    assert pipelined_qps >= QPS_GATE, stats
    assert lockstep_qps >= QPS_GATE, stats


def _next_day(scenario):
    nxt = copy.deepcopy(scenario.atlas(1))
    nxt.day = 1
    return nxt
