"""Table 2: size of iNano's atlas and of the daily delta.

Regenerates the paper's table — per-dataset entry counts, compressed
bytes, and the compressed size of the day-0 -> day-1 delta — and checks
the claims that matter: the whole atlas is megabyte-scale (paper: 6.6MB at
140K-prefix scale; ours scales down with the synthetic Internet), the
daily delta is a small fraction of the atlas, and the path-based atlas the
same measurements would produce for iPlane is orders of magnitude larger.
"""

from __future__ import annotations

import zlib

from repro.atlas.delta import compute_delta, delta_payloads
from repro.atlas.serialization import dataset_payloads, encode_atlas
from repro.eval.reporting import render_table


def test_table2_atlas_and_delta_sizes(benchmark, scenario, atlas, report):
    day1 = scenario.atlas(1)

    def build():
        payloads = dataset_payloads(atlas)
        sizes = {k: len(zlib.compress(v)) for k, v in payloads.items()}
        delta = compute_delta(atlas, day1)
        dsizes = {
            k: len(zlib.compress(v)) for k, v in delta_payloads(delta).items()
        }
        return payloads, sizes, delta, dsizes

    payloads, sizes, delta, dsizes = benchmark(build)

    counts = atlas.entry_counts()
    delta_counts = delta.entry_counts()
    rows = []
    for name in payloads:
        rows.append(
            (
                name,
                counts.get(name, ""),
                f"{sizes[name]/1000:.2f} KB",
                delta_counts.get(name, 0) or "",
                f"{dsizes.get(name, 0)/1000:.2f} KB" if name in dsizes else "-",
            )
        )
    total = sum(sizes.values())
    delta_total = sum(dsizes.values())
    rows.append(("TOTAL", "", f"{total/1000:.2f} KB", "", f"{delta_total/1000:.2f} KB"))
    report(
        "table2_atlas_size",
        render_table(
            "Table 2 — atlas datasets: entries, compressed size, daily delta",
            ["dataset", "entries", "compressed", "delta entries", "delta compressed"],
            rows,
        ),
    )

    # Shape assertions (scaled-down analogues of the paper's 6.6MB / 1.34MB):
    assert total < 2_000_000, "link-level atlas must stay megabyte-scale"
    assert delta_total < 0.5 * total, "daily delta must be a fraction of the atlas"
    # Three-tuples dominate entry count, as in the paper.
    assert counts["as_three_tuples"] == max(
        counts[k] for k in ("as_three_tuples", "inter_cluster_links", "as_preferences")
    )
    # Full encoded atlas round-trips and stays small.
    assert len(encode_atlas(atlas)) < 2_500_000


def test_table2_path_atlas_comparison(benchmark, scenario, atlas, report):
    """iPlane's path atlas vs iNano's link atlas (Section 6.1 scaling claim)."""
    composition = scenario.composition_predictor()

    def measure():
        return len(encode_atlas(atlas)), composition.serialized_size_bytes()

    link_bytes, path_bytes = benchmark(measure)
    report(
        "table2_atlas_comparison",
        render_table(
            "Atlas size: link-level (iNano) vs path-level (iPlane)",
            ["representation", "bytes", "relative"],
            [
                ("iNano link atlas (compressed)", link_bytes, "1.0x"),
                (
                    "iPlane path atlas (raw rows)",
                    path_bytes,
                    f"{path_bytes/link_bytes:.1f}x",
                ),
            ],
        ),
    )
    assert path_bytes > 3 * link_bytes
