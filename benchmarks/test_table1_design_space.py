"""Table 1: qualitative comparison of design alternatives.

Reproduced as *measured* qualitative properties of our implementations:
which metrics each system can produce, whether it answers arbitrary-pair
queries, and the per-client state it needs (the scalability axis).
"""

from __future__ import annotations

from repro.atlas.serialization import encode_atlas
from repro.core.predictor import PredictorConfig
from repro.eval.reporting import render_table


def test_table1_design_alternatives(benchmark, scenario, atlas, report):
    composition = scenario.composition_predictor()
    vivaldi = scenario.vivaldi()

    def build_rows():
        link_atlas_mb = len(encode_atlas(atlas)) / 1e6
        path_atlas_mb = composition.serialized_size_bytes() / 1e6
        coord_bytes = 3 * 8  # 2-D + height coordinate per host
        return [
            (
                "A1 network coordinates",
                "latency only",
                "no",
                "yes",
                "yes",
                f"{coord_bytes} B/host",
            ),
            (
                "A2 iPlane servers",
                "latency+loss",
                "PoP path",
                "yes",
                "no (central)",
                f"{path_atlas_mb:.1f} MB central",
            ),
            (
                "A3 network newspaper",
                "latency+loss",
                "PoP path",
                "yes",
                "no (atlas too big)",
                f"{path_atlas_mb:.1f} MB/host",
            ),
            (
                "A4 end-host measurement",
                "latency+loss",
                "PoP path",
                "no",
                "no (probe load)",
                "n/a",
            ),
            (
                "A5 iNano",
                "latency+loss",
                "PoP path",
                "yes",
                "yes",
                f"{link_atlas_mb:.2f} MB/host",
            ),
        ]

    rows = benchmark(build_rows)
    report(
        "table1_design_space",
        render_table(
            "Table 1 — design alternatives (measured where applicable)",
            ["alternative", "metrics", "structure", "arbitrary pairs", "scalable", "state"],
            rows,
        ),
    )
    # iNano's per-host state must be far below the path-based newspaper's.
    link_mb = float(rows[4][5].split(" ")[0])
    path_mb = float(rows[2][5].split(" ")[0])
    assert link_mb * 3 < path_mb

    # And iNano must actually deliver the qualitative feature set: rich
    # metrics + structure for arbitrary pairs.
    predictor = scenario.shared_predictor(PredictorConfig.inano())
    prefixes = scenario.all_prefixes()
    sample = predictor.predict_or_none(prefixes[3], prefixes[-3])
    assert sample is not None
    assert sample.as_path and sample.latency_ms > 0
