#!/usr/bin/env python
"""CI gate for the search-kernel speedup floor (stdlib only).

``make bench-search`` appends one run to ``BENCH_search.json``; this
script then fails the build if the *latest* run's kernel-vs-spec
speedup fell below the recorded floor:

* absolute — the best ``fanout_*`` cold-search ratio must stay >=
  ``FANOUT_FLOOR`` (the ISSUE acceptance bar for the array-native
  kernel on the high-fanout atlas);
* relative — it must also hold >= ``TOLERANCE`` of the best fanout
  ratio ever recorded in the trajectory, so a slow decay that never
  crosses the absolute bar still trips the gate.

Older trajectory entries predating the fanout arena are skipped when
computing the historical best; a latest run *without* fanout entries
(e.g. a filtered pytest invocation) is an error, because the gate
would otherwise silently pass on no data.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BENCH_SEARCH_JSON = Path(__file__).parent.parent / "BENCH_search.json"

#: ISSUE acceptance bar: kernel >= 2.2x spec, cold search, fanout atlas.
FANOUT_FLOOR = 2.2
#: fraction of the best-ever recorded fanout ratio the latest run must
#: retain. Generous on purpose: bench hosts vary (CI vs the 1-core
#: container the trajectory was seeded on) and the absolute floor
#: already guards the acceptance bar.
TOLERANCE = 0.55


def best_fanout_ratio(timings: dict) -> float | None:
    cold = timings.get("cold_search")
    if not isinstance(cold, dict):
        return None
    ratios = [
        entry["ratio"]
        for key, entry in cold.items()
        if key.startswith("fanout_") and isinstance(entry, dict)
    ]
    return max(ratios) if ratios else None


def main() -> int:
    if not BENCH_SEARCH_JSON.exists():
        print(f"FAIL: {BENCH_SEARCH_JSON} missing — run `make bench-search`")
        return 1
    payload = json.loads(BENCH_SEARCH_JSON.read_text())
    runs = payload.get("runs") or []
    if not runs:
        print("FAIL: BENCH_search.json has no recorded runs")
        return 1

    latest = best_fanout_ratio(runs[-1].get("timings", {}))
    if latest is None:
        print(
            "FAIL: latest run recorded no fanout_* cold_search entries "
            "— run the full `make bench-search`, not a filtered subset"
        )
        return 1

    history = [
        ratio
        for run in runs[:-1]
        if (ratio := best_fanout_ratio(run.get("timings", {}))) is not None
    ]
    floor = FANOUT_FLOOR
    if history:
        floor = max(floor, max(history) * TOLERANCE)

    verdict = "OK" if latest >= floor else "FAIL"
    print(
        f"{verdict}: fanout kernel-vs-spec ratio {latest:.2f}x "
        f"(floor {floor:.2f}x = max(absolute {FANOUT_FLOOR}, "
        f"{TOLERANCE} * best-recorded"
        f"{f' {max(history):.2f}x' if history else ' n/a'}))"
    )
    return 0 if latest >= floor else 1


if __name__ == "__main__":
    sys.exit(main())
