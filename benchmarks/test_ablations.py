"""Ablation benches for iNano's design knobs (beyond Figure 5's ladder).

DESIGN.md calls out three tunables whose settings the paper fixes without
sweeping; these benches sweep them on the default scenario:

* the 3-tuple check's middle-AS degree threshold (paper: 5),
* frontier-measurement redundancy (paper: "some redundancy"),
* the preference-dominance ratio (paper: 3x).
"""

from __future__ import annotations

from repro.atlas.builder import AtlasBuilder, AtlasInputs
from repro.atlas.preferences import PreferenceInference
from repro.core.predictor import PredictorConfig
from repro.errors import NoRouteError, RoutingError
from repro.eval.accuracy import as_path_metrics
from repro.eval.reporting import render_table


def _validation_pairs(scenario, validation):
    engine = scenario.engine(0)
    pairs, truths = [], []
    for source in validation.sources:
        for dst in source.validation_targets:
            try:
                truth = engine.as_path_between(source.vantage.prefix_index, dst)
            except (NoRouteError, RoutingError):
                continue
            pairs.append((source, dst))
            truths.append(truth)
    return pairs, truths


def test_ablation_tuple_degree_threshold(benchmark, scenario, atlas, validation, report):
    """Sweep the visibility waiver: check tuples only above degree D."""
    pairs, truths = _validation_pairs(scenario, validation)

    def sweep():
        rows = []
        for threshold in (0, 2, 5, 10, 10_000):
            config = PredictorConfig(tuple_degree_threshold=threshold)
            predictions = []
            for source, dst in pairs:
                path = source.predictor(atlas, config).predict_or_none(
                    source.vantage.prefix_index, dst
                )
                predictions.append(path.as_path if path else None)
            metrics = as_path_metrics(predictions, truths)
            rows.append(
                (
                    threshold,
                    f"{metrics.exact_fraction:.2%}",
                    metrics.failures,
                )
            )
        return rows

    rows = benchmark(sweep)
    report(
        "ablation_tuple_threshold",
        render_table(
            "Ablation — 3-tuple degree threshold (paper fixes 5; threshold "
            "10000 disables the check entirely, 0 checks every AS)",
            ["degree threshold", "exact AS path", "failed"],
            rows,
        ),
    )
    by_threshold = {t: (acc, fails) for t, acc, fails in rows}
    # Checking everything (0) must fail more queries than the waivered 5.
    assert by_threshold[0][1] >= by_threshold[5][1]


def test_ablation_frontier_redundancy(benchmark, scenario, report):
    """Loss-annotation coverage/quality vs frontier redundancy."""
    topo = scenario.topology(0)

    def sweep():
        rows = []
        for redundancy in (1, 2, 4):
            inputs = AtlasInputs(
                traceroutes=scenario.traces(0),
                cluster_map=scenario.cluster_map(0),
                feed=scenario.feed(0),
                loss_prober=None,  # latency-only rebuild; we measure link sets
                day=0,
                frontier_redundancy=redundancy,
            )
            built = AtlasBuilder(inputs).build()
            rows.append((redundancy, len(built.links), len(built.three_tuples)))
        return rows

    rows = benchmark(sweep)
    report(
        "ablation_frontier_redundancy",
        render_table(
            "Ablation — frontier redundancy (links/tuples are redundancy-"
            "independent; only probing load changes)",
            ["redundancy", "links", "3-tuples"],
            rows,
        ),
    )
    # The structural datasets must not depend on the redundancy knob.
    assert len({links for _, links, _ in rows}) == 1


def test_ablation_preference_dominance(benchmark, scenario, atlas, report):
    """How many preferences survive as the dominance ratio grows."""

    def sweep():
        # Rebuild preference inference from the atlas's terminating paths
        # at several dominance ratios.
        feed = scenario.feed(0)
        rows = []
        for dominance in (1.5, 3.0, 6.0):
            inference = PreferenceInference(dominance=dominance)
            for (_, prefix_index), path in sorted(feed.paths.items()):
                inference.add_path(path)
            prefs = inference.infer(
                three_tuples=atlas.three_tuples, degrees=atlas.as_degrees
            )
            rows.append((dominance, len(prefs)))
        return rows

    rows = benchmark(sweep)
    report(
        "ablation_preference_dominance",
        render_table(
            "Ablation — preference dominance ratio (paper fixes 3x)",
            ["dominance", "preferences kept"],
            rows,
        ),
    )
    counts = [count for _, count in rows]
    # Stricter dominance keeps fewer (or equal) preferences.
    assert all(a >= b for a, b in zip(counts, counts[1:]))
    assert counts[-1] >= 0
