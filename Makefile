# Developer entry points. `make verify` is the tier-1 gate every PR must
# keep green; `make bench-smoke` times the query engine (GC off for stable
# numbers) and appends the run to BENCH_query.json.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: verify bench-smoke bench equivalence

verify:
	$(PYTEST) -x -q

bench-smoke:
	BENCH_RECORD=1 $(PYTEST) benchmarks/test_query_performance.py -q \
		--benchmark-disable-gc --benchmark-min-rounds=5 --benchmark-warmup=off

bench:
	BENCH_RECORD=1 $(PYTEST) benchmarks -q --benchmark-disable-gc

equivalence:
	$(PYTEST) tests/test_compiled_equivalence.py -q
