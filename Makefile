# Developer entry points. `make verify` is the tier-1 gate every PR must
# keep green; `make bench-smoke` times the query engine (GC off for stable
# numbers, appends to BENCH_query.json) and the update path (bench-update,
# appends cold-recompile vs in-place-patch timings to BENCH_update.json).

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: verify bench-smoke bench bench-update bench-search equivalence

verify:
	$(PYTEST) -x -q

bench-update:
	BENCH_RECORD=1 $(PYTEST) benchmarks/test_update_performance.py -q

bench-search:
	BENCH_RECORD=1 $(PYTEST) benchmarks/test_search_performance.py -q

bench-smoke: bench-update bench-search
	BENCH_RECORD=1 $(PYTEST) benchmarks/test_query_performance.py -q \
		--benchmark-disable-gc --benchmark-min-rounds=5 --benchmark-warmup=off

bench:
	BENCH_RECORD=1 $(PYTEST) benchmarks -q --benchmark-disable-gc

equivalence:
	$(PYTEST) tests/test_compiled_equivalence.py \
		tests/test_runtime_delta_chain.py \
		tests/test_search_kernel_property.py -q
