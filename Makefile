# Developer entry points. `make verify` is the tier-1 gate every PR must
# keep green; `make bench-smoke` times the query engine (GC off for stable
# numbers, appends to BENCH_query.json), the update path (bench-update,
# appends cold-recompile vs in-place-patch timings to BENCH_update.json),
# the search kernel (bench-search -> BENCH_search.json), the sharded
# prediction service (bench-serve, shard-count throughput/p50/p99 sweeps
# -> BENCH_serve.json), and the network gateway (bench-net, connect /
# pipelined-QPS / delta-push-latency sweeps -> BENCH_net.json).

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: verify bench-smoke bench bench-update bench-search bench-serve bench-net bench-obs equivalence

verify:
	$(PYTEST) -x -q

bench-update:
	BENCH_RECORD=1 $(PYTEST) benchmarks/test_update_performance.py -q

bench-search:
	BENCH_RECORD=1 $(PYTEST) benchmarks/test_search_performance.py -q
	python benchmarks/check_search_floor.py

bench-serve:
	BENCH_RECORD=1 $(PYTEST) benchmarks/test_serve_performance.py -q
	python benchmarks/check_serve_floor.py

bench-net:
	BENCH_RECORD=1 $(PYTEST) benchmarks/test_net_performance.py -q
	python benchmarks/check_net_floor.py
	python benchmarks/check_obs_overhead.py

bench-obs:
	BENCH_RECORD=1 $(PYTEST) benchmarks/test_net_performance.py -q -k bench_gateway
	python benchmarks/check_obs_overhead.py

bench-smoke: bench-update bench-search bench-serve bench-net
	BENCH_RECORD=1 $(PYTEST) benchmarks/test_query_performance.py -q \
		--benchmark-disable-gc --benchmark-min-rounds=5 --benchmark-warmup=off

bench:
	BENCH_RECORD=1 $(PYTEST) benchmarks -q --benchmark-disable-gc

equivalence:
	$(PYTEST) tests/test_compiled_equivalence.py \
		tests/test_runtime_delta_chain.py \
		tests/test_search_kernel_property.py \
		tests/test_delta_codec.py \
		tests/test_serve_equivalence.py \
		tests/test_net_equivalence.py -q
