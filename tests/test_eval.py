"""Tests for the evaluation harness (metrics, validation, reporting)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.eval.accuracy import (
    as_path_metrics,
    latency_errors_ms,
    loss_errors,
    ranking_overlap,
)
from repro.eval.reporting import render_bars, render_cdf_rows, render_table
from repro.eval.scenarios import get_scenario
from repro.eval.similarity import path_similarity


class TestSimilarity:
    def test_identical(self):
        assert path_similarity([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert path_similarity([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert path_similarity([1, 2, 3], [2, 3, 4]) == 0.5

    def test_empty(self):
        assert path_similarity([], []) == 1.0

    @given(st.lists(st.integers(0, 50)), st.lists(st.integers(0, 50)))
    def test_symmetric_and_bounded(self, a, b):
        s = path_similarity(a, b)
        assert 0.0 <= s <= 1.0
        assert s == path_similarity(b, a)


class TestAccuracyMetrics:
    def test_as_path_metrics(self):
        metrics = as_path_metrics(
            [(1, 2), (1, 3), None],
            [(1, 2), (1, 2), (1, 2)],
        )
        assert metrics.exact_matches == 1
        assert metrics.length_matches == 2
        assert metrics.failures == 1
        assert metrics.exact_fraction == pytest.approx(1 / 3)

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            as_path_metrics([None], [(1,), (2,)])
        with pytest.raises(ValueError):
            latency_errors_ms([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            loss_errors([], [0.1])

    def test_latency_errors(self):
        errs = latency_errors_ms([10.0, None], [12.0, 5.0])
        assert errs[0] == pytest.approx(2.0)
        assert errs[1] == float("inf")

    def test_loss_errors(self):
        errs = loss_errors([0.1, None], [0.15, 0.2])
        assert errs[0] == pytest.approx(0.05)
        assert errs[1] == 1.0

    def test_ranking_overlap_perfect(self):
        actual = {i: float(i) for i in range(20)}
        assert ranking_overlap(actual, actual, k=10) == 10

    def test_ranking_overlap_partial(self):
        actual = {i: float(i) for i in range(20)}
        estimated = {i: float(-i) for i in range(20)}  # inverted ranking
        assert ranking_overlap(estimated, actual, k=10) == 0

    def test_ranking_overlap_missing_estimates(self):
        actual = {1: 1.0, 2: 2.0, 3: 3.0}
        assert ranking_overlap({}, actual, k=2) <= 2

    def test_ranking_empty_actual(self):
        assert ranking_overlap({1: 1.0}, {}, k=10) == 0


class TestReporting:
    def test_table_contains_cells(self):
        text = render_table("T", ["a", "b"], [[1, 2], ["x", "y"]])
        assert "T" in text and "x" in text and "2" in text

    def test_cdf_rows(self):
        text = render_cdf_rows(
            "C", {"s1": [1.0, 2.0, 3.0], "s2": [2.0, 2.0, 2.0]}, [1.5, 2.5]
        )
        assert "s1" in text and "1.5" in text

    def test_bars(self):
        text = render_bars("B", {"x": 0.5, "y": 1.0})
        assert "#" in text and "x" in text

    def test_bars_empty(self):
        assert render_bars("B", {}) == "B"


class TestScenario:
    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            get_scenario("galactic")

    def test_cached_instances(self):
        assert get_scenario("small") is get_scenario("small")

    def test_override_creates_new(self):
        assert get_scenario("small") is not get_scenario("small", seed=99)

    def test_validation_structure(self, scenario, validation):
        assert len(validation.sources) == scenario.config.n_validation_vps
        atlas_prefixes = {vp.prefix_index for vp in scenario.atlas_vps()}
        for source in validation.sources:
            # Held-out sources are not atlas vantage points.
            assert source.vantage.prefix_index not in atlas_prefixes
            # Validation targets and FROM_SRC targets are disjoint.
            fs_targets = {t.dst_prefix_index for t in source.from_src_traces}
            assert not fs_targets & set(source.validation_targets)
            assert source.from_src_links

    def test_pairs_enumeration(self, validation):
        pairs = validation.pairs()
        assert len(pairs) == sum(
            len(s.validation_targets) for s in validation.sources
        )

    def test_true_rtt_cached(self, scenario):
        prefixes = scenario.all_prefixes()
        r1 = scenario.true_rtt_ms(prefixes[0], prefixes[-1])
        r2 = scenario.true_rtt_ms(prefixes[0], prefixes[-1])
        assert r1 == r2
