"""Tests for the remote-query agent (the paper's future-work delegation)."""

import pytest

from repro.client import AtlasServer, ClientConfig, INanoClient
from repro.client.remote import QueryAgent
from repro.errors import ClientError


@pytest.fixture()
def agent(scenario):
    server = AtlasServer()
    server.publish(scenario.atlas(0))
    client = INanoClient(server, config=ClientConfig(use_swarm=False))
    client.fetch()
    return QueryAgent(client=client, local_hop_ms=0.5)


class TestQueryAgent:
    def test_requires_fetched_client(self, scenario):
        server = AtlasServer()
        server.publish(scenario.atlas(0))
        bare = INanoClient(server, config=ClientConfig(use_swarm=False))
        with pytest.raises(ClientError):
            QueryAgent(client=bare)

    def test_answers_match_local_client(self, agent, scenario, validation):
        source = validation.sources[0]
        src = source.vantage.prefix_index
        for dst in source.validation_targets[:8]:
            remote = agent.query_for(caller_prefix_index=src,
                                     src_prefix_index=src, dst_prefix_index=dst)
            local = agent.client.query_or_none(src, dst)
            if local is None:
                assert remote.info is None
            else:
                assert remote.info.as_path == local.as_path
            assert remote.agent_rtt_ms == 1.0

    def test_accounting(self, agent, scenario):
        prefixes = scenario.all_prefixes()
        agent.query_for(7, prefixes[0], prefixes[1])
        agent.query_for(7, prefixes[0], prefixes[2])
        agent.query_for(8, prefixes[0], prefixes[3])
        assert agent.queries_served == {7: 2, 8: 1}

    def test_batch_single_round_trip(self, agent, scenario):
        prefixes = scenario.all_prefixes()
        pairs = [(prefixes[0], prefixes[i]) for i in range(1, 6)]
        results = agent.query_batch_for(9, pairs)
        assert len(results) == 5
        assert all(r.agent_rtt_ms == 1.0 for r in results)
        assert agent.queries_served[9] == 5

    def test_batch_limit(self, agent, scenario):
        prefixes = scenario.all_prefixes()
        agent.max_batch = 2
        with pytest.raises(ClientError):
            agent.query_batch_for(1, [(prefixes[0], prefixes[1])] * 3)

    def test_heavy_callers(self, agent, scenario):
        prefixes = scenario.all_prefixes()
        for _ in range(5):
            agent.query_for(42, prefixes[0], prefixes[1])
        agent.query_for(43, prefixes[0], prefixes[1])
        assert agent.heavy_callers(threshold=5) == [42]
        assert agent.heavy_callers(threshold=6) == []
