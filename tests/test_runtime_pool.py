"""Tests for predictor pooling, version-keyed caches, server retention,
and the vectorized batch path extraction."""

from __future__ import annotations

import copy
import random

import pytest

from repro.atlas.model import Atlas, LinkRecord
from repro.client import AtlasServer, ClientConfig, INanoClient
from repro.client.remote import QueryAgent
from repro.core.predictor import (
    _BATCH_EXTRACT_MIN,
    INanoPredictor,
    PredictorConfig,
)
from repro.errors import AtlasError
from repro.runtime import AtlasRuntime

from helpers import prefix_of, toy_atlas


@pytest.fixture()
def server(scenario):
    server = AtlasServer()
    server.publish(scenario.atlas(0))
    return server


class TestPredictorPool:
    def test_clients_without_from_src_share_one_predictor(self, server, scenario):
        runtime = server.runtime()
        clients = [
            INanoClient(
                server,
                config=ClientConfig(use_swarm=False),
                shared_runtime=runtime,
            )
            for _ in range(3)
        ]
        for client in clients:
            client.fetch()
        predictors = {id(client.predictor) for client in clients}
        assert len(predictors) == 1, "co-located clients must share a predictor"
        assert clients[0].bytes_downloaded == 0, "shared runtime means no download"
        # ... and therefore one shared search cache
        prefixes = scenario.all_prefixes()
        clients[0].query_or_none(prefixes[0], prefixes[1])
        cached = len(clients[0].predictor._search_cache)
        clients[1].query_or_none(prefixes[2], prefixes[1])
        assert len(clients[1].predictor._search_cache) >= cached

    def test_measuring_client_gets_dedicated_merged_entry(self, server, scenario):
        source = scenario.validation_set().sources[0]
        client = INanoClient(
            server,
            vantage=source.vantage,
            measurement_toolkit=scenario.simulator(0),
            cluster_map=scenario.cluster_map(0),
            config=ClientConfig(use_swarm=False),
        )
        client.fetch()
        shared = client.predictor
        assert not shared.graph.has_from_src
        client.measure(n_prefixes=8)
        own = client.predictor
        assert own is not shared
        assert own.graph.has_from_src
        # re-access without new measurements: same pooled entry
        assert client.predictor is own
        # the closed fallback graph is the runtime's shared one
        assert own.fallback_graph is client.runtime.closed_graph()

    def test_pool_entry_refreshes_in_place_after_update(self, server, scenario):
        server.publish(scenario.atlas(1))
        client = INanoClient(server, config=ClientConfig(use_swarm=False))
        client.fetch(day=0)
        pred_before = client.predictor
        graph_before = pred_before.graph
        version_before = graph_before.version
        client.apply_daily_update()
        pred_after = client.predictor
        assert pred_after is pred_before, "entry refreshes, not rebuilds"
        assert pred_after.graph is graph_before, "graph patched in place"
        assert pred_after.graph.version > version_before
        assert pred_after.atlas.day == 1

    def test_release_drops_client_state(self, server, scenario):
        source = scenario.validation_set().sources[0]
        client = INanoClient(
            server,
            vantage=source.vantage,
            measurement_toolkit=scenario.simulator(0),
            cluster_map=scenario.cluster_map(0),
            config=ClientConfig(use_swarm=False),
        )
        client.fetch()
        client.measure(n_prefixes=5)
        client.predictor
        runtime = client.runtime
        assert runtime._merged
        client.close()
        assert not runtime._merged


class TestVersionKeyedCache:
    def test_cache_keys_use_graph_version_not_id(self):
        atlas = toy_atlas()
        predictor = INanoPredictor(atlas, PredictorConfig.graph_baseline())
        predictor.predict(prefix_of(3), prefix_of(5))
        (key,) = predictor._search_cache
        assert key[0] == predictor.graph.version
        assert key[0] != id(predictor.graph)

    def test_patched_graph_version_retires_stale_entries(self):
        atlas = toy_atlas()
        runtime = AtlasRuntime(copy.deepcopy(atlas))
        config = PredictorConfig.graph_baseline()
        predictor = runtime.pool.predictor(config)
        before = predictor.predict(prefix_of(3), prefix_of(5))
        stale_keys = set(predictor._search_cache)
        # a delta that changes the 3->5 route's latency
        from repro.atlas.delta import AtlasDelta

        delta = AtlasDelta(base_day=0, new_day=1)
        delta.links_updated[(30, 50)] = LinkRecord(latency_ms=500.0)
        delta.links_updated[(50, 30)] = LinkRecord(latency_ms=500.0)
        runtime.apply_delta(delta)
        predictor = runtime.pool.predictor(config)
        after = predictor.predict(prefix_of(3), prefix_of(5))
        assert after.latency_ms != before.latency_ms, "stale cache served"
        # the answering entry is keyed by the *new* version; the old
        # entry may linger in the LRU but can never be keyed again
        fresh_keys = set(predictor._search_cache) - stale_keys
        assert fresh_keys
        assert all(key[0] == predictor.graph.version for key in fresh_keys)


class TestServerRetention:
    @staticmethod
    def _publish_days(n, retention_days):
        server = AtlasServer(retention_days=retention_days)
        atlas = Atlas(day=0)
        atlas.links[(1, 2)] = LinkRecord(latency_ms=10.0)
        atlas.cluster_to_as = {1: 10, 2: 20}
        atlas.prefix_to_cluster = {100: 1, 200: 2}
        atlas.prefix_to_as = {100: 10, 200: 20}
        server.publish(copy.deepcopy(atlas))
        for day in range(1, n):
            atlas = copy.deepcopy(atlas)
            atlas.day = day
            atlas.links[(1, 2)] = LinkRecord(latency_ms=10.0 + day)
            server.publish(copy.deepcopy(atlas))
        return server

    def test_window_and_monthly_anchors_survive(self):
        server = self._publish_days(10, retention_days=3)
        # cutoff = 9 - 3 = 6: keep >= 6, plus the day-0 monthly anchor
        assert server.retained_days() == [0, 6, 7, 8, 9]
        assert server.bytes_evicted > 0
        with pytest.raises(AtlasError):
            server.full_atlas_bytes(3)
        with pytest.raises(AtlasError):
            server.atlas_object(3)
        # the delta chain stays complete for roll-forward
        for day in range(1, 10):
            assert server.delta_for(day).new_day == day

    def test_unlimited_retention(self):
        server = self._publish_days(10, retention_days=None)
        assert server.retained_days() == list(range(10))
        assert server.bytes_evicted == 0

    def test_default_keeps_recent_tests_working(self, scenario):
        server = AtlasServer()
        server.publish(scenario.atlas(0))
        server.publish(scenario.atlas(1))
        assert server.retained_days() == [0, 1]


class TestServerSideQueries:
    def test_server_predictions_match_client(self, server, scenario):
        client = INanoClient(server, config=ClientConfig(use_swarm=False))
        client.fetch()
        prefixes = scenario.all_prefixes()
        pairs = [(prefixes[i], prefixes[i + 1]) for i in range(6)]
        server_paths = server.predict_batch(pairs)
        for (src, dst), path in zip(pairs, server_paths):
            assert path == server.predict(src, dst)
            local = client.predictor.predict_or_none(src, dst)
            assert path == local
        assert len(server.runtime().pool) == 1

    def test_server_runtime_rolls_forward_in_place(self, server, scenario):
        runtime = server.runtime()
        assert runtime.day == 0
        server.publish(scenario.atlas(1))
        rolled = server.runtime()
        assert rolled is runtime, "roll forward patches, not rebuilds"
        assert rolled.day == 1

    def test_runtime_survives_delta_chain_gap(self, server, scenario):
        """A publish gap (no delta to roll through) must re-seed the
        server runtime *in place*, not orphan co-located consumers."""
        runtime = server.runtime()
        skipped = copy.deepcopy(scenario.atlas(1))
        skipped.day = 2  # day 1 never published: no delta chain to day 2
        server.publish(skipped)
        rolled = server.runtime()
        assert rolled is runtime, "gap must reset in place, not rebind"
        assert rolled.day == 2
        # pooled predictors keep working against the reset lineage
        prefixes = scenario.all_prefixes()
        server.predict(prefixes[0], prefixes[1])
        assert runtime.pool.predictor().atlas.day == 2

    def test_co_located_agent_shares_server_runtime(self, server, scenario):
        agent = QueryAgent.co_located(server)
        assert agent.runtime is server.runtime()
        prefixes = scenario.all_prefixes()
        result = agent.query_for(7, prefixes[0], prefixes[1])
        assert result.agent_rtt_ms == 1.0
        direct = server.predict(prefixes[0], prefixes[1])
        if result.info is None:
            # the pair may be one-way predictable only
            assert direct is None or server.predict(prefixes[1], prefixes[0]) is None
        else:
            assert result.info.forward == direct
            assert result.info.atlas_day == 0
        # a new day advances the shared runtime underneath the agent
        server.publish(scenario.atlas(1))
        server.runtime()
        assert agent.runtime.day == 1


class TestVectorizedBatchExtraction:
    def test_batch_matches_scalar_extraction(self, scenario, atlas):
        predictor = INanoPredictor(atlas, PredictorConfig.inano())
        prefixes = [int(p) for p in scenario.all_prefixes()]
        dst = prefixes[len(prefixes) // 3]
        sources = [p for p in prefixes if p != dst]
        assert len(sources) >= _BATCH_EXTRACT_MIN
        batch = predictor.predict_batch([(s, dst) for s in sources])
        scalar_predictor = INanoPredictor(atlas, PredictorConfig.inano())
        for src, got in zip(sources, batch):
            want = scalar_predictor.predict_or_none(src, dst)
            assert got == want, (src, dst)

    def test_batch_extraction_bitwise_vs_scalar(self, atlas):
        from repro.core.graph import TO_DST

        predictor = INanoPredictor(atlas, PredictorConfig.graph_baseline())
        graph = predictor.graph
        clusters = sorted({c for ab in atlas.links for c in ab})
        dst_cluster = clusters[0]
        states = predictor._search(graph, dst_cluster, -1)
        reached = [
            nid for nid in range(graph.n_nodes) if states.phase[nid]
        ]
        assert len(reached) >= _BATCH_EXTRACT_MIN
        predictor._extract_compiled_batch(graph, states, reached)
        vectorized = dict(states.paths)
        for nid in reached:
            scalar = predictor._extract_compiled(graph, states, nid)
            got = vectorized[nid]
            assert got == scalar
            # float fields must be bit-identical, not approximately equal
            assert got.latency_ms.hex() == scalar.latency_ms.hex()
            assert got.loss.hex() == scalar.loss.hex()

    def test_small_groups_stay_on_scalar_path(self, atlas, monkeypatch):
        predictor = INanoPredictor(atlas, PredictorConfig.inano())

        def boom(*args, **kwargs):  # pragma: no cover
            raise AssertionError("vectorized path must not trigger")

        monkeypatch.setattr(predictor, "_extract_compiled_batch", boom)
        prefixes = list(atlas.prefix_to_cluster)
        pairs = [(prefixes[i], prefixes[-1]) for i in range(_BATCH_EXTRACT_MIN - 2)]
        predictor.predict_batch(pairs)
