"""Gateway + NetworkClient mechanics over the toy atlas.

The full-chain equivalence lives in ``test_net_equivalence.py``; this
suite covers the transport machinery itself: the HELLO handshake,
pipelining, both listeners at once, ERROR frames for malformed and
unsupported requests, max-frame enforcement, subscription lifecycle,
delegate-vs-bootstrap behavior, and clean teardown.
"""

from __future__ import annotations

import copy
import socket
import struct

import pytest

from helpers import prefix_of, toy_atlas

from repro.atlas.delta import compute_delta
from repro.atlas.model import LinkRecord
from repro.client import AtlasServer
from repro.errors import ClientError, NetworkError, RemoteError
from repro.net import NetworkClient, NetworkGateway
from repro.net import protocol as P


def make_server() -> AtlasServer:
    server = AtlasServer()
    server.publish(toy_atlas())
    return server


def next_day_delta():
    base = toy_atlas()
    nxt = copy.deepcopy(base)
    nxt.day = 1
    nxt.links[(10, 20)] = LinkRecord(latency_ms=3.0)
    nxt.links.pop((40, 50))
    return compute_delta(base, nxt)


@pytest.fixture(scope="module")
def gateway(tmp_path_factory):
    server = make_server()
    uds = str(tmp_path_factory.mktemp("net") / "gateway.sock")
    gw = NetworkGateway(server, tcp=("127.0.0.1", 0), uds=uds)
    gw.start()
    yield gw
    gw.close()


@pytest.fixture()
def client(gateway):
    host, port = gateway.tcp_address
    c = NetworkClient.connect_tcp(host, port)
    yield c
    c.close()


class TestHandshake:
    def test_welcome_reports_day_and_backend(self, client):
        assert client.server_day == 0
        assert client.backend_name == "server"
        assert client.mode == "delegate"
        assert client.subscribed is False

    def test_hello_flag_subscribes_immediately(self, gateway):
        host, port = gateway.tcp_address
        with NetworkClient.connect_tcp(host, port, subscribe=True) as c:
            assert c.subscribed is True

    def test_uds_and_tcp_serve_the_same_protocol(self, gateway):
        pair = (prefix_of(1), prefix_of(5))
        with NetworkClient.connect_uds(gateway.uds_path) as u:
            host, port = gateway.tcp_address
            with NetworkClient.connect_tcp(host, port) as t:
                assert u.predict(*pair) == t.predict(*pair)
                assert u.query_batch([pair]) == t.query_batch([pair])

    def test_frame_before_hello_is_rejected(self, gateway):
        host, port = gateway.tcp_address
        sock = socket.create_connection((host, port), timeout=5.0)
        try:
            sock.sendall(P.encode_frame(P.PREDICT, 1, P.encode_predict_request(1, 2)))
            decoder = P.FrameDecoder()
            frames = decoder.feed(sock.recv(65536))
            assert frames and frames[0][0] == P.ERROR
            code, message = P.decode_error(frames[0][2])
            assert code == P.E_MALFORMED
            assert "HELLO" in message
            assert sock.recv(65536) == b""  # gateway hung up
        finally:
            sock.close()

    def test_garbage_bytes_get_error_then_close(self, gateway):
        host, port = gateway.tcp_address
        sock = socket.create_connection((host, port), timeout=5.0)
        try:
            sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
            frames = P.FrameDecoder().feed(sock.recv(65536))
            assert frames and frames[0][0] == P.ERROR
            assert sock.recv(65536) == b""
        finally:
            sock.close()


class TestRequests:
    def test_predict_matches_backend(self, gateway, client):
        pair = (prefix_of(1), prefix_of(5))
        want = gateway.backend.predict_batch([pair], None, None)[0]
        assert client.predict(*pair) == want

    def test_batch_answers_align_with_pairs(self, client):
        pairs = [
            (prefix_of(1), prefix_of(5)),
            (prefix_of(1), 999_999),  # unknown prefix -> None
            (prefix_of(4), prefix_of(2)),
        ]
        paths = client.predict_batch(pairs)
        assert len(paths) == 3
        assert paths[0] is not None and paths[2] is not None
        assert paths[1] is None

    def test_pipelined_predicts_return_in_order(self, client):
        pairs = [
            (prefix_of(a), prefix_of(b))
            for a in (1, 2, 3)
            for b in (4, 5)
            if a != b
        ] * 4
        assert client.pipeline_predict(pairs) == client.predict_batch(pairs)

    def test_unsupported_frame_gets_typed_error(self, client):
        client._send_frame(99, 123, b"")
        with pytest.raises(RemoteError) as excinfo:
            client._collect(123, P.PREDICT_OK)
        assert excinfo.value.code == P.E_UNSUPPORTED

    def test_malformed_request_payload_keeps_connection_alive(self, client):
        client._send_frame(P.PREDICT_BATCH, 55, b"\x01")  # truncated config
        with pytest.raises(RemoteError) as excinfo:
            client._collect(55, P.PREDICT_BATCH_OK)
        assert excinfo.value.code == P.E_MALFORMED
        # the connection survived the bad request
        assert client.predict(prefix_of(1), prefix_of(5)) is not None

    def test_client_token_unsupported_on_server_backend(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.predict_batch([(prefix_of(1), prefix_of(5))], client="meas")
        assert excinfo.value.code == P.E_MALFORMED

    def test_unknown_atlas_day_is_unavailable(self, client):
        with pytest.raises(RemoteError) as excinfo:
            client.bootstrap(day=77)
        assert excinfo.value.code == P.E_UNAVAILABLE
        assert client.runtime is None  # failed bootstrap leaves delegate mode

    def test_oversized_frame_drops_connection(self, gateway):
        host, port = gateway.tcp_address
        c = NetworkClient.connect_tcp(host, port)
        try:
            header = struct.pack(
                "<4sBBII", P.MAGIC, P.PROTOCOL_VERSION, P.PREDICT, 9,
                P.DEFAULT_MAX_FRAME + 1,
            )
            c._sock.sendall(header)
            with pytest.raises((NetworkError, RemoteError)):
                c._collect(9, P.PREDICT_OK)
        finally:
            c.close()


class TestBootstrapAndPush:
    def test_bootstrap_goes_local_and_stays_equivalent(self, gateway):
        host, port = gateway.tcp_address
        with NetworkClient.connect_tcp(host, port) as delegate:
            with NetworkClient.connect_tcp(host, port) as boot:
                atlas = boot.bootstrap()
                assert boot.mode == "local"
                assert boot.subscribed is True
                assert atlas.day == 0
                pairs = [(prefix_of(1), prefix_of(5)), (prefix_of(3), prefix_of(2))]
                assert boot.query_batch(pairs) == delegate.query_batch(pairs)
                with pytest.raises(ClientError):
                    boot.bootstrap()  # double bootstrap is a client bug
                with pytest.raises(ClientError):
                    boot.pipeline_predict(pairs)  # wire primitive, delegate-only

    def test_unsubscribed_connection_gets_no_push(self):
        server = make_server()
        gw = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        try:
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port) as boot:
                boot.bootstrap(subscribe=False)
                assert boot.subscribed is False
                result = gw.push_delta(next_day_delta())
                assert result == {"day": 1, "subscribers": 0} | {
                    "wire_bytes": result["wire_bytes"]
                }
                assert boot.poll_updates(max_wait=0.3) == 0
                assert boot.runtime.atlas.day == 0
                # the backend moved on without us
                with NetworkClient.connect_tcp(host, port) as fresh:
                    assert fresh.server_day == 1
        finally:
            gw.close()

    def test_push_applies_in_place_on_the_client_runtime(self):
        server = make_server()
        gw = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        try:
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port) as boot:
                boot.bootstrap()
                runtime = boot.runtime
                graph_before = runtime.directed_graph()
                result = gw.push_delta(next_day_delta())
                assert result["subscribers"] == 1
                assert boot.wait_for_day(1) == 1
                assert boot.deltas_applied == 1
                assert boot.runtime is runtime  # same runtime...
                assert runtime.directed_graph() is graph_before  # ...same graph object
                assert runtime.updates_patched == 1  # in place, no recompile
        finally:
            gw.close()

    def test_bootstrap_after_push_lands_on_current_day(self):
        # a client bootstrapping *after* pushes advanced the backend
        # gets the anchor payload plus a catch-up replay of the pushed
        # deltas, and returns already on the current day — then keeps
        # riding the live stream
        server = make_server()
        gw = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        try:
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port, subscribe=True) as c:
                result = gw.push_delta(next_day_delta())
                assert result["subscribers"] == 1
                atlas = c.bootstrap()  # fetch happens after the push
                assert atlas.day == 1
                assert c.pushes_stale == 1  # the live push beat the runtime
                assert c.deltas_applied == 1  # the catch-up replay landed it
                # the live stream keeps working for the *next* day
                day1 = copy.deepcopy(toy_atlas())
                day1.day = 1
                day1.links[(10, 20)] = LinkRecord(latency_ms=3.0)
                day1.links.pop((40, 50))
                day2 = copy.deepcopy(day1)
                day2.day = 2
                day2.links[(30, 50)] = LinkRecord(latency_ms=7.0)
                gw.push_delta(compute_delta(day1, day2))
                assert c.wait_for_day(2) == 2
                # and the late bootstrapper matches the server runtime
                pair = (prefix_of(1), prefix_of(5))
                oracle = server.runtime().pool.predictor(None).predict_batch(
                    [pair]
                )
                assert c.predict_batch([pair]) == oracle
        finally:
            gw.close()

    def test_subscribe_toggle(self, gateway):
        host, port = gateway.tcp_address
        with NetworkClient.connect_tcp(host, port) as c:
            day = c.subscribe(True)
            assert c.subscribed is True
            assert day == c.server_day
            c.subscribe(False)
            assert c.subscribed is False


class TestStatsCapability:
    """FLAG_STATS: typed per-request kernel telemetry behind the
    capability bit — a STATS frame trails every successful query reply
    with the same request id."""

    def test_stats_frames_trail_query_replies(self):
        server = make_server()
        gw = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        try:
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port, stats=True) as c:
                assert c.stats_enabled is True
                assert c.last_stats is None
                pair = (prefix_of(1), prefix_of(5))
                c.predict(*pair)
                first = c.last_stats
                assert first is not None
                assert first["elapsed_us"] > 0.0
                # a fresh backend runs the kernel cold for this pair
                assert first["searches"] >= 1
                assert first["search_us"] > 0.0
                # an identical repeat is a pure cache hit: no new search
                c.predict(*pair)
                second = c.last_stats
                assert second["searches"] == 0
                assert second["cache_hits"] >= 1
                assert c.stats_frames == 2
                assert gw.stats["stats_frames"] == 2
                # every delegate-mode query surface trails one
                c.predict_batch([pair])
                assert c.stats_frames == 3
                c.query_batch([pair])
                assert c.stats_frames == 4
                # pipelining drains one STATS frame per reply, in order
                got = c.pipeline_predict([pair, pair, pair])
                assert len(got) == 3
                assert c.stats_frames == 7
        finally:
            gw.close()

    def test_stats_carry_repair_classes_after_a_delta(self):
        server = make_server()
        gw = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        try:
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port, stats=True) as c:
                pair = (prefix_of(1), prefix_of(5))
                c.predict(*pair)  # warm the pooled search cache
                gw.push_delta(next_day_delta())
                c.predict(*pair)
                keys = ("reused", "repaired", "replayed", "dirty")
                got = {k: c.last_stats[k] for k in keys}
                want = server.runtime().pool.last_repair
                assert got == {k: want[k] for k in keys}
                # the warmed entry was classified into exactly one class
                assert sum(got.values()) >= 1
        finally:
            gw.close()

    def test_stats_off_by_default(self, gateway, client):
        before = gateway.stats["stats_frames"]
        assert client.predict(prefix_of(1), prefix_of(5)) is not None
        assert client.last_stats is None
        assert client.stats_frames == 0
        assert gateway.stats["stats_frames"] == before
        # and no stray frame is left in flight on the connection
        assert client.poll_updates(max_wait=0.2) == 0


class TestLifecycle:
    def test_close_is_idempotent_and_ends_clients(self):
        server = make_server()
        gw = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        host, port = gw.tcp_address
        c = NetworkClient.connect_tcp(host, port)
        assert c.predict(prefix_of(1), prefix_of(5)) is not None
        gw.close()
        gw.close()  # idempotent
        with pytest.raises(NetworkError):
            c.predict(prefix_of(1), prefix_of(5))
        with pytest.raises(NetworkError):
            gw.push_delta(next_day_delta())
        c.close()

    def test_uds_socket_file_removed_on_close(self, tmp_path):
        uds = str(tmp_path / "gw.sock")
        gw = NetworkGateway(make_server(), uds=uds).start()
        assert gw.uds_path == uds
        gw.close()
        import os

        assert not os.path.exists(uds)

    def test_requires_a_listener(self):
        with pytest.raises(ValueError):
            NetworkGateway(make_server())

    def test_close_after_failed_start_is_safe(self, tmp_path):
        gw = NetworkGateway(
            make_server(), uds=str(tmp_path / "no-such-dir" / "gw.sock")
        )
        with pytest.raises(OSError):
            gw.start()
        gw.close()  # must not raise on the already-closed loop

    def test_partial_bind_failure_releases_bound_listeners(self, tmp_path):
        server = make_server()
        probe = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        port = probe.tcp_address[1]
        probe.close()
        bad = NetworkGateway(
            server,
            tcp=("127.0.0.1", port),
            uds=str(tmp_path / "no-such-dir" / "gw.sock"),
        )
        with pytest.raises(OSError):
            bad.start()  # TCP bound, UDS failed
        bad.close()
        # the TCP listener must have been released, not leaked
        retry = NetworkGateway(server, tcp=("127.0.0.1", port)).start()
        retry.close()

    def test_hello_deadline_defeats_byte_tricklers(self):
        import time

        server = make_server()
        gw = NetworkGateway(server, tcp=("127.0.0.1", 0), hello_timeout=0.6)
        gw.start()
        try:
            host, port = gw.tcp_address
            sock = socket.create_connection((host, port), timeout=5.0)
            sock.settimeout(5.0)
            frame = P.encode_frame(P.HELLO, 1, P.encode_hello(0))
            closed = False
            try:
                # trickle one byte at a time: each read succeeds, but
                # the deadline is absolute
                start = time.monotonic()
                for byte in frame[:-1]:
                    if time.monotonic() - start > 3.0:
                        break
                    sock.sendall(bytes([byte]))
                    time.sleep(0.12)
            except OSError:
                closed = True
            if not closed:
                frames = P.FrameDecoder().feed(sock.recv(65536))
                assert frames and frames[0][0] == P.ERROR
                assert sock.recv(65536) == b""  # gateway hung up
            sock.close()
        finally:
            gw.close()

    def test_connection_resyncs_past_an_abandoned_request(self, gateway):
        host, port = gateway.tcp_address
        with NetworkClient.connect_tcp(host, port) as c:
            # a malformed pipelined request whose ERROR reply is never
            # collected (the caller abandoned it) ...
            c._send_frame(P.PREDICT, c._take_id(), b"\x01")
            # ... must not desynchronize later requests: their _collect
            # discards the stale reply and finds its own
            assert c.predict(prefix_of(1), prefix_of(5)) is not None
            # idle polling discards stale replies the same way
            c._send_frame(P.PREDICT, c._take_id(), b"\x01")
            assert c.poll_updates(max_wait=0.3) == 0
            assert c.predict(prefix_of(1), prefix_of(5)) is not None

    def test_rejects_unknown_backend(self):
        with pytest.raises(TypeError):
            NetworkGateway(object(), tcp=("127.0.0.1", 0))

    def test_stats_accounting(self, gateway, client):
        before = dict(gateway.stats)
        client.predict(prefix_of(1), prefix_of(5))
        assert gateway.stats["requests"] > before["requests"]
        assert gateway.stats["frames_in"] > before["frames_in"]
        assert gateway.stats["bytes_out"] > before["bytes_out"]
        assert gateway.stats["connections_open"] >= 1


def toy_chain_deltas(days: int):
    """Deltas for ``days`` successive toy-atlas days (one value change
    per day)."""
    atlases = [toy_atlas()]
    for day in range(1, days + 1):
        nxt = copy.deepcopy(atlases[-1])
        nxt.day = day
        nxt.links[(10, 20)] = LinkRecord(latency_ms=3.0 + day * 0.25)
        atlases.append(nxt)
    return [compute_delta(a, b) for a, b in zip(atlases, atlases[1:])]


def wait_until(predicate, timeout: float = 5.0, what: str = "condition"):
    import time

    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"{what} not reached within {timeout}s")
        time.sleep(0.01)


class TestPushChurn:
    """The broadcast under failure: dead peers must be counted and
    dropped, slow peers unsubscribed with a typed frame, and a bootstrap
    racing live pushes must still land — none of it silently.

    The peer pathologies are injected at the connection's transport
    (``write`` raising for a dead peer, ``get_write_buffer_size`` held
    positive for a peer that stopped reading) so the tests do not
    depend on OS socket buffer sizes.
    """

    def _single_conn(self, gw):
        wait_until(lambda: len(gw._conns) == 1, what="connection registered")
        conn = next(iter(gw._conns))
        # before patching the writer, let its task finish any frame
        # already in flight (drained is set only from its idle loop), so
        # the patch applies exactly from the next push on
        wait_until(conn.drained.is_set, what="writer idle")
        return conn

    def test_dead_peer_counts_push_errors_and_leaves_broadcast(self):
        gw = NetworkGateway(make_server(), tcp=("127.0.0.1", 0)).start()
        try:
            host, port = gw.tcp_address
            victim = NetworkClient.connect_tcp(host, port, subscribe=True)
            conn = self._single_conn(gw)

            def dead_write(data):
                raise ConnectionResetError("peer vanished mid-write")

            conn.writer.write = dead_write
            deltas = toy_chain_deltas(2)
            # the broadcast fast path hits the dead transport inline:
            # the push reports the failure synchronously
            result = gw.push_delta(deltas[0])
            assert result["subscribers"] == 0
            assert gw.stats["push_errors"] == 1
            assert conn not in gw._conns
            # the dead peer is out of the broadcast set entirely
            assert gw.push_delta(deltas[1])["subscribers"] == 0
            assert gw.stats["push_errors"] == 1
            # and the gateway keeps serving everyone else
            with NetworkClient.connect_tcp(host, port) as healthy:
                assert healthy.predict(prefix_of(1), prefix_of(5)) is not None
            victim.close()
        finally:
            gw.close()

    def test_slow_subscriber_dropped_with_typed_frame(self):
        import threading

        # budget 0: any byte still unflushed when the next push arrives
        # is over budget
        gw = NetworkGateway(
            make_server(), tcp=("127.0.0.1", 0), subscriber_buffer=0
        ).start()
        try:
            host, port = gw.tcp_address
            slow = NetworkClient.connect_tcp(host, port)
            slow.bootstrap()
            assert slow.subscribed is True
            conn = self._single_conn(gw)
            released = threading.Event()
            buffered = [0]  # simulated transport write-buffer depth
            transport = conn.writer.transport
            real_write = conn.writer.write

            def buffering_write(data):
                real_write(data)  # the bytes still reach the peer
                buffered[0] += len(data)

            async def stalled_drain():
                import asyncio

                while not released.is_set():
                    await asyncio.sleep(0.005)
                buffered[0] = 0

            conn.writer.write = buffering_write
            conn.writer.drain = stalled_drain
            transport.get_write_buffer_size = lambda: buffered[0]

            deltas = toy_chain_deltas(3)
            # day 1 goes out on the fast path but sticks in the transport
            assert gw.push_delta(deltas[0])["subscribers"] == 1
            # day 2 finds day 1 unflushed: over budget -> unsubscribe
            assert gw.push_delta(deltas[1])["subscribers"] == 0
            assert gw.stats["push_drops"] == 1
            assert gw.push_delta(deltas[2])["subscribers"] == 0
            assert gw.stats["push_drops"] == 1  # dropped once, not per push
            released.set()
            assert slow.wait_for_day(1) == 1
            wait_until(
                lambda: slow.poll_updates(max_wait=0.05) >= 0
                and slow.sub_dropped == 1,
                what="SUB_DROPPED received",
            )
            assert slow.subscribed is False
            assert "over budget" in slow.drop_reason
            assert slow.runtime.atlas.day == 1  # days 2 and 3 never came
            # the connection stays usable for request/reply
            assert slow.subscribe(False) == gw.backend.day
            slow.close()
        finally:
            gw.close()

    def test_auto_resubscribe_recovers_the_push_stream(self):
        import threading

        server = make_server()
        gw = NetworkGateway(
            server, tcp=("127.0.0.1", 0), subscriber_buffer=0
        ).start()
        try:
            host, port = gw.tcp_address
            c = NetworkClient.connect_tcp(host, port, auto_resubscribe=True)
            c.bootstrap()
            conn = self._single_conn(gw)
            released = threading.Event()
            buffered = [0]
            transport = conn.writer.transport
            real_write = conn.writer.write

            def buffering_write(data):
                real_write(data)
                buffered[0] += len(data)

            async def stalled_drain():
                import asyncio

                while not released.is_set():
                    await asyncio.sleep(0.005)
                buffered[0] = 0

            conn.writer.write = buffering_write
            conn.writer.drain = stalled_drain
            transport.get_write_buffer_size = lambda: buffered[0]

            deltas = toy_chain_deltas(4)
            assert gw.push_delta(deltas[0])["subscribers"] == 1
            # day 2 finds day 1 unflushed: dropped from the broadcast
            assert gw.push_delta(deltas[1])["subscribers"] == 0
            assert gw.stats["push_drops"] == 1
            # day 3 sails past the now-unsubscribed client entirely
            gw.push_delta(deltas[2])
            released.set()
            # day 1 arrives; the drop notice behind it triggers the
            # self-heal at the next idle drain — re-subscribe, fresh
            # anchor, fence — which may land before this returns
            assert c.wait_for_day(1) >= 1
            wait_until(
                lambda: c.poll_updates(max_wait=0.05) >= 0
                and c.resubscribes >= 1,
                what="auto resubscribe completed",
            )
            assert c.sub_dropped == 1
            assert c.subscribed is True
            assert c.runtime.atlas.day == 3  # re-anchored past days 2-3
            # and the live stream is whole again for the next day
            gw.push_delta(deltas[3])
            assert c.wait_for_day(4) == 4
            pair = (prefix_of(1), prefix_of(5))
            oracle = server.runtime().pool.predictor(None).predict_batch([pair])
            assert c.predict_batch([pair]) == oracle
            c.close()
        finally:
            gw.close()

    def test_no_auto_resubscribe_by_default(self):
        gw = NetworkGateway(
            make_server(), tcp=("127.0.0.1", 0), subscriber_buffer=0
        ).start()
        try:
            host, port = gw.tcp_address
            c = NetworkClient.connect_tcp(host, port)
            c.bootstrap()
            conn = self._single_conn(gw)
            real_write = conn.writer.write
            buffered = [0]

            def buffering_write(data):
                real_write(data)
                buffered[0] += len(data)

            conn.writer.write = buffering_write
            conn.writer.transport.get_write_buffer_size = lambda: buffered[0]
            deltas = toy_chain_deltas(2)
            gw.push_delta(deltas[0])
            gw.push_delta(deltas[1])
            assert gw.stats["push_drops"] == 1
            buffered[0] = 0
            wait_until(
                lambda: c.poll_updates(max_wait=0.05) >= 0
                and c.sub_dropped == 1,
                what="SUB_DROPPED received",
            )
            assert c.subscribed is False
            assert c.resubscribes == 0  # opt-in only
            c.close()
        finally:
            gw.close()

    def test_bootstrap_races_concurrent_pushes(self):
        import threading

        server = make_server()
        gw = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        clients: list[NetworkClient] = []
        push_errors: list[BaseException] = []
        try:
            host, port = gw.tcp_address
            deltas = toy_chain_deltas(6)

            def pusher():
                import time

                try:
                    for delta in deltas:
                        gw.push_delta(delta)
                        time.sleep(0.02)
                except BaseException as exc:  # surfaced after join
                    push_errors.append(exc)

            thread = threading.Thread(target=pusher)
            thread.start()
            for _ in range(4):
                c = NetworkClient.connect_tcp(host, port)
                clients.append(c)
                hello_day = c.server_day
                atlas = c.bootstrap()
                # anchor + catch-up replay always lands at or past the
                # day the connection saw at HELLO, whatever interleaved
                assert atlas.day >= hello_day
            thread.join(timeout=30.0)
            assert not thread.is_alive() and not push_errors
            pairs = [(prefix_of(1), prefix_of(5)), (prefix_of(3), prefix_of(2))]
            oracle = server.runtime().pool.predictor(None).predict_batch(pairs)
            for c in clients:
                assert c.wait_for_day(6) == 6
                assert c.predict_batch(pairs) == oracle
            assert gw.stats["push_errors"] == 0
            assert gw.stats["push_drops"] == 0
        finally:
            for c in clients:
                c.close()
            gw.close()


class TestCompaction:
    def test_day_cadence_folds_log_and_reanchors(self):
        server = make_server()
        gw = NetworkGateway(server, tcp=("127.0.0.1", 0), compact_days=3).start()
        try:
            for delta in toy_chain_deltas(7):
                gw.push_delta(delta)
            # compacted at day 3 and day 6; day 7 remains as the suffix
            assert gw.stats["compactions"] == 2
            assert gw.stats["anchor_day"] == 6
            assert gw.stats["delta_log_days"] == 1
            assert gw.stats["delta_log_bytes"] > 0
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port) as late:
                assert late.bootstrap().day == 7
                pair = (prefix_of(1), prefix_of(5))
                oracle = server.runtime().pool.predictor(None).predict_batch([pair])
                assert late.predict_batch([pair]) == oracle
        finally:
            gw.close()

    def test_compacted_day_no_longer_bootstrappable(self):
        gw = NetworkGateway(
            make_server(), tcp=("127.0.0.1", 0), compact_days=3
        ).start()
        try:
            for delta in toy_chain_deltas(3):
                gw.push_delta(delta)
            assert gw.stats["compactions"] == 1
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port) as c:
                with pytest.raises(RemoteError) as excinfo:
                    c.bootstrap(day=1)
                assert excinfo.value.code == P.E_UNAVAILABLE
                assert "compacted" in str(excinfo.value)
        finally:
            gw.close()

    def test_byte_cap_bounds_the_log(self):
        gw = NetworkGateway(
            make_server(),
            tcp=("127.0.0.1", 0),
            compact_days=None,
            log_max_bytes=1,
        ).start()
        try:
            deltas = toy_chain_deltas(5)
            for delta in deltas:
                gw.push_delta(delta)
            # every push blows the 1-byte budget: the log never retains
            assert gw.stats["compactions"] == len(deltas)
            assert gw.stats["delta_log_days"] == 0
            assert gw.stats["delta_log_bytes"] == 0
            assert gw.stats["anchor_day"] == 5
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port) as late:
                # anchor-only bootstrap (empty replay suffix) still lands
                assert late.bootstrap().day == 5
        finally:
            gw.close()
