"""Networked / co-located equivalence over the full churn chain.

The network gateway's contract: a :class:`~repro.net.client.NetworkClient`
— over TCP or a unix-domain socket, in delegate mode (no atlas, queries
shipped over the wire) or bootstrap mode (atlas fetched over the wire,
daily deltas applied from pushes) — returns **bit-for-bit** the
predictions and :class:`~repro.client.query.PathInfo` payloads a
co-located consumer computes, every day of the runtime suite's ≥10-day
seeded churn chain, across the day-30 monthly recompile.

The co-located oracles are the exact single-process surfaces earlier
PRs proved against each other: the server runtime's pooled predictors
and a :class:`~repro.client.remote.QueryAgent` built over the server's
own runtime. Delta pushes must land **in place** on a bootstrapped
client's runtime (same runtime object, same graph objects, patch days
patched / monthly day recompiled) — the wire is a transport, not a
fork of the lineage.
"""

from __future__ import annotations

import copy
import random

import pytest

import test_runtime_delta_chain as chainmod

from repro.atlas.delta import compute_delta
from repro.client import AtlasServer
from repro.client.remote import QueryAgent
from repro.core.predictor import PredictorConfig
from repro.net import NetworkClient, NetworkGateway

PAIRS_PER_DAY = 8
CONFIGS = [PredictorConfig.inano(), PredictorConfig.graph_baseline()]


@pytest.fixture(scope="module")
def chain(atlas):
    return chainmod._build_chain(atlas)


class TestNetworkedEquivalence:
    def test_tcp_and_uds_clients_match_co_located_across_chain(
        self, chain, tmp_path_factory
    ):
        server = AtlasServer()
        server.publish(copy.deepcopy(chain[0]))
        ref_runtime = server.runtime()
        agent = QueryAgent.co_located(server)
        uds = str(tmp_path_factory.mktemp("net-equiv") / "gateway.sock")
        gateway = NetworkGateway(server, tcp=("127.0.0.1", 0), uds=uds)
        gateway.start()
        clients: list[NetworkClient] = []
        try:
            host, port = gateway.tcp_address
            delegate_tcp = NetworkClient.connect_tcp(host, port)
            delegate_uds = NetworkClient.connect_uds(uds)
            boot_tcp = NetworkClient.connect_tcp(host, port)
            boot_uds = NetworkClient.connect_uds(uds)
            clients = [delegate_tcp, delegate_uds, boot_tcp, boot_uds]
            assert boot_tcp.bootstrap().day == chain[0].day
            assert boot_uds.bootstrap().day == chain[0].day
            boot_runtimes = [boot_tcp.runtime, boot_uds.runtime]
            boot_graphs = [rt.directed_graph() for rt in boot_runtimes]

            prefixes = sorted(chain[0].prefix_to_cluster)
            rng = random.Random(0xC0FFEE)

            def check_day(day):
                pairs = [
                    tuple(rng.sample(prefixes, 2)) for _ in range(PAIRS_PER_DAY)
                ]
                for config in CONFIGS:
                    oracle = ref_runtime.pool.predictor(config).predict_batch(
                        pairs
                    )
                    for client in clients:
                        assert client.predict_batch(pairs, config) == oracle, (
                            day,
                            config.ablation_name(),
                            client.endpoint,
                            client.mode,
                        )
                oracle_infos = [
                    r.info for r in agent.query_batch_for(0, pairs)
                ]
                for client in clients:
                    assert client.query_batch(pairs) == oracle_infos, (
                        day,
                        client.endpoint,
                        client.mode,
                    )
                    if client.mode == "local":
                        assert client.day == day

            check_day(chain[0].day)
            for base, nxt in zip(chain, chain[1:]):
                delta = compute_delta(base, nxt)
                # push_delta advances the server's runtime (the oracles'
                # shared compiled core) and fans the INDB payload to the
                # two subscribed bootstrap connections
                result = gateway.push_delta(delta)
                assert result["day"] == nxt.day == ref_runtime.atlas.day
                assert result["subscribers"] == 2
                assert boot_tcp.wait_for_day(nxt.day) == nxt.day
                assert boot_uds.wait_for_day(nxt.day) == nxt.day
                check_day(nxt.day)

            assert len(chain) - 1 >= 10, "chain must span >= 10 deltas"
            for client, runtime, graph in zip(
                (boot_tcp, boot_uds), boot_runtimes, boot_graphs
            ):
                # pushes landed in place: same runtime, same graph object,
                # daily patches patched and the monthly boundary recompiled
                assert client.runtime is runtime
                assert runtime.directed_graph() is graph
                assert client.deltas_applied == len(chain) - 1
                assert runtime.updates_patched >= 1
                assert runtime.updates_recompiled >= 1
                assert runtime.atlas.day == chain[-1].day
        finally:
            for client in clients:
                client.close()
            gateway.close()


class TestServiceBackedGateway:
    """The same wire, fronting the sharded fleet: remote answers equal
    the service's (which the serve suite already pins to the
    single-process oracle), and pushes roll client + fleet together."""

    DAYS = 4  # a slice of the chain is enough; the full chain is pinned above

    def test_networked_service_matches_direct_service(self, chain):
        server = AtlasServer()
        server.publish(copy.deepcopy(chain[0]))
        service = server.serve(n_shards=2)
        gateway = None
        clients: list[NetworkClient] = []
        try:
            gateway = NetworkGateway(service, tcp=("127.0.0.1", 0))
            gateway.start()
            host, port = gateway.tcp_address
            delegate = NetworkClient.connect_tcp(host, port)
            boot = NetworkClient.connect_tcp(host, port)
            clients = [delegate, boot]
            assert delegate.backend_name == "service"
            assert boot.bootstrap().day == chain[0].day
            prefixes = sorted(chain[0].prefix_to_cluster)
            rng = random.Random(0x7E57)

            def check_day(day):
                pairs = [
                    tuple(rng.sample(prefixes, 2)) for _ in range(PAIRS_PER_DAY)
                ]
                direct = service.predict_batch(pairs)
                assert delegate.predict_batch(pairs) == direct, day
                assert boot.predict_batch(pairs) == direct, day
                infos = service.query_batch(pairs)
                assert delegate.query_batch(pairs) == infos, day
                assert boot.query_batch(pairs) == infos, day

            check_day(chain[0].day)
            for base, nxt in zip(chain[: self.DAYS], chain[1 : self.DAYS + 1]):
                result = gateway.push_delta(compute_delta(base, nxt))
                assert result["day"] == nxt.day == service.day
                assert boot.wait_for_day(nxt.day) == nxt.day
                assert service.converged()
                check_day(nxt.day)
        finally:
            for client in clients:
                client.close()
            if gateway is not None:
                gateway.close()
            service.close()


class TestRelayChainAndCompaction:
    """Planetary distribution, end to end: origin -> relay -> relay,
    with compaction firing mid-chain at every tier. Clients behind two
    relay tiers — delegate and bootstrapped, plus one that bootstraps a
    week late, *after* the log was folded into a fresh exact anchor —
    must land bit-for-bit on the co-located oracle, every day of the
    >= 10-delta churn chain."""

    COMPACT_DAYS = 4

    def test_two_deep_relay_chain_matches_co_located_across_chain(
        self, chain
    ):
        from repro.net import RelayGateway

        server = AtlasServer()
        server.publish(copy.deepcopy(chain[0]))
        ref_runtime = server.runtime()
        agent = QueryAgent.co_located(server)
        origin = NetworkGateway(
            server, tcp=("127.0.0.1", 0), compact_days=self.COMPACT_DAYS
        ).start()
        relays: list[RelayGateway] = []
        clients: list[NetworkClient] = []
        try:
            upstream = origin
            for _ in range(2):
                relay = RelayGateway(
                    upstream_tcp=upstream.tcp_address,
                    tcp=("127.0.0.1", 0),
                    compact_days=self.COMPACT_DAYS,
                ).start()
                relays.append(relay)
                upstream = relay
            tail = relays[-1]
            host, port = tail.tcp_address
            delegate = NetworkClient.connect_tcp(host, port)
            boot = NetworkClient.connect_tcp(host, port)
            clients = [delegate, boot]
            assert delegate.backend_name == "relay"
            assert boot.bootstrap().day == chain[0].day

            prefixes = sorted(chain[0].prefix_to_cluster)
            rng = random.Random(0x2E1A7)

            def check_day(day, check_clients):
                pairs = [
                    tuple(rng.sample(prefixes, 2)) for _ in range(PAIRS_PER_DAY)
                ]
                for config in CONFIGS:
                    oracle = ref_runtime.pool.predictor(config).predict_batch(
                        pairs
                    )
                    for client in check_clients:
                        assert client.predict_batch(pairs, config) == oracle, (
                            day,
                            config.ablation_name(),
                            client.mode,
                        )
                oracle_infos = [
                    r.info for r in agent.query_batch_for(0, pairs)
                ]
                for client in check_clients:
                    assert client.query_batch(pairs) == oracle_infos, (
                        day,
                        client.mode,
                    )

            check_day(chain[0].day, clients)
            for base, nxt in zip(chain, chain[1:]):
                delta = compute_delta(base, nxt)
                result = origin.push_delta(delta)
                assert result["day"] == nxt.day == ref_runtime.atlas.day
                # the push crosses both relay tiers before the client
                # behind them sees it
                assert boot.wait_for_day(nxt.day, timeout=30.0) == nxt.day
                check_day(nxt.day, clients)

            assert len(chain) - 1 >= 10, "chain must span >= 10 deltas"
            # compaction fired at every tier mid-chain, and no tier lost
            # its upstream feed
            assert origin.stats["compactions"] >= 2
            for relay in relays:
                assert relay.stats["compactions"] >= 2
                assert relay.stats["upstream_lost"] == 0
                assert relay.backend.day == chain[-1].day
            assert origin.stats["delta_log_days"] < len(chain) - 1

            # the week-late client: bootstraps behind both relays after
            # multiple compactions folded most of the chain into a fresh
            # exact anchor — one anchor + a short suffix, same answers
            late = NetworkClient.connect_tcp(host, port)
            clients.append(late)
            assert late.bootstrap().day == chain[-1].day
            assert late.deltas_applied <= self.COMPACT_DAYS
            check_day(chain[-1].day, clients)
        finally:
            for client in clients:
                client.close()
            for relay in reversed(relays):
                relay.close()
            origin.close()

    def test_late_bootstrap_lands_bit_for_bit_after_origin_compaction(
        self, chain
    ):
        """No relays: the origin alone, compacting mid-chain; a client
        that bootstraps only at the end anchors on the exact re-encode
        and replays the short suffix to the oracle's exact state."""
        server = AtlasServer()
        server.publish(copy.deepcopy(chain[0]))
        ref_runtime = server.runtime()
        gateway = NetworkGateway(
            server, tcp=("127.0.0.1", 0), compact_days=self.COMPACT_DAYS
        ).start()
        try:
            for base, nxt in zip(chain, chain[1:]):
                gateway.push_delta(compute_delta(base, nxt))
            assert gateway.stats["compactions"] >= 2
            host, port = gateway.tcp_address
            with NetworkClient.connect_tcp(host, port) as late:
                assert late.bootstrap().day == chain[-1].day
                assert late.deltas_applied <= self.COMPACT_DAYS
                prefixes = sorted(chain[0].prefix_to_cluster)
                rng = random.Random(0x1A7E)
                pairs = [
                    tuple(rng.sample(prefixes, 2)) for _ in range(16)
                ]
                for config in CONFIGS:
                    oracle = ref_runtime.pool.predictor(config).predict_batch(
                        pairs
                    )
                    assert late.predict_batch(pairs, config) == oracle
        finally:
            gateway.close()
