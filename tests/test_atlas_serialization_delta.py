"""Round-trip and delta tests for atlas serialization."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.atlas.delta import (
    MONTHLY_REFRESH_DAYS,
    apply_delta,
    compute_delta,
    compressed_delta_sizes,
    encode_delta,
)
from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.serialization import (
    EXACT_FORMAT_VERSION,
    FORMAT_VERSION,
    compressed_section_sizes,
    dataset_payloads,
    decode_atlas,
    encode_atlas,
)
from repro.errors import AtlasFormatError, DeltaMismatchError


def make_atlas(day=0, n_links=30, seed=1) -> Atlas:
    atlas = Atlas(day=day)
    for i in range(n_links):
        a, b = i + 1, ((i + seed) % n_links) + n_links + 2
        atlas.links[(a, b)] = LinkRecord(latency_ms=1.0 + (i % 17) * 0.35)
        if i % 5 == 0:
            atlas.link_loss[(a, b)] = 0.01 + (i % 3) * 0.004
        atlas.cluster_to_as[a] = 100 + i % 7
        atlas.cluster_to_as[b] = 200 + i % 5
        atlas.prefix_to_cluster[1000 + i] = a
        atlas.prefix_to_as[1000 + i] = 100 + i % 7
        atlas.as_degrees[100 + i % 7] = 3 + i % 4
        atlas.three_tuples.add((100 + i % 7, 200 + i % 5, 300))
        if i % 4 == 0:
            atlas.preferences.add((100 + i % 7, 200 + i % 5, 201 + i % 4))
        atlas.providers[100 + i % 7] = frozenset({200 + i % 5})
        atlas.upstreams[100 + i % 7] = frozenset({200 + i % 5, 300})
        atlas.relationship_codes[(100 + i % 7, 200 + i % 5)] = 0
        atlas.relationship_codes[(200 + i % 5, 100 + i % 7)] = 1
    atlas.late_exit_pairs.add(frozenset({100, 200}))
    return atlas


def atlases_equal(a: Atlas, b: Atlas) -> bool:
    return (
        a.day == b.day
        and set(a.links) == set(b.links)
        and all(
            abs(a.links[k].latency_ms - b.links[k].latency_ms) <= 0.05
            for k in a.links
        )
        and set(a.link_loss) == set(b.link_loss)
        and a.prefix_to_cluster == b.prefix_to_cluster
        and a.prefix_to_as == b.prefix_to_as
        and a.cluster_to_as == b.cluster_to_as
        and a.as_degrees == b.as_degrees
        and a.three_tuples == b.three_tuples
        and a.preferences == b.preferences
        and a.providers == b.providers
        and a.upstreams == b.upstreams
        and a.relationship_codes == b.relationship_codes
        and a.late_exit_pairs == b.late_exit_pairs
    )


class TestSerialization:
    def test_roundtrip(self):
        atlas = make_atlas()
        decoded = decode_atlas(encode_atlas(atlas))
        assert atlases_equal(atlas, decoded)

    def test_roundtrip_scenario_atlas(self, atlas):
        decoded = decode_atlas(encode_atlas(atlas))
        assert set(decoded.links) == set(atlas.links)
        assert decoded.three_tuples == atlas.three_tuples
        assert decoded.preferences == atlas.preferences
        assert decoded.prefix_providers == atlas.prefix_providers

    def test_bad_magic_rejected(self):
        with pytest.raises(AtlasFormatError):
            decode_atlas(b"XXXX" + b"\x00" * 32)

    def test_truncation_detected(self):
        payload = encode_atlas(make_atlas())
        with pytest.raises(Exception):
            decode_atlas(payload[: len(payload) // 2])

    def test_section_sizes_cover_all_datasets(self):
        sizes = compressed_section_sizes(make_atlas())
        payloads = dataset_payloads(make_atlas())
        assert set(sizes) == set(payloads)
        assert all(size >= 0 for size in sizes.values())

    def test_compression_effective(self, atlas):
        payloads = dataset_payloads(atlas)
        sizes = compressed_section_sizes(atlas)
        raw_total = sum(len(p) for p in payloads.values())
        comp_total = sum(sizes.values())
        assert comp_total < raw_total

    @given(st.integers(min_value=1, max_value=60), st.integers(min_value=0, max_value=9))
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    def test_roundtrip_property(self, n_links, seed):
        atlas = make_atlas(n_links=n_links, seed=seed)
        assert atlases_equal(atlas, decode_atlas(encode_atlas(atlas)))


class TestDelta:
    def test_identity_delta_is_empty(self):
        a = make_atlas(day=0)
        b = make_atlas(day=1)
        delta = compute_delta(a, b)
        counts = delta.entry_counts()
        assert counts["inter_cluster_links"] == 0
        assert counts["as_three_tuples"] == 0

    def test_apply_reconstructs(self):
        base = make_atlas(day=0)
        new = make_atlas(day=1)
        # Mutate the new day.
        victim = next(iter(new.links))
        del new.links[victim]
        new.link_loss.pop(victim, None)
        new.links[(90001, 90002)] = LinkRecord(latency_ms=4.0)
        new.cluster_to_as[90001] = 100
        new.cluster_to_as[90002] = 200
        new.three_tuples.add((1, 2, 3))
        delta = compute_delta(base, new)
        rebuilt = apply_delta(base, delta)
        assert set(rebuilt.links) == set(new.links)
        assert rebuilt.three_tuples == new.three_tuples
        assert set(rebuilt.link_loss) == set(new.link_loss)

    def test_day_mismatch_rejected(self):
        base = make_atlas(day=0)
        new = make_atlas(day=1)
        delta = compute_delta(base, new)
        wrong_base = make_atlas(day=5)
        with pytest.raises(DeltaMismatchError):
            apply_delta(wrong_base, delta)

    def test_monthly_refresh_carried(self):
        base = make_atlas(day=MONTHLY_REFRESH_DAYS - 1)
        new = make_atlas(day=MONTHLY_REFRESH_DAYS)
        new.preferences.add((7, 8, 9))
        delta = compute_delta(base, new)
        assert delta.monthly_refresh
        rebuilt = apply_delta(base, delta)
        assert (7, 8, 9) in rebuilt.preferences

    def test_non_monthly_keeps_base_side_tables(self):
        base = make_atlas(day=3)
        new = make_atlas(day=4)
        new.preferences.add((7, 8, 9))  # changes, but not shipped daily
        delta = compute_delta(base, new)
        rebuilt = apply_delta(base, delta)
        assert (7, 8, 9) not in rebuilt.preferences

    def test_delta_encoding_smaller_than_full(self, scenario):
        base = scenario.atlas(0)
        new = scenario.atlas(1)
        delta = compute_delta(base, new)
        from repro.atlas.serialization import encode_atlas as enc

        assert len(encode_delta(delta)) < len(enc(new))
        sizes = compressed_delta_sizes(delta)
        assert sizes["inter_cluster_links"] >= 0


class TestExactCodec:
    """Format version 2: the lossless, order-preserving anchor used for
    gateway re-anchoring. The default (version 1) codec quantizes link
    values and sorts rows, so re-encoding a delta-evolved atlas with it
    would fork every client that bootstraps from the new anchor; the
    exact codec must round-trip the atlas *identically*, including dict
    iteration order (compiled emission order is load-bearing)."""

    def _churned_atlas(self) -> Atlas:
        atlas = make_atlas(day=9)
        # values off the 0.05ms / 1e-4 quantization grids
        atlas.links[(3, 40)] = LinkRecord(latency_ms=1.0 / 3.0, loss_rate=1.0 / 7.0)
        atlas.link_loss[(3, 40)] = 1.0 / 7.0
        # append links out of sorted order, the way apply_delta_inplace
        # does (delta order, after existing keys)
        atlas.links[(2, 1)] = LinkRecord(latency_ms=0.1)
        atlas.as_degrees[999] = 1_000_000  # overflows version 1's u16
        return atlas

    def test_exact_roundtrip_is_bit_for_bit_and_order_preserving(self):
        import struct as _struct

        atlas = self._churned_atlas()
        decoded = decode_atlas(encode_atlas(atlas, exact=True))
        assert list(decoded.links) == list(atlas.links)  # not just same set
        for key, rec in atlas.links.items():
            got = decoded.links[key]
            assert _struct.pack("<d", got.latency_ms) == _struct.pack(
                "<d", rec.latency_ms
            )
            assert _struct.pack("<d", got.loss_rate) == _struct.pack(
                "<d", rec.loss_rate
            )
        assert decoded.link_loss == atlas.link_loss
        assert decoded.as_degrees == atlas.as_degrees
        assert decoded.relationship_codes == atlas.relationship_codes
        assert decoded.day == atlas.day
        assert atlases_equal(atlas, decoded)

    def test_exact_format_survives_asymmetric_relationships(self):
        # version 1 stores only the a < b half and mirrors it back; the
        # exact format must keep a genuinely asymmetric table
        atlas = make_atlas()
        atlas.relationship_codes = {(1, 2): 0, (2, 1): 1, (9, 4): 2}
        decoded = decode_atlas(encode_atlas(atlas, exact=True))
        assert decoded.relationship_codes == atlas.relationship_codes

    def test_default_codec_unchanged_and_quantizing(self):
        atlas = self._churned_atlas()
        atlas.as_degrees.pop(999)  # not representable in version 1
        payload = encode_atlas(atlas)
        version = payload[4] | (payload[5] << 8)
        assert version == FORMAT_VERSION
        decoded = decode_atlas(payload)
        # quantized: close, but NOT equal — which is exactly why
        # re-anchoring needs the exact format
        got = decoded.links[(3, 40)].latency_ms
        assert got != atlas.links[(3, 40)].latency_ms
        assert abs(got - atlas.links[(3, 40)].latency_ms) <= 0.05
        assert list(decoded.links) == sorted(atlas.links)

    def test_exact_header_carries_version_2(self):
        payload = encode_atlas(make_atlas(), exact=True)
        assert payload[4] | (payload[5] << 8) == EXACT_FORMAT_VERSION
