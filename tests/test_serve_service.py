"""Mechanics of the sharded prediction service.

Covers the pieces the full-chain equivalence suite
(``test_serve_equivalence.py``) exercises only implicitly: the
shared-memory export/import round trip and its copy-on-write
materialization, coalescing windows and per-shard backpressure, client
registration/release across the fleet, divergence detection, and the
pool's warm-start record lifecycle (a released client must stop
drawing prewarm work).
"""

from __future__ import annotations

import copy

import pytest

from repro.atlas.delta import compute_delta
from repro.atlas.serialization import decode_atlas, encode_atlas
from repro.client import AtlasServer
from repro.core.compiled import CompiledGraph
from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.errors import ServiceError
from repro.runtime import AtlasRuntime

N_SHARDS = 2


@pytest.fixture(scope="module")
def server(scenario):
    server = AtlasServer()
    server.publish(copy.deepcopy(scenario.atlas(0)))
    return server


@pytest.fixture()
def service(server):
    svc = server.serve(n_shards=N_SHARDS)
    yield svc
    svc.close()


@pytest.fixture(scope="module")
def prefixes(scenario):
    return sorted(scenario.atlas(0).prefix_to_cluster)


class TestSharedGraph:
    def test_round_trip_and_zero_copy_views(self, atlas):
        payload = encode_atlas(atlas)
        cg = CompiledGraph.from_atlas(decode_atlas(payload), closed=True)
        handle = cg.to_shared()
        try:
            view = CompiledGraph.from_shared(handle.meta, decode_atlas(payload))
            for name, want in cg.arrays().items():
                got = getattr(view, name)
                assert not isinstance(got, list), f"{name} should be a view"
                assert not got.flags.writeable
                assert got.tolist() == want, name
            assert view._id_of == cg._id_of
            assert view.n_nodes == cg.n_nodes and view.n_edges == cg.n_edges
            view.release_shared()
        finally:
            handle.close()
            handle.unlink()

    def test_predictions_from_views_match_lists(self, atlas, prefixes):
        payload = encode_atlas(atlas)
        ref_atlas = decode_atlas(payload)
        cg = CompiledGraph.from_atlas(ref_atlas, closed=True)
        handle = cg.to_shared()
        try:
            view_atlas = decode_atlas(payload)
            view = CompiledGraph.from_shared(handle.meta, view_atlas)
            config = PredictorConfig.graph_baseline()
            ref = INanoPredictor(ref_atlas, config, primary_graph=cg)
            over_view = INanoPredictor(view_atlas, config, primary_graph=view)
            pairs = [(s, d) for s in prefixes[:6] for d in prefixes[6:12]]
            assert over_view.predict_batch(pairs) == ref.predict_batch(pairs)
            view.release_shared()
        finally:
            handle.close()
            handle.unlink()

    def test_ensure_mutable_materializes_and_detaches(self, atlas):
        cg = CompiledGraph.from_atlas(atlas, closed=True)
        handle = cg.to_shared()
        try:
            view = CompiledGraph.from_shared(handle.meta, atlas)
            assert view._shm is not None
            view.ensure_mutable()
            assert view._shm is None
            assert all(
                isinstance(values, list) for values in view.arrays().values()
            )
            assert view.arrays() == cg.arrays()
            view.ensure_mutable()  # idempotent
        finally:
            handle.close()
            handle.unlink()


class TestRoutingAndCoalescing:
    def test_predict_matches_server(self, service, server, prefixes):
        for src, dst in [(prefixes[0], prefixes[5]), (prefixes[3], prefixes[9])]:
            assert service.predict(src, dst) == server.predict(src, dst)

    def test_unmapped_destination_short_circuits(self, service):
        future = service.submit(10**9 + 7, 10**9 + 8)
        assert future.done and future.value is None
        assert service.predict_batch([(10**9 + 7, 10**9 + 8)]) == [None]

    def test_window_coalesces_duplicates(self, service, prefixes):
        src, dst = prefixes[0], prefixes[5]
        futures = [service.submit(src, dst) for _ in range(4)]
        other = service.submit(prefixes[1], dst)
        assert service.stats["coalesced"] == 3
        service.flush()
        assert all(f.done for f in futures + [other])
        assert len({id(f.value) for f in futures}) == 1, (
            "duplicates share one wire slot and one result object"
        )
        # the whole window rode one worker batch per (config, client)
        shard = service.shard_of_destination(dst)
        stats = service.shard_stats()[shard]
        assert stats["batches"] == 1
        assert stats["pairs"] == 2  # (src,dst) dedup'd + (src2,dst)

    def test_shard_stats_expose_kernel_counters(self, service, prefixes):
        service.predict(prefixes[0], prefixes[5])
        stats = service.shard_stats()
        for s in stats:
            assert set(s["kernel"]) == {"searches", "hits", "search_us"}
            assert set(s["last_repair"]) == {
                "reused", "repaired", "replayed", "dirty", "prewarmed",
            }
        # at least the shard that served the pair ran or reused a search
        assert any(
            s["kernel"]["searches"] + s["kernel"]["hits"] >= 1 for s in stats
        )

    def test_result_blocks_until_flush(self, service, server, prefixes):
        future = service.submit(prefixes[2], prefixes[7])
        assert not future.done
        assert future.result() == server.predict(prefixes[2], prefixes[7])

    def test_backpressure_flushes_saturated_shard(self, server, prefixes):
        svc = server.serve(n_shards=1, max_pending=3)
        try:
            futures = [
                svc.submit(prefixes[i], prefixes[7]) for i in range(5)
            ]
            assert svc.stats["backpressure_flushes"] == 1
            assert all(f.done for f in futures[:3]), "saturated window drained"
            assert not futures[3].done
            svc.flush()
            assert all(f.done for f in futures)
        finally:
            svc.close()

    def test_close_resolves_pending_and_rejects_new_work(self, server, prefixes):
        svc = server.serve(n_shards=N_SHARDS)
        future = svc.submit(prefixes[0], prefixes[5])
        svc.close()
        assert future.done and future.value is None
        with pytest.raises(ServiceError):
            svc.predict(prefixes[0], prefixes[5])
        svc.close()  # idempotent


class TestFleetState:
    def test_workers_start_converged(self, service):
        assert service.converged()
        snaps = service.shard_snapshots()
        assert len(snaps) == N_SHARDS
        assert snaps[0]["graphs"].keys() == {"directed", "closed"}

    def test_sync_from_server_rolls_the_fleet(self, scenario):
        server = AtlasServer()
        server.publish(copy.deepcopy(scenario.atlas(0)))
        server.runtime()  # materialize at day 0 so both sides roll the chain
        svc = server.serve(n_shards=N_SHARDS)
        try:
            server.publish(copy.deepcopy(scenario.atlas(1)))
            assert svc.day == 0
            assert svc.sync_from(server) == 1
            assert svc.day == 1
            assert svc.converged()
            pairs = [(s, d) for s, d in zip(
                sorted(scenario.atlas(1).prefix_to_cluster)[:6],
                sorted(scenario.atlas(1).prefix_to_cluster)[6:12],
            )]
            assert svc.predict_batch(pairs) == server.predict_batch(pairs)
        finally:
            svc.close()

    def test_register_and_release_client_across_fleet(self, service, atlas, prefixes):
        links = dict(list(copy.deepcopy(atlas).links.items())[:8])
        service.register_client("tok", links, from_src_prefixes={prefixes[0]})
        assert all(
            s["registered_clients"] == 1 for s in service.shard_stats()
        )
        # client-scoped queries resolve through the merged pool entry
        got = service.predict_batch(
            [(prefixes[0], prefixes[5])], client="tok"
        )
        assert len(got) == 1
        service.release_client("tok")
        assert all(
            s["registered_clients"] == 0 for s in service.shard_stats()
        )

    def test_shared_bytes_accounted(self, service):
        assert service.shared_bytes > 0

    def test_worker_error_does_not_desync_the_fleet(
        self, service, server, prefixes
    ):
        from repro.errors import ShardStateError

        pairs = [(prefixes[i], prefixes[i + 4]) for i in range(4)]
        with pytest.raises(ShardStateError):
            # unregistered client token: the owning worker replies with
            # an error, but every shard's reply must still be drained
            service.predict_batch(pairs, client="nobody")
        # the request/reply streams stayed in sync: the service keeps
        # answering correctly after the failure
        assert service.predict_batch(pairs) == server.predict_batch(pairs)
        assert service.converged()

    def test_failed_window_futures_reraise_not_none(self, service, prefixes):
        from repro.errors import ShardStateError

        future = service.submit(prefixes[0], prefixes[5], client="nobody")
        with pytest.raises(ShardStateError):
            service.flush()
        assert future.done and future.error is not None
        with pytest.raises(ShardStateError):
            # a failed request must not masquerade as "no path"
            future.result()
        # healthy requests still resolve afterwards
        ok = service.submit(prefixes[0], prefixes[5])
        service.flush()
        assert ok.done and ok.error is None

    def test_invalid_arguments_rejected_before_spawning(self, server):
        with pytest.raises(ValueError):
            server.serve(n_shards=2, vnodes=0)
        with pytest.raises(ValueError):
            server.serve(n_shards=0)

    def test_dead_shard_does_not_strand_healthy_requests(
        self, server, prefixes
    ):
        from repro.errors import ShardStateError

        svc = server.serve(n_shards=2)
        try:
            d0 = next(p for p in prefixes if svc.shard_of_destination(p) == 0)
            d1 = next(p for p in prefixes if svc.shard_of_destination(p) == 1)
            healthy = svc.submit(prefixes[0], d0)
            doomed = svc.submit(prefixes[0], d1)
            svc._shards._conns[1].close()  # shard 1's pipe dies
            with pytest.raises(ShardStateError):
                svc.flush()
            # the healthy shard's request was sent, collected, resolved
            assert healthy.done and healthy.error is None
            assert healthy.value == server.predict(prefixes[0], d0)
            # the dead shard's request failed loudly, not silently-None
            with pytest.raises(ShardStateError):
                doomed.result()
            # and the healthy shard's pipe stayed in sync afterwards
            assert svc.predict(prefixes[0], d0) == server.predict(
                prefixes[0], d0
            )
        finally:
            svc.close()

    def test_shape_verify_mode(self, scenario):
        server = AtlasServer()
        server.publish(copy.deepcopy(scenario.atlas(0)))
        server.runtime()
        svc = server.serve(n_shards=N_SHARDS)
        try:
            server.publish(copy.deepcopy(scenario.atlas(1)))
            update = svc.apply_delta(server.delta_for(1), verify="shape")
            # shape handshake skips the O(graph) digest per worker...
            graphs = update["snapshot"]["graphs"]
            assert all(fp is None for _, _, fp in graphs.values())
            # ...while the on-demand check still runs the full digest
            assert svc.converged()
            with pytest.raises(ValueError):
                svc.apply_delta(server.delta_for(1), verify="bogus")
        finally:
            svc.close()


class TestPoolWarmRecords:
    """The release fix: a released client's warm-start records must not
    pin prewarm work on later updates."""

    def _chain_step(self, atlas, bump):
        nxt = copy.deepcopy(atlas)
        nxt.day += 1
        from repro.atlas.model import LinkRecord

        for link in list(nxt.links)[: len(nxt.links) // 4]:
            rec = nxt.links[link]
            nxt.links[link] = LinkRecord(latency_ms=rec.latency_ms + bump)
        return nxt

    def test_records_reseed_destinations_evicted_from_lru(self, atlas):
        runtime = AtlasRuntime(copy.deepcopy(atlas))
        graph = runtime.closed_graph()
        config = PredictorConfig.graph_baseline()
        predictor = runtime.pool.predictor(config)
        clusters = sorted({c for ab in runtime.atlas.links for c in ab})[:3]
        for cluster in clusters:
            predictor.search_for(graph, cluster, None)
        day1 = self._chain_step(runtime.atlas, 0.25)
        runtime.apply_delta(compute_delta(runtime.atlas, day1))
        pool_key = (config, None)
        assert runtime.pool._warm.get(pool_key), "update records hot dsts"
        # simulate the hottest destination aging out of the LRU
        graph = runtime.closed_graph()
        victim = next(
            key
            for key in list(predictor._search_cache)
            if key[1] == clusters[0]
        )
        del predictor._search_cache[victim]
        day2 = self._chain_step(runtime.atlas, 0.5)
        runtime.apply_delta(compute_delta(runtime.atlas, day2))
        graph = runtime.closed_graph()
        assert (graph.version, clusters[0], None) in predictor._search_cache, (
            "warm records re-seed destinations the LRU already dropped"
        )

    def test_release_drops_warm_records(self, atlas):
        runtime = AtlasRuntime(copy.deepcopy(atlas))
        graph = runtime.closed_graph()
        config = PredictorConfig.graph_baseline()
        shared = runtime.pool.predictor(config)
        dedicated = runtime.pool.predictor(config, client_key="c1")
        clusters = sorted({c for ab in runtime.atlas.links for c in ab})[:2]
        for cluster in clusters:
            shared.search_for(graph, cluster, None)
            dedicated.search_for(graph, cluster, None)
        runtime.apply_delta(
            compute_delta(runtime.atlas, self._chain_step(runtime.atlas, 0.25))
        )
        assert any(key[1] == "c1" for key in runtime.pool._warm)
        runtime.release("c1")
        assert not any(key[1] == "c1" for key in runtime.pool._warm), (
            "released client's warm-start records must be dropped"
        )
        assert not any(key[1] == "c1" for key in runtime.pool._entries)
        # subsequent updates still work and never prewarm for c1
        report = runtime.apply_delta(
            compute_delta(runtime.atlas, self._chain_step(runtime.atlas, 0.5))
        )
        assert "c1" not in {key[1] for key in runtime.pool._warm}
        assert report.cache["prewarmed"] <= runtime.pool.prewarm_max


class TestCloseAndLiveness:
    """PR 5 hardening: close is idempotent, a dead worker is detected
    promptly (with its shard id) instead of hanging a pipe read, and
    ``timeout=`` bounds every broadcast / fan-out reply wait."""

    def test_close_is_idempotent(self, server, prefixes):
        svc = server.serve(n_shards=N_SHARDS)
        future = svc.submit(prefixes[0], prefixes[5])
        svc.close()
        assert future.done and future.value is None
        svc.close()  # second explicit close: no-op
        assert future.value is None

    def test_context_exit_after_explicit_close(self, server):
        with server.serve(n_shards=N_SHARDS) as svc:
            svc.close()
        assert svc._shards.closed  # __exit__ re-closed without error

    def test_dead_worker_raises_with_shard_id_not_hang(self, server):
        import time

        from repro.errors import ShardStateError

        svc = server.serve(n_shards=2)
        try:
            proc = svc._shards._procs[1]
            proc.terminate()
            proc.join(timeout=5.0)
            start = time.monotonic()
            with pytest.raises(ShardStateError, match="shard 1"):
                svc._shards.request(1, ("snapshot",))
            assert time.monotonic() - start < 5.0, "detection must be prompt"
            # the other worker still serves
            assert svc._shards.request(0, ("snapshot",))[0] == "snapshot"
        finally:
            svc.close()

    def test_reply_timeout_bounds_the_wait_and_poisons_the_shard(self, server):
        import time

        from repro.errors import ShardStateError

        svc = server.serve(n_shards=N_SHARDS)
        try:
            # no request outstanding: a live worker will never reply, so
            # only the timeout can end this wait
            start = time.monotonic()
            with pytest.raises(ShardStateError, match="timed out"):
                svc._shards.recv_raw(0, timeout=0.3)
            elapsed = time.monotonic() - start
            assert 0.2 <= elapsed < 5.0
            # a timed-out shard's pipe may later carry the stale reply;
            # it is quarantined rather than left to answer the wrong
            # request
            with pytest.raises(ShardStateError, match="quarantined"):
                svc._shards.request(0, ("snapshot",))
            # the other shard is unaffected
            assert svc._shards.request(1, ("snapshot",))[0] == "snapshot"
        finally:
            svc.close()

    def test_service_level_timeout_is_plumbed(self, server, prefixes):
        svc = server.serve(n_shards=N_SHARDS, timeout=30.0)
        try:
            assert svc.timeout == 30.0
            assert svc.predict(prefixes[0], prefixes[5]) == server.predict(
                prefixes[0], prefixes[5]
            )
            assert svc.apply_delta is not None  # broadcast paths share it
        finally:
            svc.close()

    def test_buffered_reply_from_exited_worker_still_drains(self, server):
        svc = server.serve(n_shards=2)
        try:
            # ask for a snapshot, let the reply land in the pipe, then
            # stop the worker: the reply must still be readable
            svc._shards.send(1, ("snapshot",))
            import time

            time.sleep(0.3)
            svc._shards._procs[1].terminate()
            svc._shards._procs[1].join(timeout=5.0)
            reply = svc._shards.recv_raw(1, timeout=5.0)
            assert reply[0] == "snapshot"
        finally:
            svc.close()
