"""Wire-protocol unit tests: round-trip every frame type, then fuzz.

The gateway protocol's contract is that *both* ends share one
encode/decode layer (:mod:`repro.net.protocol`) and that no byte
stream — truncated, corrupted, oversized, or adversarial — ever
surfaces as anything but a typed
:class:`~repro.errors.ProtocolError` / :class:`~repro.errors.CodecError`.
"""

from __future__ import annotations

import random
import struct

import pytest

from repro.client.query import PathInfo
from repro.core.predictor import PredictedPath, PredictorConfig
from repro.errors import ProtocolError
from repro.net import protocol as P

PATH = PredictedPath(
    clusters=(10, 30, 50),
    as_path=(1, 3, 5),
    latency_ms=20.125,
    loss=0.0078125,
    as_hops=2,
    used_from_src=True,
)
PATH2 = PredictedPath(
    clusters=(50, 40),
    as_path=(5, 4),
    latency_ms=1e-9 + 3.3,
    loss=0.1,
    as_hops=1,
    used_from_src=False,
)
INFO = PathInfo(
    src_prefix_index=100,
    dst_prefix_index=500,
    forward=PATH,
    reverse=PATH2,
    atlas_day=27,
)


class TestFraming:
    def test_frame_round_trip(self):
        payload = b"some payload bytes"
        frame = P.encode_frame(P.PREDICT, 42, payload)
        decoder = P.FrameDecoder()
        assert decoder.feed(frame) == [(P.PREDICT, 42, payload)]
        assert decoder.buffered == 0

    def test_incremental_feed_byte_by_byte(self):
        frame = P.encode_frame(P.QUERY_INFO, 7, b"abcdef")
        decoder = P.FrameDecoder()
        frames = []
        for i in range(len(frame)):
            frames.extend(decoder.feed(frame[i : i + 1]))
        assert frames == [(P.QUERY_INFO, 7, b"abcdef")]

    def test_multiple_frames_in_one_chunk(self):
        chunk = b"".join(
            P.encode_frame(P.PREDICT, i, bytes([i])) for i in range(5)
        )
        assert P.FrameDecoder().feed(chunk) == [
            (P.PREDICT, i, bytes([i])) for i in range(5)
        ]

    def test_bad_magic_rejected(self):
        frame = bytearray(P.encode_frame(P.PREDICT, 1, b""))
        frame[0:4] = b"EVIL"
        with pytest.raises(ProtocolError):
            P.FrameDecoder().feed(bytes(frame))

    def test_bad_version_rejected(self):
        frame = bytearray(P.encode_frame(P.PREDICT, 1, b""))
        frame[4] = 99
        with pytest.raises(ProtocolError):
            P.FrameDecoder().feed(bytes(frame))

    def test_oversized_frame_rejected_from_header_alone(self):
        # the decoder must reject on the declared length, before (and
        # without) the payload bytes arriving
        header = struct.pack("<4sBBII", P.MAGIC, P.PROTOCOL_VERSION, P.PREDICT, 1, 10_000)
        decoder = P.FrameDecoder(max_frame=1024)
        with pytest.raises(ProtocolError, match="exceeds max_frame"):
            decoder.feed(header)

    def test_partial_frame_waits(self):
        frame = P.encode_frame(P.ATLAS, 3, b"x" * 100)
        decoder = P.FrameDecoder()
        assert decoder.feed(frame[:50]) == []
        assert decoder.buffered == 50
        assert decoder.feed(frame[50:]) == [(P.ATLAS, 3, b"x" * 100)]


class TestPayloadRoundTrips:
    def test_hello_welcome(self):
        version, flags, token = P.decode_hello(P.encode_hello(P.FLAG_SUBSCRIBE))
        assert version == P.PROTOCOL_VERSION
        assert flags & P.FLAG_SUBSCRIBE
        assert token is None
        assert P.decode_welcome(P.encode_welcome(27, True, "service")) == (
            27,
            True,
            "service",
        )

    def test_hello_auth_token(self):
        version, flags, token = P.decode_hello(
            P.encode_hello(P.FLAG_STATS, "sekrit-9")
        )
        assert version == P.PROTOCOL_VERSION
        assert flags & P.FLAG_STATS and flags & P.FLAG_AUTH
        assert token == "sekrit-9"
        # FLAG_AUTH set but token field truncated is a typed failure
        with pytest.raises(ProtocolError):
            P.decode_hello(P.encode_hello(0, "tok")[:4])

    def test_retry(self):
        after, reason = P.decode_retry(
            P.encode_retry(0.25, "client rate limit 50/s exceeded")
        )
        assert after == 0.25
        assert reason == "client rate limit 50/s exceeded"

    @pytest.mark.parametrize(
        "config",
        [
            None,
            PredictorConfig.inano(),
            PredictorConfig.graph_baseline(),
            PredictorConfig(use_preferences=False, tuple_degree_threshold=9),
        ],
    )
    def test_predict_request(self, config):
        payload = P.encode_predict_request(100, 500, config)
        assert P.decode_predict_request(payload) == (100, 500, config)

    @pytest.mark.parametrize("path", [None, PATH, PATH2])
    def test_predict_reply(self, path):
        got = P.decode_predict_reply(P.encode_predict_reply(path))
        assert got == path
        if path is not None:
            # lossless float64: bit-for-bit, not approximately
            assert struct.pack("<d", got.latency_ms) == struct.pack(
                "<d", path.latency_ms
            )

    @pytest.mark.parametrize("client", [None, "meas", "token-é"])
    def test_batch_request(self, client):
        pairs = [(1, 2), (3, 4), (1, 2)]
        config = PredictorConfig.graph_baseline()
        payload = P.encode_batch_request(pairs, config, client)
        assert P.decode_batch_request(payload) == (pairs, config, client)

    def test_batch_reply(self):
        paths = [PATH, None, PATH2, None]
        assert P.decode_batch_reply(P.encode_batch_reply(paths)) == paths

    def test_query_reply(self):
        infos = [INFO, None, INFO]
        assert P.decode_query_reply(P.encode_query_reply(infos)) == infos

    def test_query_reply_none_day(self):
        info = PathInfo(
            src_prefix_index=1,
            dst_prefix_index=2,
            forward=PATH,
            reverse=PATH2,
            atlas_day=None,
        )
        (got,) = P.decode_query_reply(P.encode_query_reply([info]))
        assert got == info and got.atlas_day is None

    @pytest.mark.parametrize("day", [None, 0, 31])
    def test_atlas_fetch(self, day):
        assert P.decode_atlas_fetch(P.encode_atlas_fetch(day)) == day

    def test_subscribe(self):
        assert P.decode_subscribe(P.encode_subscribe(True)) is True
        assert P.decode_subscribe(P.encode_subscribe(False)) is False
        assert P.decode_subscribe_ok(P.encode_subscribe_ok(12, True)) == (12, True)

    def test_error(self):
        code, message = P.decode_error(
            P.encode_error(P.E_BACKEND, "worker exploded")
        )
        assert code == P.E_BACKEND
        assert message == "worker exploded"

    def test_sub_dropped(self):
        day, reason = P.decode_sub_dropped(
            P.encode_sub_dropped(9, "subscriber send queue over budget")
        )
        assert day == 9
        assert reason == "subscriber send queue over budget"

    def test_stats(self):
        stats = {
            "elapsed_us": 123.25,
            "searches": 2,
            "cache_hits": 5,
            "search_us": 88.5,
            "reused": 3,
            "repaired": 1,
            "replayed": 4,
            "dirty": 0,
            "push_encode_us": 311.75,
            "push_enqueue_us": 4.5,
            "push_drain_us": 92.25,
            "queue_depth": 12,
            "inflight": 3,
            "req_p50_us": 640.5,
            "req_p99_us": 9001.25,
        }
        assert P.decode_stats(P.encode_stats(stats)) == stats
        # missing keys encode as zero, and the float fields stay lossless
        sparse = P.decode_stats(P.encode_stats({"elapsed_us": 0.1}))
        assert sparse["elapsed_us"] == 0.1
        assert sparse["searches"] == 0 and sparse["dirty"] == 0
        assert set(sparse) == set(P.STATS_FIELDS)

    def test_numpy_scalar_fields_pack(self):
        np = pytest.importorskip("numpy")
        path = PredictedPath(
            clusters=(np.int64(10), np.int64(30)),
            as_path=(np.int64(1), np.int64(3)),
            latency_ms=np.float64(20.0),
            loss=np.float64(0.25),
            as_hops=1,
            used_from_src=np.bool_(False),
        )
        got = P.decode_predict_reply(P.encode_predict_reply(path))
        assert got == path


class TestPayloadFuzz:
    """No malformed payload may escape as anything but ProtocolError."""

    DECODERS = [
        P.decode_hello,
        P.decode_welcome,
        P.decode_predict_request,
        P.decode_predict_reply,
        P.decode_batch_request,
        P.decode_batch_reply,
        P.decode_query_request,
        P.decode_query_reply,
        P.decode_atlas_fetch,
        P.decode_subscribe,
        P.decode_subscribe_ok,
        P.decode_sub_dropped,
        P.decode_stats,
        P.decode_retry,
        P.decode_error,
    ]

    GOOD = [
        P.encode_hello(1),
        P.encode_hello(1, "shared-secret"),
        P.encode_retry(0.5, "shed"),
        P.encode_welcome(5, False, "server"),
        P.encode_predict_request(1, 2, PredictorConfig.inano()),
        P.encode_predict_reply(PATH),
        P.encode_batch_request([(1, 2), (3, 4)], None, "tok"),
        P.encode_batch_reply([PATH, None, PATH2]),
        P.encode_query_reply([INFO, None]),
        P.encode_atlas_fetch(9),
        P.encode_subscribe_ok(3, True),
        P.encode_sub_dropped(7, "queue over budget"),
        P.encode_stats({"elapsed_us": 9.5, "searches": 1, "replayed": 2}),
        P.encode_error(P.E_MALFORMED, "x"),
    ]

    def _assert_typed(self, decoder, payload):
        try:
            decoder(payload)
        except ProtocolError:
            pass  # the only acceptable failure type

    def test_truncations(self):
        for payload in self.GOOD:
            for cut in range(len(payload)):
                for decoder in self.DECODERS:
                    self._assert_typed(decoder, payload[:cut])

    def test_trailing_garbage_rejected(self):
        for payload, decoder in [
            (P.encode_hello(0), P.decode_hello),
            (P.encode_predict_reply(None), P.decode_predict_reply),
            (P.encode_atlas_fetch(None), P.decode_atlas_fetch),
        ]:
            with pytest.raises(ProtocolError, match="trailing"):
                decoder(payload + b"\x00")

    def test_random_mutations(self):
        rng = random.Random(0xF00D)
        for payload in self.GOOD:
            for _ in range(40):
                mutated = bytearray(payload)
                for _ in range(rng.randrange(1, 4)):
                    mutated[rng.randrange(len(mutated))] = rng.randrange(256)
                for decoder in self.DECODERS:
                    self._assert_typed(decoder, bytes(mutated))

    def test_random_garbage(self):
        rng = random.Random(0xBEEF)
        for _ in range(60):
            blob = bytes(
                rng.randrange(256) for _ in range(rng.randrange(0, 80))
            )
            for decoder in self.DECODERS:
                self._assert_typed(decoder, blob)

    def test_huge_declared_counts_do_not_allocate(self):
        # a batch reply declaring 2**32-1 paths must fail fast (typed),
        # not build a four-billion-element list
        payload = struct.pack("<I", 0xFFFFFFFF)
        with pytest.raises(ProtocolError):
            P.decode_batch_reply(payload)
        with pytest.raises(ProtocolError):
            P.decode_query_reply(payload)


class TestTraceField:
    """The optional trailing TRACE context behind FLAG_TRACE: new
    peers round-trip it, old peers reject it as a typed error, and no
    truncated or corrupted trace byte sequence escapes untyped."""

    CTX = (0x1122334455667788, 0x0000AB0000000007)

    def test_predict_round_trip_with_and_without(self):
        cfg = PredictorConfig.inano()
        traced = P.encode_predict_request(1, 2, cfg, trace=self.CTX)
        assert P.decode_predict_request_traced(traced) == (1, 2, cfg, self.CTX)
        plain = P.encode_predict_request(1, 2, cfg)
        assert P.decode_predict_request_traced(plain) == (1, 2, cfg, None)

    def test_batch_round_trip_with_and_without(self):
        pairs = [(1, 2), (3, 4)]
        traced = P.encode_batch_request(pairs, None, "tok", trace=self.CTX)
        assert P.decode_batch_request_traced(traced) == (
            pairs,
            None,
            "tok",
            self.CTX,
        )
        assert P.decode_query_request_traced(traced)[3] == self.CTX
        plain = P.encode_batch_request(pairs, None, "tok")
        assert P.decode_batch_request_traced(plain)[3] is None

    def test_old_peer_interop_pinned(self):
        # without a trace the encoding is byte-identical to the
        # pre-trace wire format: an old gateway decodes it untouched
        cfg = PredictorConfig.inano()
        assert P.encode_predict_request(7, 8, cfg) == P.encode_predict_request(
            7, 8, cfg, trace=None
        )
        assert P.decode_predict_request(
            P.encode_predict_request(7, 8, cfg)
        ) == (7, 8, cfg)
        # with one, the classic decoders refuse — FLAG_TRACE is the
        # only thing that unlocks the field
        for decoder, payload in [
            (
                P.decode_predict_request,
                P.encode_predict_request(7, 8, cfg, trace=self.CTX),
            ),
            (
                P.decode_batch_request,
                P.encode_batch_request([(1, 2)], None, None, trace=self.CTX),
            ),
            (
                P.decode_query_request,
                P.encode_query_request([(1, 2)], None, None, trace=self.CTX),
            ),
        ]:
            with pytest.raises(ProtocolError, match="FLAG_TRACE"):
                decoder(payload)

    def test_truncated_trace_bytes_are_typed(self):
        full = P.encode_predict_request(1, 2, None, trace=self.CTX)
        base = len(P.encode_predict_request(1, 2, None))
        # cutting the whole field back off yields the valid plain payload
        assert P.decode_predict_request_traced(full[:base])[3] is None
        for cut in range(base + 1, len(full)):
            with pytest.raises(ProtocolError):
                P.decode_predict_request_traced(full[:cut])

    def test_garbage_trace_bytes_are_typed(self):
        rng = random.Random(0x7ACE)
        base = P.encode_batch_request([(1, 2)], None, None)
        for _ in range(60):
            junk = bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 24))
            )
            try:
                P.decode_batch_request_traced(base + junk)
            except ProtocolError:
                pass  # the only acceptable failure type
        # a wrong tag on an otherwise well-sized field is named
        bad = bytearray(P.encode_batch_request([(1, 2)], None, None, trace=self.CTX))
        bad[-17] = 0x55
        with pytest.raises(ProtocolError, match="trace field tag"):
            P.decode_batch_request_traced(bytes(bad))

    def test_peek_trace_tail_sniff(self):
        traced = P.encode_batch_request([(1, 2)], None, None, trace=self.CTX)
        assert P.peek_trace(traced) == self.CTX
        assert P.peek_trace(P.encode_batch_request([(1, 2)], None, None)) is None
        # never raises, even on payloads shorter than the field
        for n in range(17):
            assert P.peek_trace(b"\x54" * n) is None

    def test_welcome_caps_round_trip(self):
        classic = P.encode_welcome(5, True, "service")
        assert P.decode_welcome_caps(classic) == (5, True, "service", 0)
        capped = P.encode_welcome(5, True, "service", caps=P.FLAG_TRACE)
        assert P.decode_welcome_caps(capped) == (5, True, "service", P.FLAG_TRACE)
        # an old client's strict decoder never sees the caps byte
        # because the gateway only appends it for FLAG_TRACE clients;
        # if it did, the failure is typed
        with pytest.raises(ProtocolError):
            P.decode_welcome(capped)


class TestTraceDump:
    def _span(self, **kw):
        from repro.obs.trace import Span

        base = dict(
            trace_id=9,
            span_id=10,
            parent_id=0,
            name="gw.decode",
            start_us=123.5,
            duration_us=4.25,
            tags={"frame": "PREDICT"},
        )
        base.update(kw)
        return Span(**base)

    def test_fetch_round_trip(self):
        assert P.decode_trace_fetch(P.encode_trace_fetch(0xDEAD)) == 0xDEAD
        with pytest.raises(ProtocolError):
            P.decode_trace_fetch(b"\x01\x02")
        with pytest.raises(ProtocolError):
            P.decode_trace_fetch(P.encode_trace_fetch(1) + b"\x00")

    def test_dump_round_trip(self):
        spans = [
            self._span(),
            self._span(span_id=11, parent_id=10, name="kernel.search",
                       tags={"cache": "hit", "searches": "0"}),
            self._span(span_id=12, tags={}),
        ]
        out = P.decode_trace_dump(P.encode_trace_dump(spans))
        assert len(out) == 3
        for span, fields in zip(spans, out):
            assert fields["trace_id"] == span.trace_id
            assert fields["span_id"] == span.span_id
            assert fields["parent_id"] == span.parent_id
            assert fields["name"] == span.name
            assert fields["start_us"] == span.start_us
            assert fields["duration_us"] == span.duration_us
            assert fields["tags"] == span.tags
        assert P.decode_trace_dump(P.encode_trace_dump([])) == []

    def test_dump_tag_budget(self):
        crowded = self._span(tags={f"k{i}": "v" for i in range(256)})
        with pytest.raises(ProtocolError, match="tags"):
            P.encode_trace_dump([crowded])

    def test_dump_truncation_fuzz(self):
        payload = P.encode_trace_dump([self._span(), self._span(span_id=11)])
        for cut in range(len(payload)):
            try:
                P.decode_trace_dump(payload[:cut])
            except ProtocolError:
                pass  # typed, as required
