"""Tests for the cost algebra and the TCP/MOS performance models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.costs import ZERO_COST, PathCost
from repro.core.mos import mos_from_r, mos_score, r_factor
from repro.core.tcp import (
    ACCESS_RATE_BPS,
    download_time_seconds,
    pftk_throughput_bps,
    slow_start_time_seconds,
)

latencies = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)


class TestPathCost:
    def test_zero(self):
        assert ZERO_COST.effective_hops == 0
        assert ZERO_COST.exit_cost_ms == 0.0

    def test_intra_accumulates_exit_cost(self):
        cost = ZERO_COST.extend_intra(5.0).extend_intra(3.0)
        assert cost.as_hops == 0
        assert cost.exit_cost_ms == 8.0

    def test_inter_resets_exit_cost(self):
        cost = ZERO_COST.extend_intra(5.0).extend_inter()
        assert cost.as_hops == 1
        assert cost.exit_cost_ms == 0.0

    def test_late_exit_pending(self):
        cost = ZERO_COST.extend_late_exit(4.0)
        assert cost.as_hops == 0
        assert cost.pending == 1
        assert cost.effective_hops == 1
        # Crossing an ordinary boundary folds pending into hops.
        folded = cost.extend_inter()
        assert folded.as_hops == 2
        assert folded.pending == 0

    def test_ordering_hops_dominate(self):
        short_far = PathCost(1, 0, 100.0)
        long_near = PathCost(2, 0, 0.0)
        assert short_far < long_near

    def test_ordering_pending_counts(self):
        assert PathCost(1, 1, 0.0).sort_key() == PathCost(2, 0, 0.0).sort_key()

    @given(latencies, latencies)
    def test_intra_monotone(self, a, b):
        cost = ZERO_COST.extend_intra(a)
        assert cost.extend_intra(b) >= cost


class TestPftk:
    def test_zero_loss_is_access_rate(self):
        assert pftk_throughput_bps(0.1, 0.0) == ACCESS_RATE_BPS

    def test_throughput_decreases_with_loss(self):
        rates = [pftk_throughput_bps(0.1, p) for p in (0.001, 0.01, 0.05, 0.2)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_throughput_decreases_with_rtt(self):
        assert pftk_throughput_bps(0.05, 0.01) > pftk_throughput_bps(0.2, 0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            pftk_throughput_bps(0.0, 0.01)
        with pytest.raises(ValueError):
            pftk_throughput_bps(0.1, 1.0)

    def test_known_magnitude(self):
        # Classic sanity point: 100ms RTT, 1% loss -> on the order of
        # 100-200 KB/s for 1460-byte segments.
        rate = pftk_throughput_bps(0.1, 0.01)
        assert 5e4 < rate < 5e5


class TestDownloadTime:
    def test_small_file_latency_bound(self):
        fast = download_time_seconds(30_000, 0.02, 0.0)
        slow = download_time_seconds(30_000, 0.3, 0.0)
        assert slow > fast
        # Transfer time scales ~linearly with RTT for small files.
        assert slow / fast > 5

    def test_loss_hurts(self):
        clean = download_time_seconds(1_500_000, 0.1, 0.0)
        lossy = download_time_seconds(1_500_000, 0.1, 0.05)
        assert lossy > clean

    def test_slow_start_rounds(self):
        # 2 -> 4 -> 8 segments: 3KB file needs 2 rounds at MSS=1460.
        t = slow_start_time_seconds(3_000, 1.0)
        assert t == pytest.approx(3.0, abs=0.1)  # handshake + 2 rounds

    def test_size_validation(self):
        with pytest.raises(ValueError):
            download_time_seconds(0, 0.1, 0.0)

    @given(st.floats(min_value=0.01, max_value=0.5), st.floats(min_value=0.0, max_value=0.3))
    def test_positive(self, rtt, loss):
        assert download_time_seconds(30_000, rtt, loss) > 0


class TestMos:
    def test_perfect_call(self):
        assert mos_score(20.0, 0.0) > 4.0

    def test_loss_degrades(self):
        assert mos_score(50.0, 0.10) < mos_score(50.0, 0.0)

    def test_delay_degrades_beyond_threshold(self):
        assert mos_score(800.0, 0.0) < mos_score(100.0, 0.0)

    def test_bounds(self):
        assert 1.0 <= mos_score(2000.0, 0.9) <= 4.5
        assert mos_from_r(-10) == 1.0
        assert mos_from_r(150) == 4.5

    def test_validation(self):
        with pytest.raises(ValueError):
            r_factor(-1.0, 0.0)
        with pytest.raises(ValueError):
            r_factor(10.0, 1.5)
