"""Equivalence suite for in-place delta patching (the runtime tentpole).

The executable specification of an atlas update is a **full recompile**:
``CompiledGraph.from_atlas`` over the post-delta atlas. The runtime
instead patches the CSR arrays in place; these tests drive a ≥10-day
chain of daily deltas — including a monthly-refresh boundary — over a
real (small-scenario) atlas with seeded link/loss/tuple churn, and
assert after *every* step that:

* every materialized base graph's arrays are bit-for-bit identical to a
  fresh ``from_atlas`` of the runtime's atlas (directed and closed);
* the client FROM_SRC merged view equals a full
  ``from_atlas(..., from_src_links=...)`` compile;
* the runtime's in-place atlas mutation matches the pure
  ``apply_delta`` chain, including the ``links`` dict order the
  emission contract depends on;
* predictions from the patched runtime match a predictor built from
  scratch over the same atlas.

The chain is engineered to exercise each patch path at least once:
value-only days (no CSR work), structural days with localized CSR
repair, structural days that force node renumbering, and the monthly
recompile boundary.
"""

from __future__ import annotations

import copy
import itertools
import random

import pytest

from repro.atlas.delta import apply_delta, compute_delta
from repro.atlas.model import LinkRecord
from repro.core.compiled import CompiledGraph
from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.runtime import AtlasRuntime

CHAIN_START_DAY = 25  # 10+ deltas from here cross the day-30 monthly refresh
CHAIN_DAYS = 11


def _perturb_daily(atlas, rng: random.Random) -> None:
    """Seeded daily churn over the delta-carried datasets only."""
    links = list(atlas.links)
    # latency jitter on a large slice of links (the dominant real-world
    # delta content: value-only span updates)
    for link in rng.sample(links, k=max(1, len(links) // 3)):
        rec = atlas.links[link]
        atlas.links[link] = LinkRecord(
            latency_ms=max(0.1, rec.latency_ms * (1.0 + rng.uniform(-0.2, 0.2)))
        )
    # structural churn: drop a few links (and their loss entries)
    for link in rng.sample(links, k=3):
        atlas.links.pop(link, None)
        atlas.link_loss.pop(link, None)
    # add links between existing clusters...
    clusters = sorted({c for ab in atlas.links for c in ab})
    for _ in range(3):
        a, b = rng.sample(clusters, 2)
        if (a, b) not in atlas.links:
            atlas.links[(a, b)] = LinkRecord(latency_ms=rng.uniform(1.0, 30.0))
    # ...and one touching a cluster the atlas cannot map to an AS (the
    # compiler skips it: a zero-edge span the patcher must track)
    unknown = max(clusters) + 1000 + rng.randrange(50)
    atlas.links[(clusters[0], unknown)] = LinkRecord(latency_ms=5.0)
    # loss churn over surviving links
    survivors = list(atlas.links)
    for link in rng.sample(survivors, k=5):
        atlas.link_loss[link] = round(rng.uniform(0.01, 0.2), 3)
    for link in list(atlas.link_loss)[:2]:
        del atlas.link_loss[link]
    # tuple churn (delta-carried but not compiled into the arrays)
    tuples = sorted(atlas.three_tuples)
    for t in rng.sample(tuples, k=min(4, len(tuples))):
        atlas.three_tuples.discard(t)
    atlas.three_tuples.add((90_001 + rng.randrange(99), 90_200, 90_300))


def _perturb_monthly(atlas, rng: random.Random) -> None:
    """Changes that only a monthly refresh can carry."""
    # flip one AS relationship (changes edge classification wholesale)
    for pair, code in list(atlas.relationship_codes.items())[:1]:
        atlas.relationship_codes[pair] = (code % 3) + 1
    # map one previously-unmappable cluster to a fresh AS
    mapped = set(atlas.cluster_to_as)
    for ab in atlas.links:
        for c in ab:
            if c not in mapped:
                atlas.cluster_to_as[c] = 90_999
                atlas.as_degrees[90_999] = 1
                return


def _build_chain(base_atlas):
    """``CHAIN_DAYS`` successive atlases with seeded churn, crossing day 30."""
    rng = random.Random(0xA71A5)
    current = copy.deepcopy(base_atlas)
    current.day = CHAIN_START_DAY
    chain = [current]
    for step in range(CHAIN_DAYS):
        nxt = copy.deepcopy(chain[-1])
        nxt.day += 1
        if step != 1:  # step 1 stays value-free structurally? no: see below
            _perturb_daily(nxt, rng)
        else:
            # one pure value-only day: latency jitter but no add/remove
            for link in list(nxt.links)[: len(nxt.links) // 4]:
                rec = nxt.links[link]
                nxt.links[link] = LinkRecord(latency_ms=rec.latency_ms + 0.25)
        if nxt.day % 30 == 0:
            _perturb_monthly(nxt, rng)
        chain.append(nxt)
    return chain


@pytest.fixture(scope="module")
def chain(atlas):
    return _build_chain(atlas)


@pytest.fixture(scope="module")
def from_src(atlas):
    return dict(itertools.islice(copy.deepcopy(atlas).links.items(), 10))


def _assert_graph_equal(got: CompiledGraph, want: CompiledGraph, label: str):
    got_arrays, want_arrays = got.arrays(), want.arrays()
    for name in want_arrays:
        assert got_arrays[name] == want_arrays[name], (label, name)
    assert got._id_of == want._id_of, label


class TestDeltaChainEquivalence:
    def test_chain_matches_full_recompile_everywhere(self, chain, from_src):
        runtime = AtlasRuntime(copy.deepcopy(chain[0]))
        runtime.directed_graph()
        runtime.closed_graph()
        runtime.merged_graph("client", from_src, {}, rev=0)
        reference = copy.deepcopy(chain[0])
        modes_seen = set()
        csr_modes = set()
        for base, nxt in zip(chain, chain[1:]):
            delta = compute_delta(base, nxt)
            report = runtime.apply_delta(delta)
            modes_seen.add(report.mode)
            for stats in report.graphs.values():
                modes_seen.add(stats.get("mode"))
                csr_modes.add(stats.get("csr"))
            # the pure apply_delta chain is the atlas-level spec
            reference = apply_delta(reference, delta)
            assert runtime.atlas.day == nxt.day == reference.day
            assert list(runtime.atlas.links) == list(reference.links), (
                "links dict order drives emission order and must match"
            )
            assert runtime.atlas.links == reference.links
            assert runtime.atlas.link_loss == reference.link_loss
            assert runtime.atlas.three_tuples == reference.three_tuples
            assert (
                runtime.atlas.relationship_codes == reference.relationship_codes
            )
            # every materialized graph equals a from-scratch compile
            _assert_graph_equal(
                runtime.directed_graph(),
                CompiledGraph.from_atlas(runtime.atlas, closed=False),
                f"directed@{nxt.day}",
            )
            _assert_graph_equal(
                runtime.closed_graph(),
                CompiledGraph.from_atlas(runtime.atlas, closed=True),
                f"closed@{nxt.day}",
            )
            _assert_graph_equal(
                runtime.merged_graph("client", from_src, {}, rev=0),
                CompiledGraph.from_atlas(
                    runtime.atlas, from_src_links=from_src, closed=False
                ),
                f"merged@{nxt.day}",
            )
        # the chain must have exercised every update path
        assert "recompile" in modes_seen, "monthly boundary should recompile"
        assert "values" in modes_seen, "a value-only day should skip CSR work"
        assert "structural" in modes_seen
        assert csr_modes & {"patched", "rebuilt"}
        assert runtime.updates_applied == CHAIN_DAYS
        assert runtime.updates_recompiled >= 1

    def test_chain_predictions_match_fresh_predictor(self, chain):
        runtime = AtlasRuntime(copy.deepcopy(chain[0]))
        runtime.closed_graph()
        config = PredictorConfig.inano()
        prefixes = sorted(runtime.atlas.prefix_to_cluster)
        rng = random.Random(7)
        for base, nxt in zip(chain, chain[1:]):
            runtime.apply_delta(compute_delta(base, nxt))
            pooled = runtime.pool.predictor(config)
            fresh = INanoPredictor(copy.deepcopy(runtime.atlas), config)
            for _ in range(6):
                src, dst = rng.sample(prefixes, 2)
                assert pooled.predict_or_none(src, dst) == fresh.predict_or_none(
                    src, dst
                ), (nxt.day, src, dst)

    def test_recompile_mode_is_equivalent(self, chain):
        """mode="recompile" (the spec path the benchmark compares against)
        lands on the same arrays as patching."""
        patched = AtlasRuntime(copy.deepcopy(chain[0]))
        rebuilt = AtlasRuntime(copy.deepcopy(chain[0]))
        for runtime in (patched, rebuilt):
            runtime.directed_graph()
            runtime.closed_graph()
        for base, nxt in zip(chain[:4], chain[1:5]):
            delta = compute_delta(base, nxt)
            patched.apply_delta(delta, mode="patch")
            rebuilt.apply_delta(delta, mode="recompile")
            for name in ("directed", "closed"):
                _assert_graph_equal(
                    patched._graphs[name],
                    rebuilt._graphs[name],
                    f"{name}@{nxt.day}",
                )

    def test_delta_mismatch_rejected(self, chain):
        runtime = AtlasRuntime(copy.deepcopy(chain[0]))
        bad = compute_delta(chain[1], chain[2])
        from repro.errors import DeltaMismatchError

        with pytest.raises(DeltaMismatchError):
            runtime.apply_delta(bad)
