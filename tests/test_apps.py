"""Tests for the three case-study applications."""

import numpy as np
import pytest

from repro.apps.cdn import LARGE_FILE_BYTES, SMALL_FILE_BYTES, CdnExperiment
from repro.apps.detour import DetourExperiment
from repro.apps.voip import VoipExperiment
from repro.routing.failures import sample_failures
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def hosts(scenario):
    prefixes = scenario.all_prefixes()
    rng = derive_rng(13, "test.apps.hosts")
    return [int(p) for p in rng.choice(prefixes, size=24, replace=False)]


class TestCdn:
    @pytest.fixture(scope="class")
    def experiment(self, scenario, hosts):
        clients = hosts[:8]
        replicas = hosts[8:]
        return CdnExperiment(
            engine=scenario.engine(0), clients=clients, replicas=replicas, seed=2
        )

    def test_optimal_lower_bounds_everything(self, experiment, scenario):
        strategies = {
            "measured": experiment.strategy_measured_latency(),
            "random": experiment.strategy_random(),
            "inano": experiment.strategy_inano(
                scenario.shared_predictor(), SMALL_FILE_BYTES
            ),
        }
        result = experiment.run(strategies, SMALL_FILE_BYTES)
        for name in strategies:
            for achieved, optimal in zip(
                result.download_seconds[name], result.optimal_seconds
            ):
                assert achieved >= optimal - 1e-12

    def test_measured_latency_optimal_for_small_files_without_loss(
        self, experiment
    ):
        """With latency-dominated small transfers, measured-RTT selection
        is near-optimal in the median."""
        strategies = {"measured": experiment.strategy_measured_latency()}
        result = experiment.run(strategies, SMALL_FILE_BYTES)
        slowdowns = result.slowdown_vs_optimal("measured")
        assert float(np.median(slowdowns)) < 1.5

    def test_candidate_sets_deterministic(self, experiment):
        assert experiment.candidate_sets() == experiment.candidate_sets()

    def test_inano_beats_random_large_files(self, experiment, scenario):
        strategies = {
            "inano": experiment.strategy_inano(
                scenario.shared_predictor(), LARGE_FILE_BYTES
            ),
            "random": experiment.strategy_random(),
        }
        result = experiment.run(strategies, LARGE_FILE_BYTES)
        assert result.median_seconds("inano") <= result.median_seconds("random") * 1.25

    def test_result_alignment(self, experiment):
        strategies = {"random": experiment.strategy_random()}
        result = experiment.run(strategies, SMALL_FILE_BYTES)
        assert len(result.download_seconds["random"]) == len(result.optimal_seconds)


class TestVoip:
    @pytest.fixture(scope="class")
    def result(self, scenario, hosts):
        experiment = VoipExperiment(engine=scenario.engine(0), hosts=hosts, seed=3)
        return experiment.run(scenario.shared_predictor(), n_calls=40, max_relays=15)

    def test_all_strategies_scored(self, result):
        for name in ("inano", "closest_src", "closest_dst", "random"):
            assert len(result.loss_rates[name]) == 40
            assert len(result.mos[name]) == 40

    def test_inano_no_worse_than_random_loss(self, result):
        assert result.median_loss("inano") <= result.median_loss("random") + 1e-9

    def test_loss_in_range(self, result):
        for losses in result.loss_rates.values():
            assert all(0.0 <= l <= 1.0 for l in losses)

    def test_mos_in_range(self, result):
        for scores in result.mos.values():
            assert all(1.0 <= m <= 4.5 for m in scores)


class TestDetour:
    @pytest.fixture(scope="class")
    def events(self, scenario, hosts):
        engine = scenario.engine(0)
        topo = scenario.topology(0)
        collected = []
        for dst in hosts[:10]:
            sources = [h for h in hosts if h != dst]
            sampled = sample_failures(topo, engine, dst, sources, seed=dst)
            if sampled is None:
                continue
            scenario_obj, cut, _ = sampled
            for src in cut[:2]:
                candidates = [h for h in hosts if h not in (src, dst)]
                collected.append((scenario_obj, src, dst, candidates))
        if len(collected) < 4:
            pytest.skip("too few failure events sampled on this topology")
        return collected

    def test_unreachability_monotone_in_detours(self, scenario, events):
        experiment = DetourExperiment(
            engine=scenario.engine(0),
            predictor=scenario.shared_predictor(),
            max_detours=5,
        )
        result = experiment.run(events)
        assert result.n_events == len(events)
        for strategy in ("inano_disjoint", "random"):
            fractions = [
                result.unreachable_fraction(strategy, n) for n in range(1, 6)
            ]
            assert all(a >= b - 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_ranking_is_permutation(self, scenario, events):
        experiment = DetourExperiment(
            engine=scenario.engine(0), predictor=scenario.shared_predictor()
        )
        _, src, dst, candidates = events[0]
        ranked = experiment.rank_detours(src, dst, candidates)
        assert sorted(ranked) == sorted(candidates)
