"""Fast shape checks for the stationarity machinery (Figure 4 substrate).

The full-size stationarity experiments live in the benchmarks; these
tests pin down the *calibration contract* on the small scenario: a day of
evolution keeps most paths intact while changing some, and the similarity
metric distributes the way Figure 4 needs.
"""

import numpy as np
import pytest

from repro.errors import NoRouteError, RoutingError
from repro.eval.similarity import path_similarity


@pytest.fixture(scope="module")
def day_pair_paths(scenario):
    engine0 = scenario.engine(0)
    engine1 = scenario.engine(1)
    vps = scenario.atlas_vps()[:10]
    targets = scenario.all_prefixes()[::6]
    day0, day1 = {}, {}
    for vp in vps:
        for dst in targets:
            if dst == vp.prefix_index:
                continue
            key = (vp.prefix_index, dst)
            try:
                day0[key] = engine0.pop_path(*key).pops
                day1[key] = engine1.pop_path(*key).pops
            except (NoRouteError, RoutingError):
                continue
    return day0, day1


class TestDayToDayShape:
    def test_population_size(self, day_pair_paths):
        day0, day1 = day_pair_paths
        common = set(day0) & set(day1)
        assert len(common) > 100

    def test_majority_stationary(self, day_pair_paths):
        day0, day1 = day_pair_paths
        sims = [
            path_similarity(day0[k], day1[k]) for k in set(day0) & set(day1)
        ]
        arr = np.asarray(sims)
        assert float(np.mean(arr == 1.0)) >= 0.3, "too much churn for Figure 4"
        assert float(np.mean(arr >= 0.75)) >= 0.6

    def test_some_churn_exists(self, day_pair_paths):
        day0, day1 = day_pair_paths
        sims = [
            path_similarity(day0[k], day1[k]) for k in set(day0) & set(day1)
        ]
        arr = np.asarray(sims)
        assert float(np.mean(arr < 1.0)) >= 0.02, (
            "a day must change some routes, or the delta experiments are vacuous"
        )

    def test_similarity_never_negative(self, day_pair_paths):
        day0, day1 = day_pair_paths
        for key in set(day0) & set(day1):
            assert 0.0 <= path_similarity(day0[key], day1[key]) <= 1.0
