"""Tests for day-to-day evolution and failure injection."""

import pytest

from repro.routing import ForwardingEngine, evolve_topology
from repro.routing.dynamics import DayConfig
from repro.routing.failures import (
    FailureAwareReachability,
    FailureScenario,
    sample_failures,
)
from repro.topology import TopologyConfig, generate_topology
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def topo():
    return generate_topology(TopologyConfig(seed=41, n_tier1=4, n_tier2=12, n_tier3=40))


class TestDynamics:
    def test_day_zero_is_copy(self, topo):
        day0 = evolve_topology(topo, 0)
        assert sorted(day0.links) == sorted(topo.links)
        assert day0 is not topo
        # Mutating the copy must not affect the base.
        key = next(iter(day0.ases))
        day0.ases[key].neighbor_rank.clear()
        assert topo.ases[key].neighbor_rank

    def test_deterministic(self, topo):
        d1 = evolve_topology(topo, 2, seed=5)
        d2 = evolve_topology(topo, 2, seed=5)
        assert sorted(d1.links) == sorted(d2.links)
        l1 = {k: (v.latency_ms, v.loss_rate) for k, v in d1.links.items()}
        l2 = {k: (v.latency_ms, v.loss_rate) for k, v in d2.links.items()}
        assert l1 == l2

    def test_cumulative_evolution(self, topo):
        """Day 2 differs from day 1 (evolution keeps going)."""
        d1 = evolve_topology(topo, 1, seed=5)
        d2 = evolve_topology(topo, 2, seed=5)
        c1 = {k: v.loss_rate for k, v in d1.links.items()}
        c2 = {k: v.loss_rate for k, v in d2.links.items()}
        assert c1 != c2

    def test_negative_day_rejected(self, topo):
        with pytest.raises(ValueError):
            evolve_topology(topo, -1)

    def test_evolved_topology_still_valid(self, topo):
        day3 = evolve_topology(topo, 3)
        day3.validate()

    def test_evolved_topology_still_routes(self, topo):
        day1 = evolve_topology(topo, 1)
        engine = ForwardingEngine(day1)
        prefixes = sorted(p.index for p in day1.prefixes)
        ok = sum(engine.reachable(prefixes[i], prefixes[-1 - i]) for i in range(10))
        assert ok >= 8

    def test_churn_is_bounded(self, topo):
        """Most links survive a day (the Figure 4 premise)."""
        day1 = evolve_topology(topo, 1)
        surviving = set(topo.links) & set(day1.links)
        assert len(surviving) >= 0.95 * len(topo.links)


class TestFailures:
    def test_scenario_path_check(self):
        scenario = FailureScenario(failed_links=frozenset({(1, 2)}))
        assert scenario.path_works(((0, 1), (3, 4)))
        assert not scenario.path_works(((0, 1), (1, 2)))

    def test_reachability_oracle(self, topo):
        engine = ForwardingEngine(topo)
        prefixes = sorted(p.index for p in topo.prefixes)
        src, dst = prefixes[0], prefixes[-1]
        direct = engine.pop_path(src, dst)
        # Failing a link on the direct path must break reachability.
        broken = FailureScenario(
            failed_links=frozenset(
                {direct.links[0], (direct.links[0][1], direct.links[0][0])}
            )
        )
        oracle = FailureAwareReachability(engine, broken)
        assert not oracle.reachable(src, dst)
        # Nothing failed: reachable.
        clean = FailureAwareReachability(engine, FailureScenario(frozenset()))
        assert clean.reachable(src, dst)

    def test_sample_failures_criteria(self, topo):
        engine = ForwardingEngine(topo)
        prefixes = sorted(p.index for p in topo.prefixes)
        rng = derive_rng(3, "test.failures")
        sources = [int(p) for p in rng.choice(prefixes[:-1], size=25, replace=False)]
        found = 0
        for dst in prefixes[-6:]:
            result = sample_failures(topo, engine, dst, sources, seed=dst)
            if result is None:
                continue
            scenario, cut, ok = result
            found += 1
            n = len(cut) + len(ok)
            assert len(cut) >= 0.10 * n
            assert len(ok) >= 0.10 * n
            oracle = FailureAwareReachability(engine, scenario)
            for src in cut[:5]:
                assert not oracle.reachable(src, dst)
        assert found >= 1

    def test_detour_works_semantics(self, topo):
        engine = ForwardingEngine(topo)
        prefixes = sorted(p.index for p in topo.prefixes)
        src, relay, dst = prefixes[0], prefixes[5], prefixes[-1]
        oracle = FailureAwareReachability(engine, FailureScenario(frozenset()))
        assert oracle.detour_works(src, relay, dst) == (
            oracle.reachable(src, relay) and oracle.reachable(relay, dst)
        )
