"""Tests for PoP-level path expansion and end-to-end queries."""

import pytest

from repro.routing.forwarding import ForwardingEngine
from repro.topology import TopologyConfig, generate_topology
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def topo():
    return generate_topology(TopologyConfig(seed=31, n_tier1=4, n_tier2=12, n_tier3=40))


@pytest.fixture(scope="module")
def engine(topo):
    return ForwardingEngine(topo)


@pytest.fixture(scope="module")
def prefix_pairs(topo):
    prefixes = sorted(p.index for p in topo.prefixes)
    rng = derive_rng(1, "test.pairs")
    pairs = []
    for _ in range(60):
        i, j = rng.choice(len(prefixes), size=2, replace=False)
        pairs.append((prefixes[int(i)], prefixes[int(j)]))
    return pairs


class TestPopPaths:
    def test_paths_walk_real_links(self, topo, engine, prefix_pairs):
        for src, dst in prefix_pairs:
            path = engine.pop_path(src, dst)
            for a, b in zip(path.pops, path.pops[1:]):
                assert (a, b) in topo.links

    def test_path_endpoints(self, topo, engine, prefix_pairs):
        from repro.util.ids import PrefixId

        for src, dst in prefix_pairs[:20]:
            path = engine.pop_path(src, dst)
            assert path.pops[0] == topo.prefixes[PrefixId(src)].attachment_pop
            assert path.pops[-1] == topo.prefixes[PrefixId(dst)].attachment_pop

    def test_latency_is_sum_of_links(self, topo, engine, prefix_pairs):
        for src, dst in prefix_pairs[:20]:
            path = engine.pop_path(src, dst)
            expected = sum(
                topo.links[(a, b)].latency_ms for a, b in zip(path.pops, path.pops[1:])
            )
            assert abs(path.latency_ms - expected) < 1e-9

    def test_as_sequence_matches_route_table(self, topo, engine, prefix_pairs):
        """The PoP path's AS sequence must equal the BGP-selected AS path."""
        from repro.util.ids import PrefixId

        for src, dst in prefix_pairs[:30]:
            pop_as_path = engine.as_path_between(src, dst)
            src_info = topo.prefixes[PrefixId(src)]
            table = engine.oracle.table_for_prefix(dst)
            if src_info.origin_asn == topo.prefixes[PrefixId(dst)].origin_asn:
                continue
            expected = table.as_path(src_info.origin_asn)
            assert pop_as_path == expected

    def test_asymmetry_exists(self, engine, prefix_pairs):
        asym = 0
        for src, dst in prefix_pairs:
            e2e = engine.end_to_end(src, dst)
            if tuple(reversed(e2e.forward.pops)) != e2e.reverse.pops:
                asym += 1
        assert asym > 0, "expected at least some asymmetric routes"

    def test_loss_composition_bounds(self, engine, prefix_pairs):
        for src, dst in prefix_pairs[:20]:
            e2e = engine.end_to_end(src, dst)
            assert 0.0 <= e2e.loss_forward <= 1.0
            assert e2e.loss_round_trip >= e2e.loss_forward - 1e-12

    def test_rtt_positive_and_consistent(self, engine, prefix_pairs):
        for src, dst in prefix_pairs[:20]:
            e2e = engine.end_to_end(src, dst)
            assert e2e.rtt_ms > 0
            assert e2e.rtt_ms >= e2e.forward.latency_ms + e2e.reverse.latency_ms

    def test_reachability(self, engine, prefix_pairs):
        reachable = sum(engine.reachable(s, d) for s, d in prefix_pairs)
        assert reachable >= 0.9 * len(prefix_pairs)


class TestEarlyExit:
    def test_early_exit_minimizes_local_cost(self, topo, engine, prefix_pairs):
        """At non-late-exit boundaries, the chosen egress minimizes the
        intra-AS distance from the ingress among available interconnects."""
        checked = 0
        for src, dst in prefix_pairs:
            path = engine.pop_path(src, dst)
            pops = path.pops
            ingress = {}
            for i, pop in enumerate(pops):
                asn = topo.pops[pop].asn
                if i == 0 or topo.pops[pops[i - 1]].asn != asn:
                    ingress[asn] = pop
                if i + 1 < len(pops):
                    next_as = topo.pops[pops[i + 1]].asn
                    if next_as != asn and not topo.uses_late_exit(asn, next_as):
                        options = topo.interconnections(asn, next_as)
                        if len(options) < 2:
                            continue
                        chosen_cost = engine.intra_as_distance(
                            asn, ingress[asn], pop
                        )
                        best = min(
                            engine.intra_as_distance(asn, ingress[asn], egress)
                            for egress, _ in options
                        )
                        assert chosen_cost <= best + 1e-9
                        checked += 1
        assert checked > 0


class TestIntraAs:
    def test_intra_distance_zero_to_self(self, topo, engine):
        pop = next(iter(topo.pops))
        asn = topo.pops[pop].asn
        assert engine.intra_as_distance(asn, pop, pop) == 0.0

    def test_intra_path_endpoints(self, topo, engine):
        as_obj = max(topo.ases.values(), key=lambda a: len(a.pop_ids))
        pops = as_obj.pop_ids
        path = engine._intra_as_path(as_obj.asn, pops[0], pops[-1])
        assert path[0] == pops[0] and path[-1] == pops[-1]
