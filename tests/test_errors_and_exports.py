"""Tests for the exception hierarchy and the package's public surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_no_route_error_payload(self):
        err = errors.NoRouteError(1, 2)
        assert err.src == 1 and err.dst == 2
        assert "1" in str(err) and "2" in str(err)

    def test_unknown_endpoint_payload(self):
        err = errors.UnknownEndpointError(42)
        assert err.ip == 42

    def test_delta_mismatch_payload(self):
        err = errors.DeltaMismatchError(expected_day=3, actual_day=5)
        assert err.expected_day == 3 and err.actual_day == 5

    def test_no_predicted_route_payload(self):
        err = errors.NoPredictedRouteError("a", "b")
        assert err.src == "a" and err.dst == "b"

    def test_catching_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.AtlasFormatError("bad bytes")
        with pytest.raises(errors.PredictionError):
            raise errors.UnknownEndpointError(7)


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__

    def test_top_level_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports(self):
        import repro.apps as apps
        import repro.atlas as atlas
        import repro.baselines as baselines
        import repro.client as client
        import repro.core as core
        import repro.eval as eval_pkg
        import repro.measurement as measurement
        import repro.routing as routing
        import repro.topology as topology
        import repro.util as util

        for module in (
            apps, atlas, baselines, client, core, eval_pkg,
            measurement, routing, topology, util,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_predictor_config_names(self):
        from repro import PredictorConfig

        assert PredictorConfig.graph_baseline().ablation_name() == "GRAPH"
        assert PredictorConfig.inano().ablation_name() == "iNano"
        partial = PredictorConfig(
            use_from_src=True,
            use_three_tuples=True,
            use_preferences=False,
            use_providers=False,
        )
        assert partial.ablation_name() == "GRAPH+asym+tuples"
