"""Unit tests for the PathInfo query payload and latency/loss composition."""

import pytest

from repro.client.query import PathInfo
from repro.core.latency import compose_rtt_ms, predict_rtt_ms
from repro.core.loss import compose_loss, predict_path_loss, predict_round_trip_loss
from repro.core.predictor import INanoPredictor, PredictedPath, PredictorConfig

from helpers import prefix_of, toy_atlas


def _path(latency, loss, ases=(1, 2)):
    return PredictedPath(
        clusters=tuple(a * 10 for a in ases),
        as_path=tuple(ases),
        latency_ms=latency,
        loss=loss,
        as_hops=len(ases) - 1,
        used_from_src=False,
    )


class TestPathInfo:
    def test_rtt_is_sum_of_directions(self):
        info = PathInfo(1, 2, forward=_path(30.0, 0.0), reverse=_path(50.0, 0.0))
        assert info.rtt_ms == 80.0

    def test_loss_composition(self):
        info = PathInfo(1, 2, forward=_path(10, 0.1), reverse=_path(10, 0.2))
        assert info.loss_forward == pytest.approx(0.1)
        assert info.loss_round_trip == pytest.approx(1 - 0.9 * 0.8)

    def test_as_path_is_forward(self):
        info = PathInfo(1, 2, forward=_path(10, 0, (1, 3, 5)), reverse=_path(10, 0))
        assert info.as_path == (1, 3, 5)

    def test_application_metrics_consistent(self):
        clean = PathInfo(1, 2, forward=_path(20, 0.0), reverse=_path(20, 0.0))
        lossy = PathInfo(1, 2, forward=_path(20, 0.05), reverse=_path(20, 0.05))
        assert clean.tcp_throughput_bps() > lossy.tcp_throughput_bps()
        assert clean.mos() > lossy.mos()
        assert clean.download_time_seconds(30_000) <= lossy.download_time_seconds(30_000)


class TestCompositionHelpers:
    def test_compose_rtt(self):
        assert compose_rtt_ms(_path(10, 0), _path(15, 0)) == 25.0

    def test_compose_loss_bounds(self):
        assert compose_loss([]) == 0.0
        assert compose_loss([0.5, 0.5]) == pytest.approx(0.75)
        assert compose_loss([1.5]) == 1.0  # clipped
        assert compose_loss([-0.1]) == 0.0

    def test_predict_helpers_on_toy_atlas(self):
        atlas = toy_atlas()
        predictor = INanoPredictor(atlas, PredictorConfig.graph_baseline())
        rtt = predict_rtt_ms(predictor, prefix_of(3), prefix_of(4))
        assert rtt == pytest.approx(60.0)  # 3 hops * 10ms each way
        assert predict_path_loss(predictor, prefix_of(3), prefix_of(4)) == 0.0
        assert predict_round_trip_loss(predictor, prefix_of(3), prefix_of(4)) == 0.0

    def test_predict_helpers_none_on_unknown(self):
        atlas = toy_atlas()
        predictor = INanoPredictor(atlas, PredictorConfig.graph_baseline())
        assert predict_rtt_ms(predictor, 999_999, prefix_of(4)) is None
        assert predict_path_loss(predictor, 999_999, prefix_of(4)) is None
        assert predict_round_trip_loss(predictor, 999_999, prefix_of(4)) is None

    def test_loss_annotations_flow_into_predictions(self):
        atlas = toy_atlas()
        # Mark the 3->5 link lossy; the predicted 3->5 path must carry it.
        atlas.link_loss[(30, 50)] = 0.07
        predictor = INanoPredictor(atlas, PredictorConfig.graph_baseline())
        loss = predict_path_loss(predictor, prefix_of(3), prefix_of(5))
        assert loss == pytest.approx(0.07)
