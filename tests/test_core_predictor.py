"""Unit tests of the prediction engine on the hand-built toy atlas.

Topology (see tests/helpers.py)::

      AS1 ----peer---- AS2
       |                |
      AS3              AS4
         \\            /
            AS5 (dual-homed)
"""

import pytest

from repro.atlas.model import LinkRecord
from repro.core.graph import DOWN, TO_DST, UP, PredictionGraph
from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.errors import NoPredictedRouteError, UnknownEndpointError

from helpers import cluster_of, prefix_of, toy_atlas


@pytest.fixture
def atlas():
    return toy_atlas()


def predictor(atlas, **flags):
    defaults = dict(
        use_from_src=False,
        use_three_tuples=False,
        use_preferences=False,
        use_providers=False,
    )
    defaults.update(flags)
    return INanoPredictor(atlas, PredictorConfig(**defaults))


class TestGraphConstruction:
    def test_valley_free_by_construction(self, atlas):
        graph = PredictionGraph(atlas=atlas, closed=True).build()
        # No edge may go from a DOWN node to an UP node.
        for edges in graph.reverse_adjacency.values():
            for edge in edges:
                assert not (edge.src[1] == DOWN and edge.dst[1] == UP)

    def test_self_edges_present(self, atlas):
        graph = PredictionGraph(atlas=atlas, closed=True).build()
        node = (TO_DST, DOWN, cluster_of(5))
        kinds = [e.kind.name for e in graph.incoming(node)]
        assert "SELF_DOWN" in kinds

    def test_edge_count_positive(self, atlas):
        graph = PredictionGraph(atlas=atlas, closed=True).build()
        assert graph.n_edges > 0


class TestBasicPrediction:
    def test_valley_free_route_chosen(self, atlas):
        # 3 -> 5: direct customer route (3 is 5's provider).
        path = predictor(atlas).predict(prefix_of(3), prefix_of(5))
        assert path.as_path == (3, 5)

    def test_peer_route(self, atlas):
        # 3 -> 4: up to 1, peer to 2, down to 4 — NOT through customer 5
        # (that would be a valley).
        path = predictor(atlas).predict(prefix_of(3), prefix_of(4))
        assert path.as_path == (3, 1, 2, 4)

    def test_latency_composed(self, atlas):
        path = predictor(atlas).predict(prefix_of(3), prefix_of(4))
        assert path.latency_ms == pytest.approx(30.0)

    def test_unknown_endpoint(self, atlas):
        with pytest.raises(UnknownEndpointError):
            predictor(atlas).predict(999_999, prefix_of(5))

    def test_batch_interface(self, atlas):
        pred = predictor(atlas)
        results = pred.predict_batch(
            [(prefix_of(3), prefix_of(5)), (999_999, prefix_of(5))]
        )
        assert results[0] is not None and results[1] is None


class TestThreeTupleCheck:
    def test_missing_tuple_blocks_route(self, atlas):
        # Remove the witness that AS1 exports AS2's routes to AS3
        # (needed for 3 -> 1 -> 2 -> 4); AS1 has degree > threshold.
        atlas.three_tuples.discard((3, 1, 2))
        atlas.three_tuples.discard((2, 1, 3))
        atlas.as_degrees[1] = 10
        pred = predictor(atlas, use_three_tuples=True)
        with pytest.raises(NoPredictedRouteError):
            pred.predict(prefix_of(3), prefix_of(4))

    def test_low_degree_middle_exempt(self, atlas):
        atlas.three_tuples.discard((3, 1, 2))
        atlas.three_tuples.discard((2, 1, 3))
        atlas.as_degrees[1] = 2  # edge AS: visibility waiver applies
        pred = predictor(atlas, use_three_tuples=True)
        assert pred.predict(prefix_of(3), prefix_of(4)).as_path == (3, 1, 2, 4)


class TestProviderCheck:
    def test_non_provider_entry_blocked(self, atlas):
        # Claim AS5's prefixes are announced only via AS3.
        atlas.providers[5] = frozenset({3})
        pred = predictor(atlas, use_providers=True)
        path = pred.predict(prefix_of(4), prefix_of(5))
        # 4 cannot enter 5 directly (4 is not a provider in the
        # announcement); route must come around via 3.
        assert path.as_path[-2] == 3

    def test_per_prefix_override_wins(self, atlas):
        atlas.providers[5] = frozenset({3, 4})
        atlas.prefix_providers[prefix_of(5)] = frozenset({4})
        pred = predictor(atlas, use_providers=True)
        path = pred.predict(prefix_of(3), prefix_of(5))
        assert path.as_path[-2] == 4


class TestPreferences:
    def test_preference_breaks_tie(self, atlas):
        # Give AS5 a second link to each provider so both routes to AS1
        # have equal cluster structure; 5's routes to 1 via 3 or via
        # 4+2... those differ in length. Instead test 1 -> 5: via 3 or 4,
        # both 2 AS hops. Prefer 4.
        atlas.preferences.add((1, 2, 3))  # AS1 prefers next-hop 2 over 3
        # 1 -> 5 via 3 is (1,3,5); via 2 it is (1,2,4,5): longer, so the
        # preference must NOT override the shorter route.
        path = predictor(atlas, use_preferences=True).predict(
            prefix_of(1), prefix_of(5)
        )
        assert path.as_path == (1, 3, 5)

    def test_equal_length_preference_applied(self, atlas):
        # 5 -> 1: via 3 gives (5,3,1); make an equal-length alternative
        # via 4 impossible (4 connects to 2, not 1), so craft the tie at
        # AS5's providers toward a new dual-homed destination AS6.
        from repro.atlas.relationships import REL_CUSTOMER, REL_PROVIDER

        c6 = cluster_of(6)
        for provider in (3, 4):
            cp = cluster_of(provider)
            atlas.links[(cp, c6)] = LinkRecord(latency_ms=10.0)
            atlas.links[(c6, cp)] = LinkRecord(latency_ms=10.0)
            atlas.relationship_codes[(provider, 6)] = REL_PROVIDER
            atlas.relationship_codes[(6, provider)] = REL_CUSTOMER
        atlas.cluster_to_as[c6] = 6
        atlas.prefix_to_cluster[prefix_of(6)] = c6
        atlas.prefix_to_as[prefix_of(6)] = 6
        atlas.as_degrees[6] = 2
        # 5 -> 6 via 3 or via 4, both two hops. Express a preference.
        atlas.preferences.add((5, 4, 3))
        path = predictor(atlas, use_preferences=True).predict(
            prefix_of(5), prefix_of(6)
        )
        assert path.as_path == (5, 4, 6)
        # And the opposite preference flips the choice.
        atlas2 = toy_atlas()
        for provider in (3, 4):
            cp = cluster_of(provider)
            atlas2.links[(cp, c6)] = LinkRecord(latency_ms=10.0)
            atlas2.links[(c6, cp)] = LinkRecord(latency_ms=10.0)
            atlas2.relationship_codes[(provider, 6)] = REL_PROVIDER
            atlas2.relationship_codes[(6, provider)] = REL_CUSTOMER
        atlas2.cluster_to_as[c6] = 6
        atlas2.prefix_to_cluster[prefix_of(6)] = c6
        atlas2.prefix_to_as[prefix_of(6)] = 6
        atlas2.preferences.add((5, 3, 4))
        path2 = predictor(atlas2, use_preferences=True).predict(
            prefix_of(5), prefix_of(6)
        )
        assert path2.as_path == (5, 3, 6)


class TestFromSrcPlane:
    def test_from_src_links_used(self, atlas):
        # The client at AS5 has its own link observation 5 -> 4 with a
        # much better latency estimate; prediction should start in the
        # FROM_SRC plane.
        from_src = {
            (cluster_of(5), cluster_of(4)): LinkRecord(latency_ms=1.0),
            (cluster_of(4), cluster_of(2)): LinkRecord(latency_ms=1.0),
        }
        pred = INanoPredictor(
            atlas,
            PredictorConfig(
                use_from_src=True,
                use_three_tuples=False,
                use_preferences=False,
                use_providers=False,
            ),
            from_src_links=from_src,
        )
        path = pred.predict(prefix_of(5), prefix_of(2))
        assert path.used_from_src
        assert path.as_path == (5, 4, 2)

    def test_fallback_to_closed_graph(self, atlas):
        # No FROM_SRC links at all: the directed primary graph may fail,
        # the closed fallback must still answer.
        pred = INanoPredictor(
            atlas,
            PredictorConfig(
                use_from_src=True,
                use_three_tuples=False,
                use_preferences=False,
                use_providers=False,
            ),
            from_src_links=None,
        )
        path = pred.predict(prefix_of(3), prefix_of(4))
        assert path.as_path == (3, 1, 2, 4)

    def test_search_cache_reused(self, atlas):
        pred = predictor(atlas)
        pred.predict(prefix_of(3), prefix_of(5))
        cache_size = len(pred._search_cache)
        pred.predict(prefix_of(4), prefix_of(5))  # same destination cluster
        assert len(pred._search_cache) == cache_size
