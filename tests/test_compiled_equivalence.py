"""Equivalence suite: compiled CSR engine vs the legacy dict-based search.

The compiled engine (repro.core.compiled + the array-native Dijkstra in
repro.core.predictor) must be *bit-for-bit* interchangeable with the
legacy engine, which is kept as the executable specification. Two layers
of checks enforce that:

1. **Builder identity** — ``CompiledGraph.from_atlas`` (the fast path,
   which never materializes Edge objects) produces exactly the same
   arrays as ``CompiledGraph.from_prediction_graph`` (the canonical
   lowering of the built object graph). Since CSR edge lists preserve
   emission order, identical arrays imply identical tie-breaking.
2. **Engine equivalence** — for every Figure 5 ablation config, both
   engines return identical :class:`PredictedPath`s (clusters, AS path,
   latency, loss, hops, plane) on a seeded scenario and on the toy
   atlas with each corrective component stressed.
"""

from __future__ import annotations

import itertools
import random

import pytest

from repro.atlas.model import LinkRecord
from repro.core.compiled import CompiledGraph
from repro.core.graph import PredictionGraph
from repro.core.predictor import INanoPredictor, PredictorConfig

from helpers import cluster_of, prefix_of, toy_atlas

#: Figure 5's ablation ladder plus the single-component configs.
ABLATIONS = {
    "GRAPH": PredictorConfig.graph_baseline(),
    "GRAPH+asym": PredictorConfig(
        use_from_src=True,
        use_three_tuples=False,
        use_preferences=False,
        use_providers=False,
    ),
    "GRAPH+tuples": PredictorConfig(
        use_from_src=False,
        use_three_tuples=True,
        use_preferences=False,
        use_providers=False,
    ),
    "GRAPH+prefs": PredictorConfig(
        use_from_src=False,
        use_three_tuples=False,
        use_preferences=True,
        use_providers=False,
    ),
    "GRAPH+providers": PredictorConfig(
        use_from_src=False,
        use_three_tuples=False,
        use_preferences=False,
        use_providers=True,
    ),
    "iNano": PredictorConfig.inano(),
}


def sample_pairs(scenario, n, seed):
    prefixes = [int(p) for p in scenario.all_prefixes()]
    rng = random.Random(seed)
    return [tuple(rng.sample(prefixes, 2)) for _ in range(n)]


class TestBuilderIdentity:
    @pytest.mark.parametrize("closed", [True, False])
    def test_scenario_atlas(self, atlas, closed):
        graph = PredictionGraph(atlas=atlas, closed=closed).build()
        lowered = CompiledGraph.from_prediction_graph(graph)
        direct = CompiledGraph.from_atlas(atlas, closed=closed)
        assert lowered.arrays() == direct.arrays()
        assert lowered.n_edges == graph.n_edges

    def test_with_from_src_plane(self, atlas):
        from_src = dict(itertools.islice(atlas.links.items(), 10))
        graph = PredictionGraph(
            atlas=atlas, from_src_links=from_src, closed=False
        ).build()
        lowered = CompiledGraph.from_prediction_graph(graph)
        direct = CompiledGraph.from_atlas(
            atlas, from_src_links=from_src, closed=False
        )
        assert lowered.arrays() == direct.arrays()
        assert lowered.has_from_src and direct.has_from_src

    def test_toy_atlas(self):
        atlas = toy_atlas()
        graph = PredictionGraph(atlas=atlas, closed=True).build()
        lowered = CompiledGraph.from_prediction_graph(graph)
        direct = CompiledGraph.from_atlas(atlas, closed=True)
        assert lowered.arrays() == direct.arrays()

    def test_csr_is_consistent(self, atlas):
        cg = CompiledGraph.from_atlas(atlas, closed=True)
        assert cg.rev_off[0] == 0 and cg.rev_off[-1] == cg.n_edges
        assert cg.fwd_off[0] == 0 and cg.fwd_off[-1] == cg.n_edges
        for nid in range(cg.n_nodes):
            for ei in cg.rev_lst[cg.rev_off[nid]:cg.rev_off[nid + 1]]:
                assert cg.e_dst[ei] == nid
            for ei in cg.fwd_lst[cg.fwd_off[nid]:cg.fwd_off[nid + 1]]:
                assert cg.e_src[ei] == nid


class TestEngineEquivalence:
    @pytest.mark.parametrize("name", sorted(ABLATIONS))
    def test_scenario_ablation(self, scenario, atlas, name):
        config = ABLATIONS[name]
        legacy = INanoPredictor(atlas, config, engine="legacy")
        compiled = INanoPredictor(atlas, config, engine="compiled")
        for src, dst in sample_pairs(scenario, 40, seed=sum(map(ord, name))):
            assert legacy.predict_or_none(src, dst) == compiled.predict_or_none(
                src, dst
            ), (name, src, dst)

    def test_from_src_plane(self, atlas):
        from_src = dict(itertools.islice(atlas.links.items(), 10))
        config = PredictorConfig.inano()
        legacy = INanoPredictor(
            atlas, config, from_src_links=from_src, engine="legacy"
        )
        compiled = INanoPredictor(
            atlas, config, from_src_links=from_src, engine="compiled"
        )
        prefixes = [int(p) for p in atlas.prefix_to_cluster][:30]
        for src, dst in itertools.permutations(prefixes[:8], 2):
            assert legacy.predict_or_none(src, dst) == compiled.predict_or_none(
                src, dst
            )

    def test_toy_preferences(self):
        atlas = toy_atlas()
        atlas.preferences.add((5, 4, 3))
        config = PredictorConfig(
            use_from_src=False,
            use_three_tuples=False,
            use_preferences=True,
            use_providers=False,
        )
        self._assert_all_pairs_equal(atlas, config)

    def test_toy_providers(self):
        atlas = toy_atlas()
        atlas.providers[5] = frozenset({3})
        config = PredictorConfig(
            use_from_src=False,
            use_three_tuples=False,
            use_preferences=False,
            use_providers=True,
        )
        self._assert_all_pairs_equal(atlas, config)

    def test_toy_tuples(self):
        atlas = toy_atlas()
        atlas.three_tuples.discard((3, 1, 2))
        atlas.three_tuples.discard((2, 1, 3))
        atlas.as_degrees[1] = 10
        config = PredictorConfig(
            use_from_src=False,
            use_three_tuples=True,
            use_preferences=False,
            use_providers=False,
        )
        self._assert_all_pairs_equal(atlas, config)

    @staticmethod
    def _assert_all_pairs_equal(atlas, config):
        legacy = INanoPredictor(atlas, config, engine="legacy")
        compiled = INanoPredictor(atlas, config, engine="compiled")
        for a, b in itertools.permutations((1, 2, 3, 4, 5), 2):
            assert legacy.predict_or_none(
                prefix_of(a), prefix_of(b)
            ) == compiled.predict_or_none(prefix_of(a), prefix_of(b)), (a, b)


class TestBatchSemantics:
    def test_grouped_batch_matches_per_pair(self, scenario, atlas):
        predictor = INanoPredictor(atlas, PredictorConfig.inano())
        pairs = sample_pairs(scenario, 30, seed=99)
        pairs += [(999_999, pairs[0][1]), (pairs[0][0], 999_999)]
        batch = predictor.predict_batch(pairs)
        single = [predictor.predict_or_none(s, d) for s, d in pairs]
        assert batch == single

    def test_batch_keeps_fallback_lazy(self, atlas):
        predictor = INanoPredictor(atlas, PredictorConfig.inano())
        prefixes = list(atlas.prefix_to_cluster)
        results = predictor.predict_batch([(prefixes[0], prefixes[1])])
        assert results[0] is not None, "expected pair resolvable on primary graph"
        # Resolved on the primary directed graph: the closed fallback
        # must not have been compiled just to iterate the generator.
        assert predictor._fallback_graph is None

    def test_batch_shares_destination_search(self, atlas):
        predictor = INanoPredictor(atlas, PredictorConfig.inano())
        prefixes = list(atlas.prefix_to_cluster)[:6]
        dst = prefixes[-1]
        predictor.predict_batch([(s, dst) for s in prefixes[:-1]])
        # One destination -> at most one search per graph plane.
        assert len(predictor._search_cache) <= 2


class TestSearchCacheLRU:
    @staticmethod
    def _predictor(atlas):
        pred = INanoPredictor(atlas, PredictorConfig.graph_baseline())
        pred._cache_max = 2
        return pred

    def test_hit_refreshes_recency(self):
        atlas = toy_atlas()
        pred = self._predictor(atlas)
        pred.predict(prefix_of(3), prefix_of(5))  # A
        pred.predict(prefix_of(3), prefix_of(4))  # B
        pred.predict(prefix_of(4), prefix_of(5))  # hit A -> A most recent
        pred.predict(prefix_of(1), prefix_of(2))  # C evicts B, not A
        cached_dst_clusters = {key[1] for key in pred._search_cache}
        assert cluster_of(5) in cached_dst_clusters
        assert cluster_of(2) in cached_dst_clusters
        assert cluster_of(4) not in cached_dst_clusters

    def test_eviction_without_hits_is_fifo(self):
        atlas = toy_atlas()
        pred = self._predictor(atlas)
        pred.predict(prefix_of(3), prefix_of(5))  # A
        pred.predict(prefix_of(3), prefix_of(4))  # B
        pred.predict(prefix_of(1), prefix_of(2))  # C evicts A
        cached_dst_clusters = {key[1] for key in pred._search_cache}
        assert cluster_of(5) not in cached_dst_clusters
        assert cached_dst_clusters == {cluster_of(4), cluster_of(2)}
