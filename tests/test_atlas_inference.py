"""Tests for the atlas inference modules on hand-crafted inputs."""

import pytest

from repro.atlas.preferences import PreferenceInference
from repro.atlas.providers import ProviderInference
from repro.atlas.relationships import (
    REL_CUSTOMER,
    REL_PEER,
    REL_PROVIDER,
    REL_SIBLING,
    degree_table,
    infer_relationships,
)
from repro.atlas.tuples import collapse_prepending, extract_three_tuples, tuple_check


class TestTuples:
    def test_collapse_prepending(self):
        assert collapse_prepending((1, 1, 2, 2, 2, 3)) == (1, 2, 3)
        assert collapse_prepending(()) == ()

    def test_extraction_and_commutativity(self):
        tuples = extract_three_tuples([(1, 2, 3, 4)])
        assert (1, 2, 3) in tuples and (3, 2, 1) in tuples
        assert (2, 3, 4) in tuples and (4, 3, 2) in tuples

    def test_prepending_discounted(self):
        tuples = extract_three_tuples([(1, 2, 2, 3)])
        assert (1, 2, 3) in tuples

    def test_degenerate_triples_skipped(self):
        tuples = extract_three_tuples([(1, 2, 1)])
        assert not tuples

    def test_tuple_check_low_degree_passes(self):
        assert tuple_check(set(), {2: 3}, 1, 2, 3, degree_threshold=5)

    def test_tuple_check_high_degree_requires_witness(self):
        degrees = {2: 10}
        assert not tuple_check(set(), degrees, 1, 2, 3)
        assert tuple_check({(1, 2, 3)}, degrees, 1, 2, 3)

    def test_tuple_check_intra_as_trivially_true(self):
        assert tuple_check(set(), {2: 10}, 2, 2, 3)


class TestRelationshipInference:
    def test_degree_table(self):
        degrees = degree_table([(1, 2, 3), (2, 4)])
        assert degrees == {1: 1, 2: 3, 3: 1, 4: 1}

    def test_simple_hierarchy(self):
        # 5 is everyone's transit hub: paths climb into 5 and descend.
        paths = [
            (1, 5, 2),
            (2, 5, 1),
            (3, 5, 4),
            (4, 5, 3),
            (1, 5, 3),
            (1, 5, 4),
            (2, 5, 4),
            (3, 5, 1),
        ]
        rels = infer_relationships(paths)
        for leaf in (1, 2, 3, 4):
            assert rels.get(leaf, 5) == REL_CUSTOMER
            assert rels.is_provider_of(5, leaf)

    def test_sibling_detection(self):
        # Votes in both directions with comparable counts -> sibling.
        paths = [(1, 2, 9)] * 3 + [(9, 1, 2)] * 0 + [(2, 1, 8)] * 3 + [(8, 9, 1)] * 0
        # Give both 1->2 and 2->1 uphill votes by putting a high-degree
        # peak beyond them in each direction.
        paths += [(1, 2, 9), (2, 1, 9)]
        degrees_booster = [(9, 7), (9, 6), (9, 5), (9, 4), (9, 3)]
        paths += degrees_booster
        rels = infer_relationships(paths, sibling_ratio=3.0)
        assert rels.get(1, 2) == REL_SIBLING

    def test_inverse_consistency(self):
        paths = [(1, 5, 2), (2, 5, 1), (3, 5, 1)]
        rels = infer_relationships(paths)
        for (a, b), code in rels.codes.items():
            inverse = rels.codes[(b, a)]
            if code == REL_CUSTOMER:
                assert inverse == REL_PROVIDER
            elif code == REL_PROVIDER:
                assert inverse == REL_CUSTOMER
            else:
                assert inverse == code

    def test_peer_relabel(self):
        # Two comparable-degree ASes seen adjacent only at path peaks.
        paths = [
            (1, 10, 20, 2),
            (3, 10, 20, 4),
            (1, 10, 5),
            (2, 20, 6),
            (3, 10, 7),
            (4, 20, 8),
        ]
        rels = infer_relationships(paths)
        assert rels.get(10, 20) == REL_PEER


class TestPreferenceInference:
    def test_dominant_preference_found(self):
        inference = PreferenceInference(dominance=3.0)
        # AS 1 reaches dst 9 via 2 (always), although 3 also reaches 9 in
        # the same number of hops (witnessed by another source's path).
        for _ in range(6):
            inference.add_path((1, 2, 9))
        inference.add_path((7, 3, 9))  # proves 3 -> 9 in one hop
        inference.add_path((1, 3, 8))  # proves 1 - 3 adjacency
        prefs = inference.infer()
        assert (1, 2, 3) in prefs

    def test_wavering_dropped(self):
        inference = PreferenceInference(dominance=3.0)
        for _ in range(4):
            inference.add_path((1, 2, 9))
            inference.add_path((1, 3, 9))
        prefs = inference.infer()
        assert (1, 2, 3) not in prefs and (1, 3, 2) not in prefs

    def test_different_length_not_voted(self):
        inference = PreferenceInference()
        for _ in range(6):
            inference.add_path((1, 2, 9))
        inference.add_path((7, 3, 5, 9))  # 3 reaches 9 in 2 hops, not 1
        inference.add_path((1, 3, 8))
        prefs = inference.infer()
        assert (1, 2, 3) not in prefs

    def test_exportability_filter(self):
        inference = PreferenceInference()
        for _ in range(6):
            inference.add_path((1, 2, 9))
        inference.add_path((7, 3, 9))
        inference.add_path((1, 3, 8))
        # AS 3 has high degree but tuple (1, 3, 9) was never observed:
        # the alternative is an export artifact, so no preference vote.
        degrees = {3: 10, 1: 2, 2: 2, 9: 2}
        prefs = inference.infer(three_tuples={(9, 9, 9)}, degrees=degrees)
        assert (1, 2, 3) not in prefs


class TestProviderInference:
    def test_provider_vs_upstream_split(self):
        inference = ProviderInference()
        # 2 carries transit from 1 toward 9 (not terminating at 2).
        inference.add_path((1, 2, 9), dst_prefix_index=900, terminates=True)
        # A path terminating at 2 itself arrives via 3 only.
        inference.add_path((4, 3, 2), dst_prefix_index=200, terminates=True)
        providers = inference.provider_map()
        upstreams = inference.upstream_map()
        assert providers[2] == frozenset({3})
        assert upstreams[2] == frozenset({1, 3})
        assert inference.restrictive_ases() == [2]

    def test_prefix_refinement_only_when_different(self):
        inference = ProviderInference()
        inference.add_path((1, 3, 5), dst_prefix_index=500, terminates=True)
        inference.add_path((2, 4, 5), dst_prefix_index=501, terminates=True)
        prefix_map = inference.prefix_provider_map({500: 5, 501: 5})
        # AS-level providers of 5 are {3, 4}; each prefix saw only one.
        assert prefix_map[500] == frozenset({3})
        assert prefix_map[501] == frozenset({4})

    def test_non_terminating_no_provider_vote(self):
        inference = ProviderInference()
        inference.add_path((1, 2, 3))
        assert inference.provider_map() == {}
        assert inference.upstream_map()[3] == frozenset({2})
