"""Tests for the client library and central server lifecycle."""

import pytest

from repro.client import AtlasServer, ClientConfig, INanoClient
from repro.errors import AtlasError, ClientError


@pytest.fixture()
def server(scenario):
    server = AtlasServer()
    server.publish(scenario.atlas(0))
    return server


@pytest.fixture()
def client(scenario, server):
    source = scenario.validation_set().sources[0]
    return INanoClient(
        server,
        vantage=source.vantage,
        measurement_toolkit=scenario.simulator(0),
        cluster_map=scenario.cluster_map(0),
        config=ClientConfig(use_swarm=False),
    )


class TestServer:
    def test_publish_and_fetch(self, server, scenario):
        payload = server.full_atlas_bytes()
        assert payload[:4] == b"INNA"
        assert server.bytes_served == len(payload)

    def test_double_publish_rejected(self, server, scenario):
        with pytest.raises(AtlasError):
            server.publish(scenario.atlas(0))

    def test_missing_day_rejected(self, server):
        with pytest.raises(AtlasError):
            server.full_atlas_bytes(99)
        with pytest.raises(AtlasError):
            server.delta_for(99)

    def test_empty_server(self):
        with pytest.raises(AtlasError):
            AtlasServer().latest_day()

    def test_delta_available_after_second_day(self, server, scenario):
        server.publish(scenario.atlas(1))
        delta = server.delta_for(1)
        assert delta.base_day == 0 and delta.new_day == 1

    def test_upload_deduplicates(self, server, scenario):
        traces = scenario.traces(0)[:5]
        assert server.upload_traceroutes(traces) == 5
        assert server.upload_traceroutes(traces) == 0
        assert len(server.uploaded_traceroutes) == 5


class TestClientLifecycle:
    def test_query_before_fetch_fails(self, client):
        with pytest.raises(ClientError):
            client.query(1, 2)
        with pytest.raises(ClientError):
            client.measure()

    def test_fetch_decodes(self, client, scenario):
        atlas = client.fetch()
        assert atlas.entry_counts() == scenario.atlas(0).entry_counts()
        assert client.bytes_downloaded > 0

    def test_measure_builds_from_src(self, client, server):
        client.fetch()
        n = client.measure(n_prefixes=15)
        assert n == 15
        assert client.from_src_links
        # Measurements were uploaded to the server.
        assert len(server.uploaded_traceroutes) == 15

    def test_query_round(self, client, scenario):
        client.fetch()
        client.measure(n_prefixes=10)
        source = scenario.validation_set().sources[0]
        answered = 0
        for dst in source.validation_targets:
            info = client.query_or_none(source.vantage.prefix_index, dst)
            if info is None:
                continue
            answered += 1
            assert info.rtt_ms > 0
            assert 0.0 <= info.loss_round_trip <= 1.0
            assert info.as_path[0] == source.vantage.asn
            assert 1.0 <= info.mos() <= 4.5
            assert info.tcp_throughput_bps() > 0
            assert info.download_time_seconds(30_000) > 0
        assert answered >= len(source.validation_targets) * 0.5

    def test_batch_query(self, client, scenario):
        client.fetch()
        source = scenario.validation_set().sources[0]
        pairs = [
            (source.vantage.prefix_index, dst)
            for dst in source.validation_targets[:5]
        ]
        results = client.query_batch(pairs)
        assert len(results) == 5

    def test_daily_update(self, client, server, scenario):
        server.publish(scenario.atlas(1))
        client.fetch(day=0)
        size = client.apply_daily_update()
        assert size > 0
        assert client.atlas.day == 1
        # Updated atlas matches the directly-published day-1 atlas.
        assert set(client.atlas.links) == set(scenario.atlas(1).links)
        assert client.atlas.three_tuples == scenario.atlas(1).three_tuples

    def test_update_before_fetch_fails(self, client):
        with pytest.raises(ClientError):
            client.apply_daily_update()

    def test_measure_without_toolkit(self, server, scenario):
        bare = INanoClient(server, config=ClientConfig(use_swarm=False))
        bare.fetch()
        with pytest.raises(ClientError):
            bare.measure()
