"""Tests for the synthetic Internet generator."""

import pytest

from repro.errors import TopologyError
from repro.topology import TopologyConfig, generate_topology
from repro.topology.generator import INFRASTRUCTURE_IP_BASE
from repro.topology.relationships import Relationship


@pytest.fixture(scope="module")
def small_topo():
    return generate_topology(
        TopologyConfig(seed=11, n_tier1=4, n_tier2=12, n_tier3=40, n_sibling_pairs=2)
    )


class TestStructure:
    def test_validates(self, small_topo):
        small_topo.validate()  # raises on inconsistency

    def test_counts(self, small_topo):
        assert small_topo.n_ases == 56
        assert small_topo.n_pops >= 56
        assert len(small_topo.prefixes) >= 56

    def test_tier1_clique(self, small_topo):
        tier1 = [a.asn for a in small_topo.ases.values() if a.tier == 1]
        for a in tier1:
            for b in tier1:
                if a != b:
                    rel = small_topo.relationships.get(a, b)
                    assert rel in (Relationship.PEER,)

    def test_every_as_connected_upward(self, small_topo):
        """Every non-tier-1 AS has at least one provider or sibling."""
        for as_obj in small_topo.ases.values():
            if as_obj.tier == 1:
                continue
            providers = small_topo.relationships.providers_of(as_obj.asn)
            siblings = small_topo.relationships.siblings_of(as_obj.asn)
            assert providers or siblings

    def test_sibling_pairs_are_late_exit(self, small_topo):
        assert len(small_topo.late_exit_pairs) >= 1
        for pair in small_topo.late_exit_pairs:
            a, b = tuple(pair)
            assert small_topo.relationships.get(a, b) is Relationship.SIBLING

    def test_interfaces_in_per_as_blocks(self, small_topo):
        for pop in small_topo.pops.values():
            for iface in pop.interfaces:
                block_asn = (iface.ip - INFRASTRUCTURE_IP_BASE) >> 16
                assert block_asn == pop.asn

    def test_link_ifaces_point_at_link_targets(self, small_topo):
        for (src, dst), ip in small_topo.link_ifaces.items():
            assert small_topo.interface(ip).pop_id == dst
            assert (src, dst) in small_topo.links

    def test_prefix_attachment_in_origin_as(self, small_topo):
        for info in small_topo.prefixes.values():
            assert small_topo.pops[info.attachment_pop].asn == info.origin_asn

    def test_traffic_engineering_subset(self, small_topo):
        seen_te = False
        for as_obj in small_topo.ases.values():
            if as_obj.announce_providers is not None:
                providers = set(small_topo.relationships.providers_of(as_obj.asn))
                assert as_obj.announce_providers < providers or (
                    as_obj.announce_providers <= providers
                )
                assert len(as_obj.announce_providers) >= 1
                seen_te = True
        assert seen_te


class TestDeterminismAndConfig:
    def test_deterministic(self):
        cfg = TopologyConfig(seed=3, n_tier1=3, n_tier2=12, n_tier3=20)
        t1 = generate_topology(cfg)
        t2 = generate_topology(cfg)
        assert sorted(t1.links) == sorted(t2.links)
        assert {p.index for p in t1.prefixes} == {p.index for p in t2.prefixes}

    def test_seed_changes_topology(self):
        t1 = generate_topology(TopologyConfig(seed=1, n_tier1=3, n_tier2=12, n_tier3=20))
        t2 = generate_topology(TopologyConfig(seed=2, n_tier1=3, n_tier2=12, n_tier3=20))
        assert sorted(t1.links) != sorted(t2.links)

    def test_config_validation(self):
        with pytest.raises(TopologyError):
            generate_topology(TopologyConfig(n_tier1=1))
        with pytest.raises(TopologyError):
            generate_topology(TopologyConfig(multihoming_probs=(0.5, 0.5, 0.5)))
        with pytest.raises(TopologyError):
            generate_topology(TopologyConfig(n_tier2=4, n_sibling_pairs=10))

    def test_loss_rates_in_range(self, small_topo):
        lossy = [l for l in small_topo.links.values() if l.loss_rate > 0]
        assert lossy, "expected some lossy links"
        for link in lossy:
            assert 0.0 < link.loss_rate < 1.0

    def test_latencies_positive(self, small_topo):
        assert all(l.latency_ms > 0 for l in small_topo.links.values())
