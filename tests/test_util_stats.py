"""Unit tests for CDF/statistics helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    Cdf,
    fraction_at_most,
    histogram_bins,
    median,
    percentile,
    summarize,
)

floats = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
)


class TestScalars:
    def test_median(self):
        assert median([1, 2, 3]) == 2
        assert median([1.0, 3.0]) == 2.0

    def test_median_empty(self):
        with pytest.raises(ValueError):
            median([])

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1, 2], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_fraction_at_most(self):
        assert fraction_at_most([1, 2, 3, 4], 2) == 0.5
        assert fraction_at_most([1], 0) == 0.0


class TestCdf:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_at_and_quantile(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(2.0) == 0.5
        assert cdf.at(0.5) == 0.0
        assert cdf.at(10) == 1.0
        assert cdf.quantile(0.5) == 2.0
        assert cdf.quantile(1.0) == 4.0

    def test_quantile_bounds(self):
        cdf = Cdf([1.0])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    @given(floats)
    def test_cdf_monotone(self, values):
        cdf = Cdf(values)
        xs = sorted(values)
        probs = [cdf.at(x) for x in xs]
        assert all(a <= b for a, b in zip(probs, probs[1:]))
        assert cdf.at(max(values)) == 1.0

    @given(floats)
    def test_median_consistency(self, values):
        cdf = Cdf(values)
        assert cdf.at(cdf.median) >= 0.5

    def test_points_cover_range(self):
        cdf = Cdf(list(range(100)))
        pts = cdf.points(max_points=10)
        assert pts[-1][1] == 1.0
        assert all(0 < p <= 1 for _, p in pts)

    def test_render_contains_label(self):
        text = Cdf([1.0, 2.0]).render("latency", unit="ms")
        assert "latency" in text
        assert "p50" in text


class TestAggregates:
    def test_summarize_keys(self):
        result = summarize([1.0, 2.0, 3.0])
        assert result["n"] == 3
        assert result["median"] == 2.0
        assert result["min"] == 1.0 and result["max"] == 3.0

    def test_histogram_fractions_sum_to_one(self):
        bins = histogram_bins([0.1, 0.2, 0.9, 0.95], 0.05, 0.0, 1.0)
        assert abs(sum(frac for _, frac in bins) - 1.0) < 1e-9
        assert len(bins) == 20

    def test_histogram_validates(self):
        with pytest.raises(ValueError):
            histogram_bins([], 0.05, 0, 1)
        with pytest.raises(ValueError):
            histogram_bins([1.0], 0.0, 0, 1)
