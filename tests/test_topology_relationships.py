"""Unit tests for the relationship map and valley-free checking."""

import pytest

from repro.errors import TopologyError
from repro.topology.relationships import Relationship, RelationshipMap


@pytest.fixture
def rels():
    m = RelationshipMap()
    # 1 and 2 are tier-1 peers; 1 provides to 3, 2 provides to 4,
    # 3 and 4 both provide to 5; 3 and 4 are siblings.
    m.set(1, 2, Relationship.PEER)
    m.set(1, 3, Relationship.PROVIDER)
    m.set(2, 4, Relationship.PROVIDER)
    m.set(3, 5, Relationship.PROVIDER)
    m.set(4, 5, Relationship.PROVIDER)
    m.set(3, 4, Relationship.SIBLING)
    return m


class TestBasics:
    def test_inverse_view(self, rels):
        assert rels.get(3, 1) is Relationship.CUSTOMER
        assert rels.get(1, 3) is Relationship.PROVIDER
        assert rels.get(2, 1) is Relationship.PEER
        assert rels.get(4, 3) is Relationship.SIBLING

    def test_self_relationship_rejected(self):
        m = RelationshipMap()
        with pytest.raises(TopologyError):
            m.set(1, 1, Relationship.PEER)

    def test_conflict_rejected(self, rels):
        with pytest.raises(TopologyError):
            rels.set(1, 2, Relationship.PROVIDER)

    def test_idempotent_set(self, rels):
        rels.set(1, 2, Relationship.PEER)  # same value is fine
        assert rels.get(1, 2) is Relationship.PEER

    def test_accessors(self, rels):
        assert rels.customers_of(1) == [3]
        assert rels.providers_of(5) == [3, 4]
        assert rels.peers_of(1) == [2]
        assert rels.siblings_of(3) == [4]
        assert rels.neighbors(3) == [1, 4, 5]
        assert len(rels) == 6

    def test_edges_listed_once(self, rels):
        edges = rels.edges()
        assert len(edges) == 6
        assert all(a < b for a, b, _ in edges)


class TestValleyFree:
    def test_customer_route(self, rels):
        assert rels.is_valley_free([5, 3, 1])  # pure climb
        assert rels.is_valley_free([1, 3, 5])  # pure descent

    def test_peak_with_peer(self, rels):
        assert rels.is_valley_free([5, 3, 1, 2, 4])  # climb, peer, descend

    def test_valley_rejected(self, rels):
        # Descend into 5 then climb out again: a valley.
        assert not rels.is_valley_free([3, 5, 4])

    def test_double_peer_rejected(self, rels):
        rels.set(3, 2, Relationship.PEER)
        assert not rels.is_valley_free([1, 2, 3])  # peer then peer? path 1-2 peer, 2-3 peer
        assert not rels.is_valley_free([5, 3, 2, 1])  # peer at 3-2, then peer 2-1

    def test_sibling_transparent(self, rels):
        assert rels.is_valley_free([5, 3, 4, 2])  # climb, sibling hop, climb

    def test_unknown_adjacency(self, rels):
        assert not rels.is_valley_free([1, 99])

    def test_single_as(self, rels):
        assert rels.is_valley_free([1])

    def test_inverse_enum(self):
        assert Relationship.PROVIDER.inverse() is Relationship.CUSTOMER
        assert Relationship.PEER.inverse() is Relationship.PEER
        assert Relationship.SIBLING.inverse() is Relationship.SIBLING
