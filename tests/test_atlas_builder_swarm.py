"""Tests for the atlas builder pipeline and the swarm simulator."""

import pytest

from repro.atlas.builder import LOSS_STORE_THRESHOLD
from repro.atlas.swarm import SwarmConfig, SwarmResult, simulate_swarm


class TestBuiltAtlas:
    def test_core_datasets_populated(self, atlas):
        counts = atlas.entry_counts()
        assert counts["inter_cluster_links"] > 100
        assert counts["prefix_to_cluster"] > 50
        assert counts["prefix_to_as"] >= counts["prefix_to_cluster"]
        assert counts["as_three_tuples"] > 100
        assert counts["as_degrees"] > 20
        assert counts["provider_mappings"] > 10
        assert counts["relationships"] > 20

    def test_validates(self, atlas):
        atlas.validate()

    def test_loss_entries_above_threshold(self, atlas):
        assert atlas.link_loss, "expected measured lossy links"
        for link, loss in atlas.link_loss.items():
            assert loss >= LOSS_STORE_THRESHOLD
            assert link in atlas.links

    def test_link_latencies_reasonable(self, atlas, topo):
        """Estimated latencies track true link latencies for real links."""
        import numpy as np

        errors = []
        for (a, b), record in atlas.links.items():
            if (a, b) in topo.links:  # cluster ids == pop ids when clean
                errors.append(abs(record.latency_ms - topo.links[(a, b)].latency_ms))
        assert len(errors) > 50
        assert float(np.median(errors)) < 2.0

    def test_loss_estimates_track_truth(self, atlas, topo):
        import numpy as np

        errors = []
        for (a, b), loss in atlas.link_loss.items():
            if (a, b) in topo.links:
                errors.append(abs(loss - topo.links[(a, b)].loss_rate))
        if not errors:
            pytest.skip("no measured losses on clean clusters")
        assert float(np.median(errors)) < 0.05

    def test_three_tuples_commutative(self, atlas):
        for (a, b, c) in atlas.three_tuples:
            assert (c, b, a) in atlas.three_tuples

    def test_preferences_reference_real_ases(self, atlas):
        ases = set(atlas.as_degrees)
        for (a, b, c) in atlas.preferences:
            assert a in ases and b in ases and c in ases

    def test_provider_sets_subset_of_upstreams(self, atlas):
        for asn, providers in atlas.providers.items():
            upstream = atlas.upstreams.get(asn, frozenset())
            assert providers <= upstream

    def test_prefix_providers_refine(self, atlas):
        for prefix_index, providers in atlas.prefix_providers.items():
            origin = atlas.prefix_to_as.get(prefix_index)
            assert origin is not None
            as_level = atlas.providers.get(origin)
            assert as_level is None or providers != as_level


class TestSwarm:
    def test_completes(self):
        result = simulate_swarm(SwarmConfig(n_peers=20, file_bytes=500_000, seed=1))
        assert result.completed_peers == 20
        assert result.rounds < 500

    def test_seed_serves_minority(self):
        result = simulate_swarm(SwarmConfig(n_peers=40, file_bytes=1_000_000, seed=2))
        assert result.seed_byte_fraction < 0.5
        assert result.chunks_from_peers > result.chunks_from_seed

    def test_total_chunks_conserved(self):
        cfg = SwarmConfig(n_peers=10, file_bytes=300_000, seed=3)
        result = simulate_swarm(cfg)
        expected = result.n_chunks * cfg.n_peers
        assert result.chunks_from_seed + result.chunks_from_peers == expected

    def test_deterministic(self):
        cfg = SwarmConfig(n_peers=12, file_bytes=200_000, seed=4)
        r1, r2 = simulate_swarm(cfg), simulate_swarm(cfg)
        assert r1.rounds == r2.rounds
        assert r1.chunks_from_seed == r2.chunks_from_seed

    def test_single_chunk_file(self):
        result = simulate_swarm(SwarmConfig(n_peers=5, file_bytes=10, seed=5))
        assert result.n_chunks == 1
        assert result.completed_peers == 5

    def test_empty_result_fraction(self):
        assert SwarmResult(0, 0, 0, 0, 0).seed_byte_fraction == 0.0
