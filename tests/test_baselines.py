"""Tests for the comparison systems (composition, RouteScope, Vivaldi, OASIS)."""

import math

import numpy as np
import pytest

from repro.baselines.composition import PathCompositionPredictor
from repro.baselines.oasis import OasisSelector
from repro.baselines.routescope import RouteScopePredictor
from repro.baselines.vivaldi import VivaldiConfig, VivaldiSystem
from repro.errors import UnknownEndpointError

from helpers import cluster_of, prefix_of, toy_atlas


class TestComposition:
    def _predictor(self, improved=False):
        atlas = toy_atlas()
        predictor = PathCompositionPredictor(atlas, improved=improved)
        # Measured path from AS3's prefix through 1, 2, into 4's prefix.
        predictor.add_measured_path(
            [(cluster_of(3), 2.0), (cluster_of(1), 22.0), (cluster_of(2), 42.0),
             (cluster_of(4), 62.0)],
            src_prefix=prefix_of(3),
            dst_prefix=prefix_of(4),
            reached=True,
        )
        # Vantage path from AS1 down to AS5 via 3.
        predictor.add_measured_path(
            [(cluster_of(1), 2.0), (cluster_of(3), 22.0), (cluster_of(5), 42.0)],
            src_prefix=prefix_of(1),
            dst_prefix=prefix_of(5),
            reached=True,
        )
        return predictor

    def test_direct_path_reused(self):
        pred = self._predictor()
        path = pred.predict(prefix_of(3), prefix_of(4))
        assert path.as_path == (3, 1, 2, 4)

    def test_composition_at_intersection(self):
        # 3 -> 5: own path reaches cluster 1; vantage path 1 -> 3 -> 5
        # intersects at cluster 1 (and at 3).
        pred = self._predictor()
        path = pred.predict(prefix_of(3), prefix_of(5))
        assert path.as_path[0] == 3
        assert path.as_path[-1] == 5

    def test_unknown_endpoint(self):
        pred = self._predictor()
        with pytest.raises(UnknownEndpointError):
            pred.predict(prefix_of(3), 999_999)

    def test_passthrough_source_segments(self):
        # Predicting from AS1 (no own paths) uses the suffix of the stored
        # path that passes through cluster_of(1).
        pred = self._predictor()
        path = pred.predict(prefix_of(1), prefix_of(5))
        assert path.as_path == (1, 3, 5)

    def test_size_accounting_grows(self):
        pred = self._predictor()
        before = pred.serialized_size_bytes()
        pred.add_measured_path(
            [(cluster_of(2), 1.0), (cluster_of(4), 21.0)],
            src_prefix=prefix_of(2),
            dst_prefix=prefix_of(4),
            reached=True,
        )
        assert pred.serialized_size_bytes() > before
        assert pred.n_paths == 3

    def test_improved_variant_checks_tuples(self):
        # Every splice for 3 -> 4 crosses AS1/AS2; with high degrees and no
        # observed 3-tuples, the improved variant must reject them all.
        pred = self._predictor(improved=True)
        pred.atlas.as_degrees[1] = 10
        pred.atlas.as_degrees[2] = 10
        pred.atlas.three_tuples.clear()
        assert pred.predict_or_none(prefix_of(3), prefix_of(4)) is None
        # The plain variant still answers.
        plain = self._predictor(improved=False)
        assert plain.predict_or_none(prefix_of(3), prefix_of(4)) is not None


class TestRouteScope:
    def test_shortest_valley_free(self):
        atlas = toy_atlas()
        rs = RouteScopePredictor(atlas)
        paths = rs.shortest_valley_free_paths(3, 4)
        assert paths == [(3, 1, 2, 4)]

    def test_no_valley(self):
        atlas = toy_atlas()
        rs = RouteScopePredictor(atlas)
        # 3 -> 5 -> 4 would be a valley; the only valley-free 3 -> 4 route
        # goes over the peers. For 3 -> 5 the direct descent is fine.
        assert rs.shortest_valley_free_paths(3, 5) == [(3, 5)]

    def test_predict_maps_prefixes(self):
        atlas = toy_atlas()
        rs = RouteScopePredictor(atlas)
        path = rs.predict_as_path(prefix_of(3), prefix_of(4))
        assert path == (3, 1, 2, 4)

    def test_same_as(self):
        atlas = toy_atlas()
        rs = RouteScopePredictor(atlas)
        assert rs.shortest_valley_free_paths(3, 3) == [(3,)]

    def test_unknown_prefix_none(self):
        atlas = toy_atlas()
        rs = RouteScopePredictor(atlas)
        assert rs.predict_as_path(999_999, prefix_of(4)) is None

    def test_deterministic_choice(self):
        atlas = toy_atlas()
        rs = RouteScopePredictor(atlas, seed=4)
        p1 = rs.predict_as_path(prefix_of(3), prefix_of(4))
        p2 = rs.predict_as_path(prefix_of(3), prefix_of(4))
        assert p1 == p2


class TestVivaldi:
    def test_converges_on_euclidean_metric(self):
        """On a genuinely embeddable metric, Vivaldi should get close."""
        rng = np.random.default_rng(1)
        points = {i: rng.uniform(0, 100, size=2) for i in range(24)}

        def rtt(a, b):
            return float(np.linalg.norm(points[a] - points[b])) + 2.0

        system = VivaldiSystem(VivaldiConfig(rounds=150, seed=1))
        nodes = sorted(points)
        system.train(nodes, rtt)
        errors = []
        for a in nodes:
            for b in nodes:
                if a < b:
                    errors.append(abs(system.distance_ms(a, b) - rtt(a, b)) / rtt(a, b))
        assert float(np.median(errors)) < 0.35

    def test_symmetric_estimates(self):
        system = VivaldiSystem()
        system.observe(1, 2, 50.0)
        assert system.distance_ms(1, 2) == pytest.approx(system.distance_ms(2, 1))

    def test_ignores_nonpositive_rtt(self):
        system = VivaldiSystem()
        before = system.distance_ms(1, 2)
        system.observe(1, 2, 0.0)
        assert system.distance_ms(1, 2) == before

    def test_error_tracking(self):
        system = VivaldiSystem()
        nodes = [1, 2, 3]
        system.train(nodes, lambda a, b: 10.0)
        assert 0 < system.mean_error(nodes) <= 1.0


class TestOasis:
    def test_geo_ranking(self):
        oasis = OasisSelector(geolocation_error=0.0, seed=1)
        oasis.add_node(0, (0.0, 0.0))
        oasis.add_node(1, (0.1, 0.0))
        oasis.add_node(2, (0.9, 0.0))
        assert oasis.rank(0, [1, 2]) == [1, 2]
        assert oasis.select(0, [2, 1]) == 1

    def test_cached_probe_overrides_geo(self):
        oasis = OasisSelector(geolocation_error=0.0, probe_staleness_ms=0.0, seed=1)
        oasis.add_node(0, (0.0, 0.0))
        oasis.add_node(1, (0.1, 0.0))
        oasis.add_node(2, (0.9, 0.0))
        oasis.record_probe(0, 2, 1.0)  # cached probe says 2 is very close
        assert oasis.select(0, [1, 2]) == 2

    def test_unregistered_raises(self):
        oasis = OasisSelector()
        with pytest.raises(KeyError):
            oasis.estimated_rtt_ms(1, 2)

    def test_empty_replicas(self):
        oasis = OasisSelector()
        with pytest.raises(ValueError):
            oasis.select(1, [])

    def test_geo_estimate_scales_with_distance(self):
        oasis = OasisSelector(geolocation_error=0.0, latency_scale_ms=50.0)
        oasis.add_node(0, (0.0, 0.0))
        oasis.add_node(1, (1.0, 0.0))
        assert oasis.estimated_rtt_ms(0, 1) == pytest.approx(100.0)
