"""Consistent-hash ring: determinism, balance, minimal disruption."""

from __future__ import annotations

import pytest

from repro.serve import HashRing

KEYS = list(range(0, 5000, 7))


class TestDeterminism:
    def test_same_inputs_same_routing(self):
        a = HashRing(range(4)).assignment(KEYS)
        b = HashRing(range(4)).assignment(KEYS)
        assert a == b

    def test_insertion_order_irrelevant(self):
        a = HashRing([0, 1, 2, 3]).assignment(KEYS)
        b = HashRing([3, 1, 0, 2]).assignment(KEYS)
        assert a == b

    def test_routing_stable_across_interpreter_runs(self):
        # Ring points come from blake2b digests, which are
        # runtime-independent — unlike builtin hash(), whose
        # PYTHONHASHSEED randomization would scatter destinations onto
        # different shards every restart. A subprocess with a different
        # hash seed must produce the identical routing table.
        import json
        import subprocess
        import sys
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src"
        script = (
            "import json, sys; sys.path.insert(0, sys.argv[1]);"
            "from repro.serve import HashRing;"
            "ring = HashRing(range(4));"
            "print(json.dumps([ring.shard_for(k) for k in range(0, 500, 7)]))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script, str(src)],
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": "12345"},
            check=True,
        )
        ring = HashRing(range(4))
        assert json.loads(out.stdout) == [
            ring.shard_for(k) for k in range(0, 500, 7)
        ]

    def test_salt_changes_routing(self):
        a = HashRing(range(4), salt=b"a").assignment(KEYS)
        b = HashRing(range(4), salt=b"b").assignment(KEYS)
        assert a != b


class TestShape:
    def test_all_shards_get_load(self):
        counts = {s: 0 for s in range(4)}
        for shard in HashRing(range(4)).assignment(KEYS).values():
            counts[shard] += 1
        assert all(count > 0 for count in counts.values())
        # vnode smoothing: no shard should dominate the keyspace
        assert max(counts.values()) < 2.5 * min(counts.values())

    def test_remove_only_remaps_owned_keys(self):
        ring = HashRing(range(4))
        before = ring.assignment(KEYS)
        ring.remove_shard(2)
        after = ring.assignment(KEYS)
        for key, shard in before.items():
            if shard != 2:
                assert after[key] == shard, "non-owned key moved on removal"
            else:
                assert after[key] != 2
        assert any(shard == 2 for shard in before.values())

    def test_add_back_restores_routing(self):
        ring = HashRing(range(4))
        before = ring.assignment(KEYS)
        ring.remove_shard(1)
        ring.add_shard(1)
        assert ring.assignment(KEYS) == before

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(range(2), vnodes=0)
        ring = HashRing(range(2))
        with pytest.raises(ValueError):
            ring.add_shard(0)
        with pytest.raises(ValueError):
            ring.remove_shard(9)
        ring.remove_shard(1)
        with pytest.raises(ValueError):
            ring.remove_shard(0)
