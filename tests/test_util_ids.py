"""Unit tests for IP/prefix arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.ids import (
    PREFIX_SIZE,
    PrefixId,
    format_ip,
    ip_in_prefix,
    parse_ip,
    prefix_of_ip,
    random_ip_in_prefix,
)
from repro.util.rng import derive_rng


class TestParseFormat:
    def test_parse_known(self):
        assert parse_ip("0.0.0.0") == 0
        assert parse_ip("0.0.1.0") == 256
        assert parse_ip("255.255.255.255") == 2**32 - 1
        assert parse_ip("10.1.2.3") == (10 << 24) | (1 << 16) | (2 << 8) | 3

    def test_format_known(self):
        assert format_ip(0) == "0.0.0.0"
        assert format_ip(2**32 - 1) == "255.255.255.255"
        assert format_ip(256) == "0.0.1.0"

    @pytest.mark.parametrize(
        "bad", ["", "1.2.3", "1.2.3.4.5", "a.b.c.d", "256.0.0.1", "-1.0.0.0"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_ip(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ip(-1)
        with pytest.raises(ValueError):
            format_ip(2**32)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, ip):
        assert parse_ip(format_ip(ip)) == ip


class TestPrefixes:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_prefix_contains_its_ips(self, ip):
        prefix = prefix_of_ip(ip)
        assert ip_in_prefix(ip, prefix)
        assert prefix.base_ip <= ip < prefix.base_ip + PREFIX_SIZE

    def test_prefix_base(self):
        assert PrefixId(0).base_ip == 0
        assert PrefixId(7).base_ip == 7 * PREFIX_SIZE

    def test_prefix_of_ip_bounds(self):
        with pytest.raises(ValueError):
            prefix_of_ip(-5)

    def test_random_ip_avoids_network_and_broadcast(self):
        rng = derive_rng(1, "test.randip")
        prefix = PrefixId(42)
        for _ in range(200):
            ip = random_ip_in_prefix(prefix, rng)
            assert ip_in_prefix(ip, prefix)
            assert ip != prefix.base_ip
            assert ip != prefix.base_ip + PREFIX_SIZE - 1

    def test_str_form(self):
        assert str(PrefixId(1)) == "0.0.1.0/24"
