"""Tests for alias resolution, PoP clustering, and client extension."""

import pytest

from repro.measurement.aliases import resolve_aliases
from repro.measurement.clustering import (
    CLIENT_CLUSTER_BASE,
    SINGLETON_CLUSTER_BASE,
    build_cluster_map,
    cluster_pop_map,
)
from repro.measurement.traceroute import TracerouteSimulator
from repro.measurement.vantage import select_vantage_points
from repro.routing.forwarding import ForwardingEngine
from repro.topology import TopologyConfig, generate_topology
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def setup():
    topo = generate_topology(TopologyConfig(seed=61, n_tier1=4, n_tier2=12, n_tier3=30))
    engine = ForwardingEngine(topo)
    vps = select_vantage_points(topo, 8, seed=1)
    sim = TracerouteSimulator(topo, engine, derive_rng(1, "test.cl"))
    targets = sorted(p.index for p in topo.prefixes)
    traces = sim.campaign(vps, targets)
    ips = {ip for t in traces for ip in t.responsive_ips if topo.has_interface(ip)}
    return topo, engine, vps, sim, traces, ips


class TestAliases:
    def test_perfect_resolution(self, setup):
        topo, _, _, _, _, ips = setup
        res = resolve_aliases(topo, ips, miss_prob=0.0, false_merge_prob=0.0)
        for ip in ips:
            assert res.inferred_router[ip] == topo.interface(ip).router_id

    def test_misses_create_singletons(self, setup):
        topo, _, _, _, _, ips = setup
        res = resolve_aliases(topo, ips, miss_prob=1.0, false_merge_prob=0.0)
        routers = [res.inferred_router[ip] for ip in ips]
        assert len(set(routers)) == len(routers)  # all distinct singletons
        assert all(r >= (1 << 30) for r in routers)

    def test_same_router_accessor(self, setup):
        topo, _, _, _, _, ips = setup
        res = resolve_aliases(topo, ips, miss_prob=0.0, false_merge_prob=0.0)
        by_router = {}
        for ip in ips:
            by_router.setdefault(topo.interface(ip).router_id, []).append(ip)
        multi = [v for v in by_router.values() if len(v) >= 2]
        if multi:
            a, b = multi[0][:2]
            assert res.same_router(a, b)

    def test_deterministic(self, setup):
        topo, _, _, _, _, ips = setup
        r1 = resolve_aliases(topo, ips, seed=9)
        r2 = resolve_aliases(topo, ips, seed=9)
        assert r1.inferred_router == r2.inferred_router


class TestClusterMap:
    def test_perfect_clustering_matches_pops(self, setup):
        topo, _, _, _, traces, ips = setup
        res = resolve_aliases(topo, ips, miss_prob=0.0, false_merge_prob=0.0)
        cmap = build_cluster_map(topo, res, traces, clustering_accuracy=1.0)
        for ip in ips:
            assert cmap.interface_cluster[ip] == topo.interface(ip).pop_id
            assert cmap.cluster_asn[cmap.interface_cluster[ip]] == (
                topo.pops[topo.interface(ip).pop_id].asn
            )

    def test_noisy_clustering_creates_singletons(self, setup):
        topo, _, _, _, traces, ips = setup
        res = resolve_aliases(topo, ips, miss_prob=0.0, false_merge_prob=0.0)
        cmap = build_cluster_map(topo, res, traces, clustering_accuracy=0.5)
        singletons = [
            c for c in set(cmap.interface_cluster.values())
            if c >= SINGLETON_CLUSTER_BASE
        ]
        assert singletons

    def test_prefix_clusters_point_at_attachments(self, setup):
        topo, _, _, _, traces, ips = setup
        res = resolve_aliases(topo, ips, miss_prob=0.0, false_merge_prob=0.0)
        cmap = build_cluster_map(topo, res, traces, clustering_accuracy=1.0)
        correct = total = 0
        for prefix_index, cluster in cmap.prefix_cluster.items():
            from repro.util.ids import PrefixId

            total += 1
            if cluster == topo.prefixes[PrefixId(prefix_index)].attachment_pop:
                correct += 1
        assert total > 0
        assert correct / total > 0.9

    def test_segments_split_at_anonymous_hops(self, setup):
        topo, _, vps, sim, traces, ips = setup
        res = resolve_aliases(topo, ips, miss_prob=0.0, false_merge_prob=0.0)
        cmap = build_cluster_map(topo, res, traces, clustering_accuracy=1.0)
        found_split = False
        for trace in traces:
            has_anon = any(
                h.ip is None for h in trace.hops[:-1] if True
            )
            segments = cmap.cluster_segments_with_rtts(trace)
            joined = [c for seg in segments for c, _ in seg]
            whole = [c for c, _ in cmap.cluster_path_with_rtts(trace)]
            if has_anon and len(segments) > 1:
                found_split = True
                # Segments never fabricate adjacencies the whole path lacks.
                for seg in segments:
                    seg_clusters = [c for c, _ in seg]
                    for a, b in zip(seg_clusters, seg_clusters[1:]):
                        i = whole.index(a)
                        assert whole[i + 1] == b
        assert found_split

    def test_clone_isolation(self, setup):
        topo, _, _, _, traces, ips = setup
        res = resolve_aliases(topo, ips)
        cmap = build_cluster_map(topo, res, traces)
        clone = cmap.clone()
        clone.interface_cluster[999999] = 1
        assert 999999 not in cmap.interface_cluster

    def test_client_extension(self, setup):
        topo, engine, vps, _, traces, ips = setup
        res = resolve_aliases(topo, ips)
        cmap = build_cluster_map(topo, res, traces)
        sim = TracerouteSimulator(topo, engine, derive_rng(7, "client"))
        # Client at an arbitrary prefix traceroutes outward.
        client_vp = select_vantage_points(topo, 12, kind="dimes", seed=5)[-1]
        client_traces = [
            sim.trace_to_prefix(client_vp, t)
            for t in sorted(p.index for p in topo.prefixes)[:20]
            if t != client_vp.prefix_index
        ]
        clone = cmap.clone()
        prefix_to_as = topo.infra_prefix_origins()
        created = clone.extend_with_client_traces(client_traces, prefix_to_as)
        assert created > 0
        for ip, cluster in clone.interface_cluster.items():
            if cluster >= CLIENT_CLUSTER_BASE:
                assert clone.cluster_asn[cluster] == topo.pops[
                    topo.interface(ip).pop_id
                ].asn

    def test_cluster_pop_map_majority(self, setup):
        topo, _, _, _, traces, ips = setup
        res = resolve_aliases(topo, ips, miss_prob=0.0, false_merge_prob=0.0)
        cmap = build_cluster_map(topo, res, traces, clustering_accuracy=1.0)
        pop_map = cluster_pop_map(topo, cmap)
        for cluster, pop in pop_map.items():
            assert cluster == pop  # perfect clustering: cluster id is pop id
