"""Randomized property suite: kernel-vs-spec bit equality + warm-start.

Two contracts are fuzzed over ≥50 random atlases:

1. **Kernel equivalence.** The vectorized search kernel
   (:mod:`repro.core.search`, both the ``_run_small`` immediate loop
   and the ``_run_buckets`` phase-major bucket engine) must produce
   per-destination states **bit-for-bit identical** to the scalar spec
   loop (``INanoPredictor._search_compiled``) for every destination,
   across the ablation configs — including provider-gated searches and
   FROM_SRC-merged graphs. Latencies are drawn from a tiny value set so
   exact cost ties (the counter tie-breaking path) occur constantly.

2. **Warm-start repair equivalence.** After every runtime delta
   (value-only, structural, and node-renumbering days), each cached
   per-destination search that survived repair (or was prewarmed) must
   equal a from-scratch search over the post-delta atlas. The suite
   also asserts the repair layer actually exercised each class
   (entries reused, repaired, prewarmed) so the checks can't pass
   vacuously.
"""

from __future__ import annotations

import copy
import random

import numpy as np
import pytest

from repro.atlas.delta import compute_delta
from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.relationships import (
    REL_CUSTOMER,
    REL_PEER,
    REL_PROVIDER,
    REL_SIBLING,
)
from repro.core import search
from repro.core.compiled import CompiledGraph
from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.runtime import AtlasRuntime

N_ATLASES = 52
#: tie-prone latency palette — exact float ties exercise the
#: emission-order/counter tie-breaking contract on almost every search
LATENCIES = (1.0, 2.0, 3.0, 5.0, 8.0)

CONFIGS = {
    "GRAPH": PredictorConfig.graph_baseline(),
    "iNano": PredictorConfig.inano(),
    "prefs": PredictorConfig(
        use_from_src=False,
        use_three_tuples=False,
        use_preferences=True,
        use_providers=False,
    ),
    "tuples+providers": PredictorConfig(
        use_from_src=False,
        use_three_tuples=True,
        use_preferences=False,
        use_providers=True,
        tuple_degree_threshold=2,
    ),
}


def random_atlas(rng: random.Random) -> Atlas:
    atlas = Atlas(day=0)
    n_as = rng.randint(4, 9)
    asns = rng.sample(range(1, 60), n_as)
    cluster_id = 1
    clusters_of: dict[int, list[int]] = {}
    for asn in asns:
        k = rng.randint(1, 2)
        clusters_of[asn] = list(range(cluster_id, cluster_id + k))
        for c in clusters_of[asn]:
            atlas.cluster_to_as[c] = asn
        cluster_id += k
    clusters = sorted(atlas.cluster_to_as)
    # prefixes (one per cluster, a couple of extras)
    for c in clusters:
        atlas.prefix_to_cluster[c * 100] = c
        atlas.prefix_to_as[c * 100] = atlas.cluster_to_as[c]
    # relationships over AS pairs (some pairs intentionally unknown)
    rels = (REL_PROVIDER, REL_CUSTOMER, REL_PEER, REL_SIBLING, None)
    inverse = {
        REL_PROVIDER: REL_CUSTOMER,
        REL_CUSTOMER: REL_PROVIDER,
        REL_PEER: REL_PEER,
        REL_SIBLING: REL_SIBLING,
    }
    for i, a in enumerate(asns):
        for b in asns[i + 1:]:
            rel = rng.choice(rels)
            if rel is not None:
                atlas.relationship_codes[(a, b)] = rel
                atlas.relationship_codes[(b, a)] = inverse[rel]
                if rel == REL_SIBLING and rng.random() < 0.4:
                    atlas.late_exit_pairs.add(frozenset((a, b)))
    # links: intra-AS chains + random inter-cluster links, sometimes
    # one-directional (directed-plane coverage)
    def add_link(x, y):
        atlas.links[(x, y)] = LinkRecord(latency_ms=rng.choice(LATENCIES))
        if rng.random() < 0.8:
            atlas.links[(y, x)] = LinkRecord(latency_ms=rng.choice(LATENCIES))
    for asn in asns:
        cs = clusters_of[asn]
        for x, y in zip(cs, cs[1:]):
            add_link(x, y)
    n_links = rng.randint(n_as, 3 * n_as)
    for _ in range(n_links):
        x, y = rng.sample(clusters, 2)
        if (x, y) not in atlas.links:
            add_link(x, y)
    # an unmappable cluster (compiler skips its links: zero-edge spans)
    atlas.links[(clusters[0], 900 + rng.randrange(50))] = LinkRecord(
        latency_ms=5.0
    )
    for link in rng.sample(sorted(atlas.links), k=min(3, len(atlas.links))):
        atlas.link_loss[link] = round(rng.uniform(0.01, 0.2), 3)
    atlas.link_loss = {
        k: v for k, v in atlas.link_loss.items() if k in atlas.links
    }
    atlas.as_degrees = {a: rng.randint(0, 8) for a in asns}
    # three-tuples: random triples, plus guaranteed witnesses for some
    # real adjacencies so tuple-gated searches still reach things
    for _ in range(rng.randint(4, 16)):
        a, b, c = rng.sample(asns, 3)
        atlas.three_tuples.add((a, b, c))
        if rng.random() < 0.5:
            atlas.three_tuples.add((c, b, a))
    # preferences: random (sometimes mutually contradictory — the spec's
    # first-lookup-wins order must be reproduced exactly)
    for _ in range(rng.randint(2, 10)):
        a, x, y = rng.sample(asns, 3)
        atlas.preferences.add((a, x, y))
        if rng.random() < 0.2:
            atlas.preferences.add((a, y, x))
    for asn in rng.sample(asns, k=rng.randint(1, n_as // 2 + 1)):
        others = [a for a in asns if a != asn]
        atlas.providers[asn] = frozenset(
            rng.sample(others, k=rng.randint(1, min(3, len(others))))
        )
    atlas.validate()
    return atlas


def assert_states_equal(got, want, label):
    assert got.root_id == want.root_id, label
    assert np.array_equal(np.asarray(got.phase), np.asarray(want.phase)), label
    assert np.array_equal(np.asarray(got.eff), np.asarray(want.eff)), label
    assert np.array_equal(np.asarray(got.parent), np.asarray(want.parent)), label
    assert np.array_equal(np.asarray(got.nxt), np.asarray(want.nxt)), label
    # exact float identity (bit pattern), not just ==
    ga = np.asarray(got.exitc, dtype=np.float64)
    wa = np.asarray(want.exitc, dtype=np.float64)
    assert np.array_equal(ga.view(np.int64), wa.view(np.int64)), label


def all_destinations(atlas):
    return sorted({c for ab in atlas.links for c in ab})


class TestKernelEquivalence:
    @pytest.mark.parametrize("seed", range(N_ATLASES))
    def test_random_atlas_bit_equality(self, seed, monkeypatch):
        rng = random.Random(0xBEE5 + seed)
        atlas = random_atlas(rng)
        # odd seeds force the bucket engine so both kernel modes are
        # fuzzed; even seeds take the natural (small-graph) path
        if seed % 2:
            monkeypatch.setattr(search, "_VECTOR_GRAPH_MIN", 0)
            monkeypatch.setattr(search, "_VECTOR_MIN", rng.choice((0, 4)))
        for name, config in CONFIGS.items():
            vec = INanoPredictor(atlas, config, kernel="vector")
            spec = INanoPredictor(atlas, config, kernel="scalar")
            graphs = [(vec.graph, spec.graph)]
            if config.use_from_src:
                graphs.append((vec.fallback_graph, spec.fallback_graph))
            for dst_cluster in all_destinations(atlas):
                prefix = dst_cluster * 100
                providers = vec._provider_gate(prefix)
                for gv, gs in graphs:
                    got = vec._run_search(gv, dst_cluster, providers)
                    want = spec._search_compiled(gs, dst_cluster, providers)
                    assert_states_equal(
                        got, want, (seed, name, dst_cluster)
                    )

    @pytest.mark.parametrize("seed", range(0, N_ATLASES, 7))
    def test_from_src_merged_graphs(self, seed):
        rng = random.Random(0xF00D + seed)
        atlas = random_atlas(rng)
        links = sorted(atlas.links)
        from_src = {
            link: LinkRecord(latency_ms=rng.choice(LATENCIES))
            for link in rng.sample(links, k=min(6, len(links)))
        }
        config = PredictorConfig.inano()
        vec = INanoPredictor(
            atlas, config, from_src_links=from_src, kernel="vector"
        )
        spec = INanoPredictor(
            atlas, config, from_src_links=from_src, kernel="scalar"
        )
        assert vec.graph.has_from_src
        for dst_cluster in all_destinations(atlas):
            prefix = dst_cluster * 100
            providers = vec._provider_gate(prefix)
            got = vec._run_search(vec.graph, dst_cluster, providers)
            want = spec._search_compiled(spec.graph, dst_cluster, providers)
            assert_states_equal(got, want, (seed, "merged", dst_cluster))

    def test_predictions_match_legacy_engine(self):
        """End-to-end: kernel predictions equal the legacy dict engine."""
        rng = random.Random(0x1E6)
        atlas = random_atlas(rng)
        prefixes = sorted(atlas.prefix_to_cluster)
        for config in (PredictorConfig.inano(), PredictorConfig.graph_baseline()):
            vec = INanoPredictor(atlas, config, kernel="vector")
            legacy = INanoPredictor(atlas, config, engine="legacy")
            for src in prefixes[::2]:
                for dst in prefixes[1::2]:
                    assert vec.predict_or_none(src, dst) == \
                        legacy.predict_or_none(src, dst), (src, dst)


# -- warm-start repair ------------------------------------------------------


def _perturb_values(atlas, rng):
    """Latency/loss/tuple churn only: a value-only patch day."""
    links = sorted(atlas.links)
    for link in rng.sample(links, k=max(1, len(links) // 4)):
        atlas.links[link] = LinkRecord(latency_ms=rng.choice(LATENCIES))
    for link in rng.sample(links, k=2):
        atlas.link_loss[link] = round(rng.uniform(0.01, 0.3), 3)
    if atlas.three_tuples and rng.random() < 0.8:
        atlas.three_tuples.discard(sorted(atlas.three_tuples)[0])
    asns = sorted(atlas.as_degrees)
    if len(asns) >= 3:
        atlas.three_tuples.add(tuple(rng.sample(asns, 3)))


def _perturb_structural(atlas, rng):
    """Add/remove links without disturbing node first-appearance."""
    links = sorted(atlas.links)
    # drop a link from the back half (front links pin node appearance)
    victim = links[len(links) // 2 + rng.randrange(len(links) // 2)]
    del atlas.links[victim]
    atlas.link_loss.pop(victim, None)
    clusters = sorted({c for ab in atlas.links for c in ab})
    for _ in range(2):
        x, y = rng.sample(clusters, 2)
        if (x, y) not in atlas.links:
            atlas.links[(x, y)] = LinkRecord(latency_ms=rng.choice(LATENCIES))


def _perturb_renumber(atlas, rng):
    """Remove the very first link: first-appearance order shifts."""
    first = next(iter(atlas.links))
    del atlas.links[first]
    atlas.link_loss.pop(first, None)


class TestWarmStartRepair:
    @pytest.mark.parametrize("seed", range(0, N_ATLASES, 3))
    def test_repair_matches_fresh_search(self, seed):
        rng = random.Random(0xCAFE + seed)
        base = random_atlas(rng)
        runtime = AtlasRuntime(copy.deepcopy(base))
        runtime.pool.prewarm_max = 3
        configs = [PredictorConfig.inano(), CONFIGS["tuples+providers"]]
        predictors = [runtime.pool.predictor(c) for c in configs]
        totals = {"reused": 0, "repaired": 0, "dirty": 0, "prewarmed": 0}

        current = copy.deepcopy(base)
        perturbations = [
            _perturb_values,
            _perturb_structural,
            _perturb_values,
            _perturb_renumber,
        ]
        for day, perturb in enumerate(perturbations):
            # populate the caches (cold searches against every plane)
            prefixes = sorted(runtime.atlas.prefix_to_cluster)
            for predictor in predictors:
                for src, dst in zip(prefixes, prefixes[1:] + prefixes[:1]):
                    predictor.predict_or_none(src, dst)
            nxt = copy.deepcopy(current)
            nxt.day = day + 1
            perturb(nxt, rng)
            report = runtime.apply_delta(compute_delta(current, nxt))
            current = nxt
            for key in totals:
                totals[key] += report.cache.get(key, 0)
            # every live cache entry must equal a from-scratch search
            for config, predictor in zip(configs, predictors):
                fresh = INanoPredictor(
                    copy.deepcopy(runtime.atlas), config, kernel="scalar"
                )
                for name, graph in (
                    ("directed", runtime.directed_graph()),
                    ("closed", runtime.closed_graph()),
                ):
                    version = graph.version
                    ref = CompiledGraph.from_atlas(
                        runtime.atlas, closed=(name == "closed")
                    )
                    for key in list(predictor._search_cache):
                        if key[0] != version:
                            continue
                        got = predictor._search_cache[key]
                        want = fresh._search_compiled(ref, key[1], key[2])
                        assert_states_equal(
                            got, want, (seed, day, name, key[1])
                        )
        # the suite must actually exercise every repair class
        assert totals["dirty"] > 0, totals
        assert totals["prewarmed"] > 0, totals

    def test_repair_classes_all_hit_across_suite(self):
        """Aggregated over several seeds, reuse AND repair must occur
        (otherwise the equality checks above pass vacuously)."""
        totals = {"reused": 0, "repaired": 0, "dirty": 0, "prewarmed": 0}
        for seed in range(10):
            rng = random.Random(0xD15C + seed)
            base = random_atlas(rng)
            runtime = AtlasRuntime(copy.deepcopy(base))
            predictor = runtime.pool.predictor(PredictorConfig.inano())
            prefixes = sorted(runtime.atlas.prefix_to_cluster)
            current = copy.deepcopy(base)
            for day, perturb in enumerate(
                (_perturb_values, _perturb_structural)
            ):
                for src, dst in zip(prefixes, prefixes[1:] + prefixes[:1]):
                    predictor.predict_or_none(src, dst)
                nxt = copy.deepcopy(current)
                nxt.day = day + 1
                perturb(nxt, rng)
                report = runtime.apply_delta(compute_delta(current, nxt))
                current = nxt
                for key in totals:
                    totals[key] += report.cache.get(key, 0)
        assert totals["reused"] > 0, totals
        assert totals["repaired"] > 0, totals
        assert totals["prewarmed"] > 0, totals

    @pytest.mark.parametrize("seed", range(0, N_ATLASES, 4))
    def test_replay_repair_interleaved_days(self, seed, monkeypatch):
        """Forced bucket engine + journaled pooled state: value-only
        days repair touched cached searches in place (bounded
        re-relaxation replay), structural days remap or fall back, and
        every surviving entry stays bit-for-bit equal to a fresh scalar
        search over the post-delta atlas."""
        monkeypatch.setattr(search, "_VECTOR_GRAPH_MIN", 0)
        if seed % 8:
            monkeypatch.setattr(search, "_VECTOR_MIN", 4)
            monkeypatch.setattr(search, "_CHUNK_MIN", 2)
        rng = random.Random(0x5EED + seed)
        base = random_atlas(rng)
        runtime = AtlasRuntime(copy.deepcopy(base))
        runtime.pool.prewarm_max = 3
        configs = [PredictorConfig.inano(), CONFIGS["tuples+providers"]]
        predictors = [runtime.pool.predictor(c) for c in configs]
        totals = {"reused": 0, "repaired": 0, "replayed": 0, "dirty": 0}

        current = copy.deepcopy(base)
        perturbations = [
            _perturb_values,
            _perturb_structural,
            _perturb_values,
            _perturb_values,
        ]
        for day, perturb in enumerate(perturbations):
            prefixes = sorted(runtime.atlas.prefix_to_cluster)
            for predictor in predictors:
                for src, dst in zip(prefixes, prefixes[1:] + prefixes[:1]):
                    predictor.predict_or_none(src, dst)
            nxt = copy.deepcopy(current)
            nxt.day = day + 1
            perturb(nxt, rng)
            report = runtime.apply_delta(compute_delta(current, nxt))
            current = nxt
            for key in totals:
                totals[key] += report.cache.get(key, 0)
            for config, predictor in zip(configs, predictors):
                fresh = INanoPredictor(
                    copy.deepcopy(runtime.atlas), config, kernel="scalar"
                )
                for name, graph in (
                    ("directed", runtime.directed_graph()),
                    ("closed", runtime.closed_graph()),
                ):
                    version = graph.version
                    ref = CompiledGraph.from_atlas(
                        runtime.atlas, closed=(name == "closed")
                    )
                    for key in list(predictor._search_cache):
                        if key[0] != version:
                            continue
                        got = predictor._search_cache[key]
                        want = fresh._search_compiled(ref, key[1], key[2])
                        assert_states_equal(
                            got, want, (seed, day, name, key[1])
                        )
        # value-only days must actually exercise the replay path (the
        # journaled bucket engine makes every touched search repairable)
        assert totals["replayed"] > 0, totals

    def test_replay_totals_across_suite(self, monkeypatch):
        """Aggregated over seeds, the replay class dominates value-only
        days under the bucket engine — and the repaired searches carry
        fresh journals, so back-to-back value days replay again."""
        monkeypatch.setattr(search, "_VECTOR_GRAPH_MIN", 0)
        totals = {"reused": 0, "repaired": 0, "replayed": 0, "dirty": 0}
        for seed in range(6):
            rng = random.Random(0xABBA + seed)
            base = random_atlas(rng)
            runtime = AtlasRuntime(copy.deepcopy(base))
            predictor = runtime.pool.predictor(PredictorConfig.inano())
            prefixes = sorted(runtime.atlas.prefix_to_cluster)
            current = copy.deepcopy(base)
            for day in range(3):  # three value-only days back to back
                for src, dst in zip(prefixes, prefixes[1:] + prefixes[:1]):
                    predictor.predict_or_none(src, dst)
                nxt = copy.deepcopy(current)
                nxt.day = day + 1
                _perturb_values(nxt, rng)
                report = runtime.apply_delta(compute_delta(current, nxt))
                current = nxt
                for key in totals:
                    totals[key] += report.cache.get(key, 0)
        assert totals["replayed"] > 0, totals
        assert totals["replayed"] >= totals["dirty"], totals

    def test_state_pool_bounded_across_churn(self, monkeypatch):
        """State-pool lifecycle: a long churn chain must not grow pool
        memory past the freelist cap, and ``PredictorPool.release()``
        must free the released entry's pooled arrays and journals."""
        monkeypatch.setattr(search, "_VECTOR_GRAPH_MIN", 0)
        rng = random.Random(0x9001)
        base = random_atlas(rng)
        runtime = AtlasRuntime(copy.deepcopy(base))
        predictor = runtime.pool.predictor(PredictorConfig.inano())
        prefixes = sorted(runtime.atlas.prefix_to_cluster)
        current = copy.deepcopy(base)
        sizes = []
        for day in range(8):
            for src, dst in zip(prefixes, prefixes[1:] + prefixes[:1]):
                predictor.predict_or_none(src, dst)
            for g in (runtime.directed_graph(), runtime.closed_graph()):
                pool = g.search_pool()
                assert pool.free_bundles <= pool.cap
                # a bundle is 5 arrays of 8 bytes/node + the bool
                # finalized scratch: the freelist cap bounds the pool
                bound = pool.cap * 5 * 8 * g.n_nodes + g.n_nodes
                sizes.append(pool.nbytes())
                assert pool.nbytes() <= bound, (day, pool.nbytes(), bound)
            nxt = copy.deepcopy(current)
            nxt.day = day + 1
            (_perturb_values if day % 2 else _perturb_structural)(nxt, rng)
            runtime.apply_delta(compute_delta(current, nxt))
            current = nxt
        assert any(sizes), sizes
        # a renumbering recompile resizes the pool rather than keeping
        # stale bundles
        _perturb_renumber(current, rng)
        nxt = copy.deepcopy(current)
        nxt.day = 99
        runtime.apply_delta(compute_delta(current, nxt))
        for g in (runtime.directed_graph(), runtime.closed_graph()):
            pool = g.search_pool()
            for bundle in pool._free:
                assert len(bundle[0]) == g.n_nodes
        # release() frees the entry's cached state + pool freelists
        runtime.pool.release(None)
        assert len(predictor._search_cache) == 0
        for g in (runtime.directed_graph(), runtime.closed_graph()):
            assert g.search_pool().free_bundles == 0

    def test_numba_kernel_falls_back_without_dependency(self):
        """``kernel="numba"`` must degrade gracefully when numba is not
        importable: same predictions as the vector kernel, no error."""
        from repro.core import jit

        rng = random.Random(0xA11)
        atlas = random_atlas(rng)
        config = PredictorConfig.inano()
        nb = INanoPredictor(atlas, config, kernel="numba")
        vec = INanoPredictor(atlas, config, kernel="vector")
        if not jit.available():
            assert nb.kernel_jit is False
        prefixes = sorted(atlas.prefix_to_cluster)
        for src in prefixes[::2]:
            for dst in prefixes[1::2]:
                assert nb.predict_or_none(src, dst) == vec.predict_or_none(
                    src, dst
                ), (src, dst)

    def test_post_delta_first_query_is_cache_hit(self):
        """Prewarming turns the first post-delta query into a hit."""
        rng = random.Random(0xAB)
        base = random_atlas(rng)
        runtime = AtlasRuntime(copy.deepcopy(base))
        runtime.pool.prewarm_max = 8
        predictor = runtime.pool.predictor(PredictorConfig.inano())
        prefixes = sorted(runtime.atlas.prefix_to_cluster)
        for src, dst in zip(prefixes, prefixes[1:] + prefixes[:1]):
            predictor.predict_or_none(src, dst)
        nxt = copy.deepcopy(base)
        nxt.day = 1
        _perturb_values(nxt, rng)
        runtime.apply_delta(compute_delta(base, nxt))
        live = {
            key
            for key in predictor._search_cache
            if key[0]
            in (
                runtime.directed_graph().version,
                runtime.closed_graph().version,
            )
        }
        assert live, "repair/prewarm left no warm entries"
