"""Property-based tests of the prediction graph and predicted routes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.relationships import REL_CUSTOMER, REL_PEER, REL_PROVIDER
from repro.core.graph import DOWN, TO_DST, UP, EdgeKind, PredictionGraph
from repro.core.predictor import INanoPredictor, PredictorConfig


def random_hierarchy_atlas(draw) -> Atlas:
    """A random 2-tier hierarchy: providers 1..P, customers P+1..P+C.

    Every customer attaches to >=1 provider; providers peer pairwise with
    draw-controlled density. Cluster id = 10*asn, prefix = 100*asn.
    """
    n_providers = draw(st.integers(min_value=2, max_value=4))
    n_customers = draw(st.integers(min_value=2, max_value=6))
    atlas = Atlas()
    providers = list(range(1, n_providers + 1))
    customers = list(range(n_providers + 1, n_providers + n_customers + 1))

    def add_link(a: int, b: int, code: int) -> None:
        atlas.links[(a * 10, b * 10)] = LinkRecord(latency_ms=5.0)
        atlas.links[(b * 10, a * 10)] = LinkRecord(latency_ms=5.0)
        atlas.relationship_codes[(a, b)] = code
        inverse = {REL_PROVIDER: REL_CUSTOMER, REL_CUSTOMER: REL_PROVIDER,
                   REL_PEER: REL_PEER}[code]
        atlas.relationship_codes[(b, a)] = inverse

    for i, a in enumerate(providers):
        for b in providers[i + 1 :]:
            if draw(st.booleans()):
                add_link(a, b, REL_PEER)
    for customer in customers:
        homes = draw(
            st.lists(
                st.sampled_from(providers), min_size=1, max_size=len(providers),
                unique=True,
            )
        )
        for provider in homes:
            add_link(provider, customer, REL_PROVIDER)
    for asn in providers + customers:
        atlas.cluster_to_as[asn * 10] = asn
        atlas.prefix_to_cluster[asn * 100] = asn * 10
        atlas.prefix_to_as[asn * 100] = asn
        atlas.as_degrees[asn] = 3
    return atlas


@st.composite
def hierarchy_atlases(draw):
    return random_hierarchy_atlas(draw)


class TestPredictedRouteInvariants:
    @given(hierarchy_atlases())
    @settings(max_examples=40, deadline=None)
    def test_routes_are_valley_free(self, atlas):
        """Any predicted route must be valley-free w.r.t. the inferred
        relationships (the up/down construction's guarantee)."""
        predictor = INanoPredictor(atlas, PredictorConfig.graph_baseline())
        ases = sorted(atlas.as_degrees)
        for src in ases[:3]:
            for dst in ases[-3:]:
                if src == dst:
                    continue
                path = predictor.predict_or_none(src * 100, dst * 100)
                if path is None:
                    continue
                # Valley-free: once we descend (provider->customer) or
                # cross a peer edge, we never climb again.
                descended = False
                peers_crossed = 0
                for a, b in zip(path.as_path, path.as_path[1:]):
                    code = atlas.relationship_codes.get((a, b))
                    if code == REL_CUSTOMER:  # a climbs to its provider b
                        assert not descended, path.as_path
                    elif code == REL_PEER:
                        peers_crossed += 1
                        descended = True
                    elif code == REL_PROVIDER:
                        descended = True
                assert peers_crossed <= 1, path.as_path

    @given(hierarchy_atlases())
    @settings(max_examples=40, deadline=None)
    def test_routes_walk_atlas_links(self, atlas):
        predictor = INanoPredictor(atlas, PredictorConfig.graph_baseline())
        ases = sorted(atlas.as_degrees)
        for src in ases[:2]:
            for dst in ases[-2:]:
                if src == dst:
                    continue
                path = predictor.predict_or_none(src * 100, dst * 100)
                if path is None:
                    continue
                for a, b in zip(path.clusters, path.clusters[1:]):
                    assert (a, b) in atlas.links or (b, a) in atlas.links

    @given(hierarchy_atlases())
    @settings(max_examples=40, deadline=None)
    def test_route_endpoints_correct(self, atlas):
        predictor = INanoPredictor(atlas, PredictorConfig.graph_baseline())
        ases = sorted(atlas.as_degrees)
        src, dst = ases[0], ases[-1]
        if src == dst:
            return
        path = predictor.predict_or_none(src * 100, dst * 100)
        if path is None:
            return
        assert path.clusters[0] == src * 10
        assert path.clusters[-1] == dst * 10
        assert path.as_path[0] == src
        assert path.as_path[-1] == dst

    @given(hierarchy_atlases())
    @settings(max_examples=25, deadline=None)
    def test_latency_consistent_with_clusters(self, atlas):
        predictor = INanoPredictor(atlas, PredictorConfig.graph_baseline())
        ases = sorted(atlas.as_degrees)
        src, dst = ases[0], ases[-1]
        path = predictor.predict_or_none(src * 100, dst * 100)
        if path is None:
            return
        assert path.latency_ms == pytest.approx(5.0 * (len(path.clusters) - 1))


class TestGraphEdgeSemantics:
    def test_peer_edges_cross_up_to_down_only(self):
        atlas = Atlas()
        atlas.links[(10, 20)] = LinkRecord(latency_ms=1.0)
        atlas.links[(20, 10)] = LinkRecord(latency_ms=1.0)
        atlas.relationship_codes[(1, 2)] = REL_PEER
        atlas.relationship_codes[(2, 1)] = REL_PEER
        atlas.cluster_to_as = {10: 1, 20: 2}
        graph = PredictionGraph(atlas=atlas, closed=True).build()
        peer_edges = [
            e
            for edges in graph.reverse_adjacency.values()
            for e in edges
            if e.kind is EdgeKind.PEER
        ]
        assert peer_edges
        for edge in peer_edges:
            assert edge.src[1] == UP and edge.dst[1] == DOWN

    def test_unknown_relationship_gets_both_monotone_edges(self):
        atlas = Atlas()
        atlas.links[(10, 20)] = LinkRecord(latency_ms=1.0)
        atlas.cluster_to_as = {10: 1, 20: 2}
        graph = PredictionGraph(atlas=atlas, closed=True).build()
        kinds = {
            e.kind
            for edges in graph.reverse_adjacency.values()
            for e in edges
            if e.src_asn != e.dst_asn
        }
        assert EdgeKind.DOWN_EDGE in kinds
        assert EdgeKind.UP_EDGE in kinds
        assert EdgeKind.PEER not in kinds
