"""The unified observability layer: registry, tracing, dashboard.

Three layers under test, bottom-up:

* the metric primitives — histogram percentiles against a numpy
  nearest-rank oracle, snapshot/merge associativity (the property that
  makes the fleet fold order-independent), the ``StatsView`` facade
  that keeps ``gateway.stats`` dict-shaped;
* the trace primitives — deterministic sampling under a seeded RNG,
  process-global span-id uniqueness (a client and a gateway tracer in
  one process must never mint the same id), LRU bounding, tree
  assembly with orphan surfacing;
* the end-to-end pipeline — a traced query through a real TCP gateway
  over the sharded service returns one span tree covering gateway
  decode, admission, shard routing (pinned *and* promoted-replica),
  worker batch handling and the kernel search, and the legacy stats
  surfaces (``gateway.stats``, ``load_stats()``) stay equivalent views
  over the registry while tracing runs.
"""

from __future__ import annotations

import copy
import random

import numpy as np
import pytest

from repro.client import AtlasServer
from repro.errors import ClientError
from repro.net import NetworkClient, NetworkGateway
from repro.obs import (
    DEFAULT_US_BUCKETS,
    MetricsRegistry,
    Span,
    TraceCollector,
    Tracer,
    build_tree,
    render_tree,
)
from repro.obs.dashboard import render
from repro.obs.registry import histogram_percentile, prefix_snapshot
from repro.util.stats import nearest_rank


# -- histograms ------------------------------------------------------------


class TestHistogram:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("q", [0.50, 0.90, 0.99])
    def test_exact_percentile_matches_numpy_oracle(self, seed, q):
        rng = random.Random(seed)
        values = [rng.uniform(0.5, 400_000.0) for _ in range(257)]
        hist = MetricsRegistry().get_histogram("t")
        for v in values:
            hist.observe(v)
        got = hist.percentile(q)
        assert got == nearest_rank(values, q)
        # nearest-rank must land between numpy's two bracketing order
        # statistics for the same q
        lo = float(np.percentile(values, q * 100, method="lower"))
        hi = float(np.percentile(values, q * 100, method="higher"))
        assert lo <= got <= hi

    def test_window_bounds_the_exact_percentile(self):
        hist = MetricsRegistry().get_histogram("t", window=8)
        for v in [1000.0] * 50 + [10.0] * 8:
            hist.observe(v)
        # only the last 8 samples remain in the exact window...
        assert hist.percentile(0.99) == 10.0
        # ...but the mergeable bucket counts remember everything
        assert hist.count == 58

    def test_merged_percentile_lands_in_the_right_bucket(self):
        rng = random.Random(7)
        values = [rng.uniform(1.0, 900_000.0) for _ in range(500)]
        hist = MetricsRegistry().get_histogram("t")
        for v in values:
            hist.observe(v)
        exact = nearest_rank(values, 0.99)
        merged = histogram_percentile(hist.state(), 0.99)
        # bucket-resolution answer: same bucket as the exact one
        bounds = (0.0,) + DEFAULT_US_BUCKETS + (float("inf"),)
        for lo, hi in zip(bounds, bounds[1:]):
            if lo < exact <= hi:
                assert lo <= merged <= hi
                break

    def test_empty_histogram_reports_zero(self):
        hist = MetricsRegistry().get_histogram("t")
        assert hist.percentile(0.5) == 0.0
        assert histogram_percentile(hist.state(), 0.5) == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().get_histogram("t", bounds=(5.0, 1.0))


# -- snapshot / merge ------------------------------------------------------


def _loaded_registry(seed: int) -> MetricsRegistry:
    rng = random.Random(seed)
    reg = MetricsRegistry()
    reg.get_counter("req.total").increase(rng.randrange(1, 50))
    reg.get_gauge("req.depth").set(rng.randrange(0, 9))
    hist = reg.get_histogram("req.us")
    for _ in range(rng.randrange(5, 40)):
        hist.observe(rng.uniform(1.0, 100_000.0))
    return reg


class TestSnapshotMerge:
    def test_merge_is_associative(self):
        a, b, c = (_loaded_registry(s).snapshot() for s in (1, 2, 3))
        merge = MetricsRegistry.merge_snapshots
        left = merge(merge(a, b), c)
        right = merge(a, merge(b, c))
        assert left == right

    def test_merge_sums_numbers_and_buckets(self):
        a, b = _loaded_registry(4).snapshot(), _loaded_registry(5).snapshot()
        out = MetricsRegistry.merge_snapshots(a, b)
        assert out["req.total"] == a["req.total"] + b["req.total"]
        assert out["req.us"]["count"] == a["req.us"]["count"] + b["req.us"]["count"]
        assert out["req.us"]["counts"] == [
            x + y for x, y in zip(a["req.us"]["counts"], b["req.us"]["counts"])
        ]
        assert out["req.us"]["max"] == max(a["req.us"]["max"], b["req.us"]["max"])

    def test_merge_does_not_mutate_inputs(self):
        a, b = _loaded_registry(6).snapshot(), _loaded_registry(7).snapshot()
        a_copy = copy.deepcopy(a)
        MetricsRegistry.merge_snapshots(a, b)
        assert a == a_copy

    def test_merge_rejects_mismatched_bounds(self):
        reg = MetricsRegistry()
        reg.get_histogram("h", bounds=(1.0, 2.0)).observe(1.0)
        other = MetricsRegistry()
        other.get_histogram("h", bounds=(1.0, 3.0)).observe(1.0)
        with pytest.raises(ValueError, match="bounds"):
            MetricsRegistry.merge_snapshots(reg.snapshot(), other.snapshot())

    def test_prefix_snapshot_rekeys(self):
        snap = {"a.b": 1, "c": 2}
        assert prefix_snapshot(snap, "shard3") == {"shard3.a.b": 1, "shard3.c": 2}


# -- registry / views ------------------------------------------------------


class TestRegistry:
    def test_same_name_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.get_counter("x") is reg.get_counter("x")
        assert reg.get_histogram("h") is reg.get_histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.get_counter("x")
        with pytest.raises(ValueError, match="Counter"):
            reg.get_gauge("x")
        reg.get_histogram("h")
        with pytest.raises(ValueError):
            reg.get_counter("h")

    def test_expose_text_prometheus_shape(self):
        reg = MetricsRegistry()
        reg.get_counter("net.requests").increase(3)
        reg.get_histogram("net.req_us", bounds=(10.0, 100.0)).observe(42.0)
        text = reg.expose_text()
        assert "# TYPE net_requests counter" in text
        assert "net_requests 3" in text
        assert "# TYPE net_req_us histogram" in text
        assert 'net_req_us_bucket{le="100"} 1' in text
        assert 'net_req_us_bucket{le="+Inf"} 1' in text
        assert "net_req_us_count 1" in text


class TestStatsView:
    def test_view_is_a_window_onto_gauges(self):
        reg = MetricsRegistry()
        view = reg.view("net.gw", ("requests", "errors"))
        view["requests"] += 5
        assert reg.get_gauge("net.gw.requests").get() == 5
        reg.get_gauge("net.gw.errors").add(2)
        assert view["errors"] == 2
        assert dict(view) == {"requests": 5, "errors": 2}

    def test_new_keys_create_gauges(self):
        reg = MetricsRegistry()
        view = reg.view("relay", ("anchor_day",))
        view["upstream_lost"] = 1
        assert reg.get_gauge("relay.upstream_lost").get() == 1
        assert list(view) == ["anchor_day", "upstream_lost"]

    def test_undeclared_read_and_delete_fail(self):
        view = MetricsRegistry().view("p", ("a",))
        with pytest.raises(KeyError):
            view["missing"]
        with pytest.raises(TypeError):
            del view["a"]


# -- tracer primitives -----------------------------------------------------


class TestTracer:
    def test_sampling_is_deterministic_under_seeded_rng(self):
        mk = lambda: Tracer(sample_rate=0.4, rng=random.Random(99))
        a, b = mk(), mk()
        decisions = [a.sample() for _ in range(200)]
        assert decisions == [b.sample() for _ in range(200)]
        assert 0 < sum(decisions) < 200

    def test_rate_edges_skip_the_rng(self):
        always = Tracer(sample_rate=1.0, rng=random.Random(1))
        never = Tracer(sample_rate=0.0, rng=random.Random(1))
        assert all(always.sample() for _ in range(50))
        assert not any(never.sample() for _ in range(50))
        # no draws happened: both RNGs still agree with a fresh one
        assert always.rng.random() == random.Random(1).random()

    def test_unsampled_start_trace_is_none(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.start_trace() is None
        ctx = Tracer(sample_rate=1.0).start_trace()
        assert ctx is not None and ctx[0] != 0

    def test_span_ids_unique_across_tracer_instances(self):
        # regression: a client tracer and a gateway tracer co-resident
        # in one process used to restart the same counter and collide
        ids = {Tracer().mint_id() for _ in range(64)}
        ids.update(Tracer().mint_id() for _ in range(64))
        assert len(ids) == 128

    def test_record_parents_and_stringifies_tags(self):
        tracer = Tracer()
        sid = tracer.record((7, 3), "x", 0.0, 1.0, pairs=4)
        [span] = tracer.collector.spans_of(7)
        assert (span.trace_id, span.parent_id, span.span_id) == (7, 3, sid)
        assert span.tags == {"pairs": "4"}


class TestTraceCollector:
    def test_lru_bounds_trace_count(self):
        coll = TraceCollector(max_traces=4)
        for tid in range(1, 10):
            coll.record(Span(tid, tid, 0, "s", 0.0, 1.0))
        assert len(coll) == 4
        assert coll.spans_of(1) == []
        assert len(coll.spans_of(9)) == 1


class TestBuildTree:
    def test_nesting_and_orphans(self):
        spans = [
            Span(1, 10, 0, "root", 0.0, 9.0),
            Span(1, 11, 10, "child", 1.0, 2.0),
            Span(1, 12, 11, "grandchild", 1.5, 0.5),
            Span(1, 13, 999, "orphan", 3.0, 1.0),  # parent lost
        ]
        roots = build_tree(spans)
        assert [n["span"].name for n in roots] == ["root", "orphan"]
        assert roots[0]["children"][0]["span"].name == "child"
        assert roots[0]["children"][0]["children"][0]["span"].name == "grandchild"
        text = render_tree(spans)
        assert "root" in text and "  child" in text


class TestDashboard:
    def test_render_groups_and_histograms(self):
        reg = MetricsRegistry()
        reg.get_gauge("net.gateway.requests").set(12)
        h = reg.get_histogram("serve.service.request_us")
        for v in (10.0, 20.0, 30.0):
            h.observe(v)
        board = render(reg.snapshot(), title="test-top")
        assert "test-top" in board
        assert "[net]" in board and "[serve]" in board
        assert "n=3" in board


# -- end-to-end ------------------------------------------------------------


@pytest.fixture(scope="module")
def server(scenario):
    server = AtlasServer()
    server.publish(copy.deepcopy(scenario.atlas(0)))
    return server


@pytest.fixture(scope="module")
def prefixes(scenario):
    return sorted(scenario.atlas(0).prefix_to_cluster)


def _names(spans):
    return [s.name for s in spans]


def _route_spans(spans):
    return [s for s in spans if s.name == "serve.route"]


class TestEndToEndTrace:
    HEAT = dict(window=16, alpha=0.5, promote_threshold=4.0, replicas=2)

    def test_server_backend_span_tree(self, server):
        gateway = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        client = None
        try:
            host, port = gateway.tcp_address
            client = NetworkClient.connect_tcp(host, port, trace=True)
            src, dst = sorted(server.atlas_object().prefix_to_cluster)[:2]
            client.predict(src, dst)
            spans = client.fetch_trace()
            names = _names(spans)
            for expected in (
                "client.request",
                "gw.admission",
                "gw.decode",
                "gw.dispatch",
                "kernel.search",
            ):
                assert expected in names
            [kernel] = [s for s in spans if s.name == "kernel.search"]
            assert kernel.tags["cache"] in ("hit", "cold")
            assert "repair" in kernel.tags
            tree = client.span_tree()
            assert tree[0]["span"].name == "client.request"
            kids = {n["span"].name for n in tree[0]["children"]}
            assert {"gw.admission", "gw.decode", "gw.dispatch"} <= kids
        finally:
            if client is not None:
                client.close()
            gateway.close()

    def test_service_backend_pinned_and_promoted_trees(
        self, server, prefixes
    ):
        hot_dst, cold_dst = prefixes[0], prefixes[5]
        service = server.serve(n_shards=2, heat=dict(self.HEAT))
        gateway = client = None
        try:
            gateway = NetworkGateway(service, tcp=("127.0.0.1", 0)).start()
            host, port = gateway.tcp_address
            client = NetworkClient.connect_tcp(host, port, trace=True)

            # -- pinned: a cold destination routes to its ring owner --
            client.predict_batch([(prefixes[1], cold_dst)])
            spans = client.fetch_trace()
            names = _names(spans)
            for expected in (
                "client.request",
                "gw.admission",
                "gw.decode",
                "gw.dispatch",
                "serve.route",
                "shard.batch",
                "kernel.search",
            ):
                assert expected in names, f"missing {expected} in {names}"
            [route] = _route_spans(spans)
            assert route.tags["replica"] == "pinned"
            assert route.tags["shard"] == str(
                service.shard_of_destination(cold_dst)
            )
            # full chain nests: route under dispatch, batch under
            # route, kernel under batch
            tree = client.span_tree()
            node = tree[0]
            assert node["span"].name == "client.request"
            by_name = {n["span"].name: n for n in node["children"]}
            dispatch = by_name["gw.dispatch"]
            route_node = dispatch["children"][0]
            assert route_node["span"].name == "serve.route"
            batch_node = route_node["children"][0]
            assert batch_node["span"].name == "shard.batch"
            assert batch_node["children"][0]["span"].name == "kernel.search"
            kernel = batch_node["children"][0]["span"]
            assert kernel.tags["cache"] in ("hit", "cold")
            assert "repair" in kernel.tags

            # -- promoted: heat the destination, then trace again --
            cluster = service.atlas.cluster_of_prefix(hot_dst)
            hot_pairs = [(s, hot_dst) for s in prefixes[1:9]]
            for _ in range(8):
                client.predict_batch(hot_pairs)
            assert service.heat.is_hot(cluster)
            client.predict_batch(hot_pairs)
            spans = client.fetch_trace()
            routes = _route_spans(spans)
            assert routes and all(
                r.tags["replica"] == "promoted" for r in routes
            )
            assert "shard.batch" in _names(spans)
        finally:
            if client is not None:
                client.close()
            if gateway is not None:
                gateway.close()
            service.close()

    def test_sampling_zero_disables_tracing(self, server):
        gateway = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        client = None
        try:
            host, port = gateway.tcp_address
            client = NetworkClient.connect_tcp(
                host, port, trace=True, trace_sample=0.0, trace_seed=3
            )
            src, dst = sorted(server.atlas_object().prefix_to_cluster)[:2]
            client.predict(src, dst)
            assert client.last_trace_id is None
            with pytest.raises(ClientError):
                client.fetch_trace()
        finally:
            if client is not None:
                client.close()
            gateway.close()

    def test_untraced_client_cannot_fetch(self, server):
        gateway = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        client = None
        try:
            host, port = gateway.tcp_address
            client = NetworkClient.connect_tcp(host, port)
            with pytest.raises(ClientError):
                client.fetch_trace(1234)
        finally:
            if client is not None:
                client.close()
            gateway.close()


class TestStatsAreRegistryViews:
    def test_gateway_stats_backed_by_registry(self, server):
        gateway = NetworkGateway(server, tcp=("127.0.0.1", 0)).start()
        client = None
        try:
            host, port = gateway.tcp_address
            client = NetworkClient.connect_tcp(host, port)
            src, dst = sorted(server.atlas_object().prefix_to_cluster)[:2]
            client.predict(src, dst)
            assert gateway.stats["requests"] >= 1
            assert (
                gateway.obs.get_gauge("net.gateway.requests").get()
                == gateway.stats["requests"]
            )
            snap = gateway.obs.snapshot()
            assert snap["net.gateway.requests"] == gateway.stats["requests"]
            text = gateway.obs.expose_text()
            assert "net_gateway_requests" in text
        finally:
            if client is not None:
                client.close()
            gateway.close()

    def test_service_fleet_snapshot_merges_workers(self, server, prefixes):
        with server.serve(n_shards=2) as svc:
            svc.predict_batch(
                [(s, d) for s in prefixes[:4] for d in prefixes[4:8]]
            )
            load = svc.load_stats()
            assert (
                svc.obs.get_gauge("serve.service.requests").get()
                == svc.stats["requests"]
            )
            assert load["req_p50_us"] == svc.stats["req_p50_us"]
            fleet = svc.fleet_snapshot()
            # front-end series, fleet-merged worker series, and the
            # per-shard drill-down all in one snapshot
            assert fleet["serve.service.requests"] == svc.stats["requests"]
            assert fleet["serve.shard.batches"] >= 2
            assert fleet["serve.shards.count"] == 2
            assert fleet["serve.shards.alive"] == 2
            assert "shard0.serve.shard.batches" in fleet
            assert "shard1.serve.shard.batches" in fleet
            assert (
                fleet["shard0.serve.shard.batches"]
                + fleet["shard1.serve.shard.batches"]
                == fleet["serve.shard.batches"]
            )
            board = render(fleet, title="fleet")
            assert "[serve]" in board and "[shard0]" in board
