"""Heat tracking + hot-destination replica routing.

The hotspot layer is pure policy over mechanisms proven elsewhere
(hash-ring ownership, delta broadcast keeping every shard current), so
this suite pins the policy itself: deterministic promote/demote on the
logical-op window clock, hysteresis against flapping, replica sets as
ring successors, least-loaded fan-out on a live service — and that
none of it can change a single answer bit (replication is routing
only).
"""

from __future__ import annotations

import copy

import pytest

from repro.client import AtlasServer
from repro.serve.hashring import HashRing
from repro.serve.heat import Counter, HeatTracker, Timer, Tracker


@pytest.fixture(scope="module")
def server(scenario):
    server = AtlasServer()
    server.publish(copy.deepcopy(scenario.atlas(0)))
    return server


@pytest.fixture(scope="module")
def prefixes(scenario):
    return sorted(scenario.atlas(0).prefix_to_cluster)


class TestTracker:
    def test_counters_and_timers_are_shared_by_name(self):
        tracker = Tracker()
        a = tracker.get_counter("routed")
        b = tracker.get_counter("routed")
        assert a is b
        a.increase()
        b.increase(4)
        assert tracker.get_counter("routed").get() == 5
        t = tracker.get_timer("route_seconds")
        assert t is tracker.get_timer("route_seconds")
        t.add(0.25)
        with tracker.get_timer("route_seconds"):
            pass
        assert tracker.get_timer("route_seconds").get() >= 0.25

    def test_snapshot_is_flat(self):
        tracker = Tracker()
        tracker.get_counter("a").increase(2)
        tracker.get_timer("b").add(1.5)
        snap = tracker.snapshot()
        assert snap == {"a": 2, "b": 1.5}

    def test_repr_names(self):
        assert "hits" in repr(Counter("hits"))
        assert "lat" in repr(Timer("lat"))


class TestHeatTracker:
    def test_promotes_on_sustained_skew(self):
        heat = HeatTracker(window=10, alpha=0.5, promote_threshold=4.0)
        # destination 7 takes 50% of three full windows:
        # EMA 2.5 -> 3.75 -> 4.375, crossing the threshold on the third
        for _ in range(3):
            for i in range(5):
                heat.record(7)
                heat.record(100 + i)
        assert heat.is_hot(7)
        assert heat.heat_of(7) == 4.375
        assert not heat.is_hot(100)
        assert heat.hot == frozenset({7})
        snap = heat.snapshot()
        assert snap["heat.promotions"] == 1
        assert snap["heat.hot_destinations"] == 1
        assert snap["heat.records"] == 30

    def test_demotes_on_decay(self):
        heat = HeatTracker(
            window=10, alpha=0.5, promote_threshold=4.0, demote_threshold=1.0
        )
        for _ in range(3):
            for _ in range(5):
                heat.record(7)
            for i in range(5):
                heat.record(100 + i)
        assert heat.is_hot(7)
        # traffic moves away entirely: EMA halves each window
        for _ in range(40):
            heat.record(999)
        assert not heat.is_hot(7)
        assert heat.snapshot()["heat.demotions"] == 1

    def test_hysteresis_holds_between_thresholds(self):
        heat = HeatTracker(
            window=10, alpha=0.5, promote_threshold=5.0, demote_threshold=1.0
        )
        for _ in range(4):
            for _ in range(8):
                heat.record(3)
            heat.record(50)
            heat.record(51)
        assert heat.is_hot(3)
        # drop to 3/window: EMA settles ~3 — below promote, above demote
        for _ in range(6):
            for _ in range(3):
                heat.record(3)
            for i in range(7):
                heat.record(60 + i)
        assert 1.0 < heat.heat_of(3) < 5.0
        assert heat.is_hot(3), "membership must hold inside the band"

    def test_determinism_same_sequence_same_hot_set(self):
        seq = ([5] * 6 + list(range(10, 14))) * 3
        a = HeatTracker(window=10)
        b = HeatTracker(window=10)
        for dst in seq:
            a.record(dst)
            b.record(dst)
        assert a.hot == b.hot
        assert a.heat_of(5) == b.heat_of(5)

    def test_bulk_record_splits_windows(self):
        # one record(n=25) over window=10 must close windows exactly as
        # 25 singles would
        a = HeatTracker(window=10, alpha=0.5)
        b = HeatTracker(window=10, alpha=0.5)
        a.record(4, n=25)
        for _ in range(25):
            b.record(4)
        assert a.heat_of(4) == b.heat_of(4)
        assert a.snapshot() == b.snapshot()

    def test_validation(self):
        with pytest.raises(ValueError):
            HeatTracker(window=0)
        with pytest.raises(ValueError):
            HeatTracker(alpha=0.0)
        with pytest.raises(ValueError):
            HeatTracker(promote_threshold=1.0, demote_threshold=2.0)
        with pytest.raises(ValueError):
            HeatTracker(replicas=0)
        with pytest.raises(ValueError):
            HeatTracker().record(1, n=0)


class TestRingSuccessors:
    def test_first_successor_is_the_owner(self):
        ring = HashRing(range(6))
        for key in range(200):
            assert ring.successors(key, 3)[0] == ring.shard_for(key)

    def test_successors_distinct_and_clamped(self):
        ring = HashRing(range(4))
        for key in range(100):
            reps = ring.successors(key, 3)
            assert len(reps) == len(set(reps)) == 3
            assert ring.successors(key, 99) == ring.successors(key, 4)
            assert len(ring.successors(key, 99)) == 4

    def test_successors_deterministic_across_instances(self):
        a = HashRing(range(5))
        b = HashRing([4, 3, 2, 1, 0])  # insertion order must not matter
        for key in range(100):
            assert a.successors(key, 3) == b.successors(key, 3)

    def test_successor_k1_validation(self):
        ring = HashRing(range(3))
        with pytest.raises(ValueError):
            ring.successors(1, 0)

    def test_memoized_lookup_survives_ring_changes(self):
        ring = HashRing(range(4))
        before = {k: ring.shard_for(k) for k in range(300)}
        # cached answers are stable
        assert {k: ring.shard_for(k) for k in range(300)} == before
        ring.add_shard(4)
        fresh = HashRing(range(5))
        after = {k: ring.shard_for(k) for k in range(300)}
        assert after == {k: fresh.shard_for(k) for k in range(300)}
        ring.remove_shard(4)
        assert {k: ring.shard_for(k) for k in range(300)} == before


class TestServiceReplicaRouting:
    HEAT = dict(window=16, alpha=0.5, promote_threshold=4.0, replicas=2)

    def test_hot_destination_spreads_and_answers_match(
        self, server, prefixes
    ):
        hot_dst = prefixes[0]
        srcs = prefixes[1:9]
        pairs = [(s, hot_dst) for s in srcs] * 8
        oracle = server.predict_batch(pairs)
        with server.serve(n_shards=2, heat=dict(self.HEAT)) as svc:
            cluster = svc.atlas.cluster_of_prefix(hot_dst)
            assert svc.replicas_of_destination(hot_dst) == [
                svc.shard_of_destination(hot_dst)
            ]
            got = []
            for chunk in range(4):
                got.extend(svc.predict_batch(pairs[chunk * 16 : chunk * 16 + 16]))
            assert svc.heat.is_hot(cluster)
            replicas = svc.replicas_of_destination(hot_dst)
            assert len(replicas) == 2
            assert replicas[0] == svc.shard_of_destination(hot_dst)
            # hot traffic now reaches both replicas, bit-identically
            got.extend(svc.predict_batch(pairs[:16]))
            assert svc.stats["replica_routed"] > 0
            assert got == oracle + oracle[:16]
            per_shard = svc.shard_stats()
            assert all(s["pairs"] > 0 for s in per_shard), (
                "replication should hand the hot stream to every shard"
            )

    def test_submit_path_coalesces_on_replicas(self, server, prefixes):
        hot_dst = prefixes[0]
        src = prefixes[1]
        with server.serve(n_shards=2, heat=dict(self.HEAT)) as svc:
            cluster = svc.atlas.cluster_of_prefix(hot_dst)
            # drive the tracker hot through the submit path
            for _ in range(6):
                for s in prefixes[1:5]:
                    svc.submit(s, hot_dst).result()
            assert svc.heat.is_hot(cluster)
            base = svc.stats["coalesced"]
            futures = [svc.submit(src, hot_dst) for _ in range(4)]
            svc.flush()
            assert svc.stats["coalesced"] - base == 3, (
                "identical hot pairs must coalesce onto one replica slot"
            )
            values = {f.result() for f in futures}
            assert len(values) == 1

    def test_demotion_restores_pinned_routing(self, server, prefixes):
        hot_dst, cold_dst = prefixes[0], prefixes[5]
        with server.serve(
            n_shards=2,
            heat=dict(self.HEAT, demote_threshold=1.0),
        ) as svc:
            cluster = svc.atlas.cluster_of_prefix(hot_dst)
            for _ in range(8):
                for s in prefixes[1:5]:
                    svc.predict_batch([(s, hot_dst)])
            assert svc.heat.is_hot(cluster)
            # all traffic shifts elsewhere; heat decays below demote
            for _ in range(20):
                svc.predict_batch([(s, cold_dst) for s in prefixes[1:5]])
            assert not svc.heat.is_hot(cluster)
            assert svc.replicas_of_destination(hot_dst) == [
                svc.shard_of_destination(hot_dst)
            ]

    def test_load_stats_surface(self, server, prefixes):
        with server.serve(n_shards=2, heat=dict(self.HEAT)) as svc:
            svc.predict_batch(
                [(s, d) for s in prefixes[:4] for d in prefixes[4:8]]
            )
            load = svc.load_stats()
            assert len(load["queue_depths"]) == 2
            assert load["queue_depth"] == 0  # nothing queued at rest
            assert load["inflight"] == 0
            assert load["req_p50_us"] > 0
            assert load["req_p99_us"] >= load["req_p50_us"]
            assert "heat" in load
            # mirrored into the stats dict the gateway serializes
            assert svc.stats["req_p50_us"] == load["req_p50_us"]
            assert svc.stats["queue_depth"] == 0
            # queued-but-unflushed work shows up as depth
            svc.submit(prefixes[0], prefixes[5])
            assert svc.load_stats()["queue_depth"] == 1
            svc.flush()

    def test_worker_stats_carry_handle_percentiles(self, server, prefixes):
        with server.serve(n_shards=2) as svc:
            svc.predict_batch(
                [(s, d) for s in prefixes[:4] for d in prefixes[4:8]]
            )
            for stats in svc.shard_stats():
                assert "handle_p50_us" in stats
                assert stats["handle_p99_us"] >= stats["handle_p50_us"]
                if stats["batches"]:
                    assert stats["handle_p50_us"] > 0

    def test_heat_true_uses_defaults_and_none_disables(self, server, prefixes):
        with server.serve(n_shards=2, heat=True) as svc:
            assert isinstance(svc.heat, HeatTracker)
        with server.serve(n_shards=2) as svc:
            assert svc.heat is None
            svc.predict_batch([(prefixes[0], prefixes[5])])
            assert svc.stats["replica_routed"] == 0
