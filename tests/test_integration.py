"""End-to-end integration tests: the paper's headline claims, small scale.

These assert the *shape* of the paper's results on the small scenario:
the ablation ladder orders correctly, iNano's atlas is dramatically
smaller than the path atlas, latency/loss estimates beat the latency-only
baseline where they should, and the client library agrees with the
underlying predictor.
"""

import numpy as np
import pytest

from repro.baselines.routescope import RouteScopePredictor
from repro.core.predictor import PredictorConfig
from repro.eval.accuracy import as_path_metrics
from repro.errors import NoRouteError, RoutingError


@pytest.fixture(scope="module")
def truth_paths(scenario, validation):
    engine = scenario.engine(0)
    pairs = []
    truths = []
    for source in validation.sources:
        for dst in source.validation_targets:
            try:
                truths.append(engine.as_path_between(source.vantage.prefix_index, dst))
            except (NoRouteError, RoutingError):
                continue
            pairs.append((source, dst))
    return pairs, truths


def _predict_all(atlas, pairs, config):
    out = []
    for source, dst in pairs:
        pred = source.predictor(atlas, config)
        path = pred.predict_or_none(source.vantage.prefix_index, dst)
        out.append(path.as_path if path else None)
    return out


class TestAccuracyLadder:
    def test_inano_beats_graph(self, scenario, atlas, truth_paths):
        pairs, truths = truth_paths
        graph = as_path_metrics(
            _predict_all(atlas, pairs, PredictorConfig.graph_baseline()), truths
        )
        inano = as_path_metrics(
            _predict_all(atlas, pairs, PredictorConfig.inano()), truths
        )
        assert inano.exact_fraction > graph.exact_fraction
        assert inano.exact_fraction > 0.3

    def test_inano_beats_routescope(self, scenario, atlas, truth_paths):
        pairs, truths = truth_paths
        rs = RouteScopePredictor(atlas)
        rs_predictions = [
            rs.predict_as_path(source.vantage.prefix_index, dst)
            for source, dst in pairs
        ]
        rs_metrics = as_path_metrics(rs_predictions, truths)
        inano = as_path_metrics(
            _predict_all(atlas, pairs, PredictorConfig.inano()), truths
        )
        assert inano.exact_fraction > rs_metrics.exact_fraction

    def test_composition_comparable_to_inano(self, scenario, atlas, truth_paths):
        pairs, truths = truth_paths
        comp = scenario.composition_predictor()
        predictions = []
        for source, dst in pairs:
            path = comp.predict_or_none(source.vantage.prefix_index, dst)
            if path is None:
                predictions.append(None)
                continue
            as_path = path.as_path
            if as_path and as_path[0] != source.vantage.asn:
                as_path = (source.vantage.asn,) + as_path
            predictions.append(as_path)
        comp_metrics = as_path_metrics(predictions, truths)
        inano = as_path_metrics(
            _predict_all(atlas, pairs, PredictorConfig.inano()), truths
        )
        # Path composition uses two orders of magnitude more data; iNano
        # should land in its neighborhood (the paper: both at 70%).
        assert inano.exact_fraction > 0.5 * comp_metrics.exact_fraction


class TestAtlasCompactness:
    def test_link_atlas_much_smaller_than_path_atlas(self, scenario):
        from repro.atlas.serialization import encode_atlas

        link_bytes = len(encode_atlas(scenario.atlas(0)))
        path_bytes = scenario.composition_predictor().serialized_size_bytes()
        assert link_bytes * 3 < path_bytes

    def test_daily_delta_much_smaller_than_atlas(self, scenario):
        from repro.atlas.delta import compute_delta, encode_delta
        from repro.atlas.serialization import encode_atlas

        delta = compute_delta(scenario.atlas(0), scenario.atlas(1))
        assert len(encode_delta(delta)) < 0.8 * len(encode_atlas(scenario.atlas(1)))


class TestLatencyAndLoss:
    def test_inano_latency_beats_vivaldi_median(self, scenario, atlas, validation):
        vivaldi = scenario.vivaldi()
        inano_errors = []
        vivaldi_errors = []
        for source in validation.sources:
            pred = source.predictor(atlas, PredictorConfig.inano())
            for dst in source.validation_targets:
                truth = scenario.true_rtt_ms(source.vantage.prefix_index, dst)
                if truth is None:
                    continue
                fwd = pred.predict_or_none(source.vantage.prefix_index, dst)
                rev = pred.predict_or_none(dst, source.vantage.prefix_index)
                if fwd is not None and rev is not None:
                    inano_errors.append(abs(fwd.latency_ms + rev.latency_ms - truth))
                vivaldi_errors.append(
                    abs(vivaldi.distance_ms(source.vantage.prefix_index, dst) - truth)
                )
        assert len(inano_errors) > 30
        assert float(np.median(inano_errors)) < float(np.median(vivaldi_errors))

    def test_loss_estimates_meaningful(self, scenario, atlas, validation):
        """Loss error should beat the trivial all-zero predictor on lossy paths."""
        engine = scenario.engine(0)
        errors = []
        zero_errors = []
        for source in validation.sources:
            pred = source.predictor(atlas, PredictorConfig.inano())
            for dst in source.validation_targets:
                try:
                    e2e = engine.end_to_end(source.vantage.prefix_index, dst)
                except (NoRouteError, RoutingError):
                    continue
                if e2e.loss_round_trip < 0.01:
                    continue
                fwd = pred.predict_or_none(source.vantage.prefix_index, dst)
                rev = pred.predict_or_none(dst, source.vantage.prefix_index)
                if fwd is None or rev is None:
                    continue
                estimate = 1 - (1 - fwd.loss) * (1 - rev.loss)
                errors.append(abs(estimate - e2e.loss_round_trip))
                zero_errors.append(e2e.loss_round_trip)
        if len(errors) < 10:
            pytest.skip("too few lossy validation paths")
        assert float(np.mean(errors)) < float(np.mean(zero_errors))


class TestClientAgreement:
    def test_client_matches_predictor(self, scenario, atlas, validation):
        from repro.client import AtlasServer, ClientConfig, INanoClient

        server = AtlasServer()
        server.publish(atlas)
        source = validation.sources[0]
        client = INanoClient(
            server,
            vantage=source.vantage,
            measurement_toolkit=scenario.simulator(0),
            cluster_map=scenario.cluster_map(0),
            config=ClientConfig(use_swarm=False),
        )
        client.fetch()
        shared = scenario.shared_predictor()
        agreements = 0
        comparisons = 0
        for dst in source.validation_targets[:10]:
            info = client.query_or_none(source.vantage.prefix_index, dst)
            direct = shared.predict_or_none(source.vantage.prefix_index, dst)
            if info is None or direct is None:
                continue
            comparisons += 1
            if info.as_path == direct.as_path:
                agreements += 1
        assert comparisons > 0
        # Client decodes its own copy of the atlas; predictions must agree
        # (modulo quantized latencies, which don't change AS paths here).
        assert agreements == comparisons
