"""Tests for vantage-point selection and probe-target sampling."""

import pytest

from repro.errors import MeasurementError
from repro.measurement.vantage import probe_targets, select_vantage_points
from repro.topology import TopologyConfig, generate_topology
from repro.util.ids import PrefixId, ip_in_prefix


@pytest.fixture(scope="module")
def topo():
    return generate_topology(TopologyConfig(seed=81, n_tier1=4, n_tier2=12, n_tier3=40))


class TestSelection:
    def test_count_and_uniqueness(self, topo):
        vps = select_vantage_points(topo, 12, seed=1)
        assert len(vps) == 12
        assert len({vp.prefix_index for vp in vps}) == 12

    def test_spread_over_ases(self, topo):
        vps = select_vantage_points(topo, 12, seed=1)
        assert len({vp.asn for vp in vps}) >= 10

    def test_host_ip_inside_prefix(self, topo):
        for vp in select_vantage_points(topo, 8, seed=2):
            assert ip_in_prefix(vp.host_ip, PrefixId(vp.prefix_index))
            assert topo.prefixes[PrefixId(vp.prefix_index)].origin_asn == vp.asn

    def test_deterministic(self, topo):
        a = select_vantage_points(topo, 10, seed=3)
        b = select_vantage_points(topo, 10, seed=3)
        assert [vp.host_ip for vp in a] == [vp.host_ip for vp in b]

    def test_kinds_are_independent(self, topo):
        pl = select_vantage_points(topo, 10, kind="planetlab", seed=3)
        dimes = select_vantage_points(topo, 10, kind="dimes", seed=3)
        assert {vp.prefix_index for vp in pl} != {vp.prefix_index for vp in dimes}

    def test_exclusion_respected(self, topo):
        first = select_vantage_points(topo, 5, seed=4)
        excluded = {vp.prefix_index for vp in first}
        second = select_vantage_points(topo, 5, seed=4, exclude_prefixes=excluded)
        assert not excluded & {vp.prefix_index for vp in second}

    def test_zero_count_rejected(self, topo):
        with pytest.raises(MeasurementError):
            select_vantage_points(topo, 0)

    def test_too_many_rejected(self, topo):
        with pytest.raises(MeasurementError):
            select_vantage_points(topo, len(topo.prefixes) + 1)

    def test_names_unique(self, topo):
        vps = select_vantage_points(topo, 6, seed=5)
        assert len({vp.name for vp in vps}) == 6


class TestProbeTargets:
    def test_all_prefixes_by_default(self, topo):
        targets = probe_targets(topo)
        assert targets == sorted(p.index for p in topo.prefixes)

    def test_sampling(self, topo):
        targets = probe_targets(topo, per_vp=10, seed=1)
        assert len(targets) == 10
        assert targets == sorted(targets)
        universe = {p.index for p in topo.prefixes}
        assert set(targets) <= universe

    def test_sample_larger_than_universe(self, topo):
        targets = probe_targets(topo, per_vp=10**6)
        assert len(targets) == len(topo.prefixes)
