"""RelayGateway mechanics over the toy atlas.

The full-chain 2-deep relay equivalence is pinned in
``test_net_equivalence.py``; this suite covers the relay machinery
itself: construction, bootstrap-from-upstream (including catch-up past
already-pushed days), push re-broadcast, the verbatim-bytes guarantee,
upstream-loss behavior, and teardown.
"""

from __future__ import annotations

import copy

import pytest

from helpers import prefix_of, toy_atlas

from repro.atlas.delta import compute_delta
from repro.atlas.model import LinkRecord
from repro.client import AtlasServer
from repro.errors import RemoteError
from repro.net import NetworkClient, NetworkGateway, RelayGateway
from repro.net import protocol as P


def make_origin(**kwargs) -> NetworkGateway:
    server = AtlasServer()
    server.publish(toy_atlas())
    gw = NetworkGateway(server, tcp=("127.0.0.1", 0), **kwargs)
    gw.start()
    return gw


def toy_chain_deltas(days: int):
    atlases = [toy_atlas()]
    for day in range(1, days + 1):
        nxt = copy.deepcopy(atlases[-1])
        nxt.day = day
        nxt.links[(10, 20)] = LinkRecord(latency_ms=3.0 + day * 0.25)
        atlases.append(nxt)
    return [compute_delta(a, b) for a, b in zip(atlases, atlases[1:])]


def wait_until(predicate, timeout: float = 10.0, what: str = "condition"):
    import time

    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"{what} not reached within {timeout}s")
        time.sleep(0.01)


class TestConstruction:
    def test_exactly_one_upstream_required(self):
        with pytest.raises(ValueError):
            RelayGateway(tcp=("127.0.0.1", 0))
        with pytest.raises(ValueError):
            RelayGateway(
                upstream_tcp=("127.0.0.1", 1),
                upstream_uds="/tmp/nope.sock",
                tcp=("127.0.0.1", 0),
            )

    def test_relay_needs_its_own_listener(self):
        origin = make_origin()
        try:
            with pytest.raises(ValueError):
                RelayGateway(upstream_tcp=origin.tcp_address)
        finally:
            origin.close()

    def test_bootstraps_current_day_including_pushed_suffix(self):
        origin = make_origin()
        relay = None
        try:
            for delta in toy_chain_deltas(2):
                origin.push_delta(delta)
            relay = RelayGateway(
                upstream_tcp=origin.tcp_address, tcp=("127.0.0.1", 0)
            )
            # the anchor fetch replays the pushed suffix before serving
            assert relay.backend.day == 2
            assert relay.stats["delta_log_days"] == 2
            assert relay.stats["upstream_lost"] == 0
        finally:
            if relay is not None:
                relay.close()
            origin.close()


class TestServing:
    def test_relay_answers_match_origin(self):
        origin = make_origin()
        relay = RelayGateway(
            upstream_tcp=origin.tcp_address, tcp=("127.0.0.1", 0)
        ).start()
        clients = []
        try:
            pairs = [(prefix_of(1), prefix_of(5)), (prefix_of(3), prefix_of(2))]
            o_host, o_port = origin.tcp_address
            r_host, r_port = relay.tcp_address
            at_origin = NetworkClient.connect_tcp(o_host, o_port)
            at_relay = NetworkClient.connect_tcp(r_host, r_port)
            clients = [at_origin, at_relay]
            assert at_relay.backend_name == "relay"
            assert at_relay.predict_batch(pairs) == at_origin.predict_batch(pairs)
            assert at_relay.query_batch(pairs) == at_origin.query_batch(pairs)
        finally:
            for c in clients:
                c.close()
            relay.close()
            origin.close()

    def test_client_scoped_queries_rejected(self):
        origin = make_origin()
        relay = RelayGateway(
            upstream_tcp=origin.tcp_address, tcp=("127.0.0.1", 0)
        ).start()
        try:
            host, port = relay.tcp_address
            with NetworkClient.connect_tcp(host, port) as c:
                with pytest.raises(RemoteError) as excinfo:
                    c.predict_batch(
                        [(prefix_of(1), prefix_of(5))], client="meas"
                    )
                assert excinfo.value.code == P.E_MALFORMED
        finally:
            relay.close()
            origin.close()

    def test_pushes_flow_through_and_refan_downstream(self):
        origin = make_origin()
        relay = RelayGateway(
            upstream_tcp=origin.tcp_address, tcp=("127.0.0.1", 0)
        ).start()
        boot = None
        try:
            host, port = relay.tcp_address
            boot = NetworkClient.connect_tcp(host, port)
            assert boot.bootstrap().day == 0
            for delta in toy_chain_deltas(3):
                origin.push_delta(delta)
            assert boot.wait_for_day(3) == 3
            assert boot.deltas_applied == 3
            assert relay.backend.day == 3
            assert relay.stats["deltas_pushed"] == 3
            # downstream answers equal the origin backend's, post-churn
            pair = (prefix_of(1), prefix_of(5))
            oracle = origin.backend.predict_batch([pair], None, None)
            assert boot.predict_batch([pair]) == oracle
        finally:
            if boot is not None:
                boot.close()
            relay.close()
            origin.close()

    def test_relay_serves_upstream_bytes_verbatim(self):
        # the distribution-tree contract: a relay re-serves the origin's
        # anchor payload and push payloads without re-encoding
        origin = make_origin()
        relay = RelayGateway(
            upstream_tcp=origin.tcp_address, tcp=("127.0.0.1", 0)
        ).start()
        probe = None
        try:
            for delta in toy_chain_deltas(2):
                origin.push_delta(delta)
            wait_until(
                lambda: relay.backend.day == 2, what="relay caught up"
            )
            o_host, o_port = origin.tcp_address
            r_host, r_port = relay.tcp_address
            with NetworkClient.connect_tcp(o_host, o_port) as at_origin:
                with NetworkClient.connect_tcp(r_host, r_port) as at_relay:
                    assert (
                        at_relay.fetch_atlas_bytes()
                        == at_origin.fetch_atlas_bytes()
                    )
            assert relay._delta_log == origin._delta_log
        finally:
            if probe is not None:
                probe.close()
            relay.close()
            origin.close()


class TestUpstreamLoss:
    def test_origin_close_marks_upstream_lost_but_keeps_serving(self):
        origin = make_origin()
        relay = RelayGateway(
            upstream_tcp=origin.tcp_address, tcp=("127.0.0.1", 0)
        ).start()
        try:
            origin.push_delta(toy_chain_deltas(1)[0])
            wait_until(lambda: relay.backend.day == 1, what="relay at day 1")
            origin.close()
            wait_until(
                lambda: relay.stats["upstream_lost"] == 1,
                what="upstream loss detected",
            )
            # frozen at its last good day, still answering
            host, port = relay.tcp_address
            with NetworkClient.connect_tcp(host, port) as c:
                assert c.server_day == 1
                assert c.predict(prefix_of(1), prefix_of(5)) is not None
        finally:
            relay.close()
            origin.close()

    def test_close_is_idempotent_and_stops_the_poller(self):
        origin = make_origin()
        relay = RelayGateway(
            upstream_tcp=origin.tcp_address, tcp=("127.0.0.1", 0)
        ).start()
        relay.close()
        relay.close()
        assert not relay._poller.is_alive()
        # a clean close is not an upstream loss
        assert relay.stats["upstream_lost"] == 0
        origin.close()
