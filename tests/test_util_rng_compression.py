"""Unit tests for deterministic RNG streams and compression accounting."""

import numpy as np
import pytest

from repro.util.compression import (
    compressed_size,
    compression_ratio,
    compression_report,
    megabytes,
)
from repro.util.rng import SeedSequenceFactory, derive_rng


class TestDeriveRng:
    def test_same_label_same_stream(self):
        a = derive_rng(5, "x").random(8)
        b = derive_rng(5, "x").random(8)
        assert np.array_equal(a, b)

    def test_different_labels_differ(self):
        a = derive_rng(5, "x").random(8)
        b = derive_rng(5, "y").random(8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(5, "x").random(8)
        b = derive_rng(6, "x").random(8)
        assert not np.array_equal(a, b)


class TestFactory:
    def test_rng_continues_stream(self):
        factory = SeedSequenceFactory(1)
        first = factory.rng("a").random(4)
        second = factory.rng("a").random(4)
        assert not np.array_equal(first, second)  # continued, not restarted

    def test_fresh_restarts(self):
        factory = SeedSequenceFactory(1)
        first = factory.rng("a").random(4)
        restarted = factory.fresh("a").random(4)
        assert np.array_equal(first, restarted)

    def test_child_independent(self):
        factory = SeedSequenceFactory(1)
        c1 = factory.child("day1").rng("x").random(4)
        c2 = factory.child("day2").rng("x").random(4)
        assert not np.array_equal(c1, c2)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            SeedSequenceFactory("abc")

    def test_issued_labels(self):
        factory = SeedSequenceFactory(1)
        factory.rng("b")
        factory.rng("a")
        assert factory.issued_labels() == ["a", "b"]


class TestCompression:
    def test_compressed_smaller_for_redundant(self):
        payload = b"abc" * 1000
        assert compressed_size(payload) < len(payload)

    def test_type_check(self):
        with pytest.raises(TypeError):
            compressed_size("not bytes")

    def test_ratio_empty(self):
        assert compression_ratio(b"") == 1.0

    def test_report_totals(self):
        report = compression_report({"a": b"x" * 100, "b": b"y" * 50})
        assert report["total"]["raw_bytes"] == 150
        assert report["a"]["raw_bytes"] == 100
        assert 0 < report["total"]["ratio"] <= 1.5

    def test_megabytes(self):
        assert megabytes(7_000_000) == 7.0
