"""The delta broadcast codec: lossless, order-preserving round trips.

The sharded service's correctness argument leans on one property: a
worker that applies ``decode_delta(encode_delta(d))`` must land on
*exactly* the atlas a consumer applying ``d`` directly lands on —
same dict orders (the compiled emission contract), same float bits,
same monthly-refresh datasets. These tests pin that property, plus the
framing validation.
"""

from __future__ import annotations

import copy
import random

import pytest

from helpers import toy_atlas

from repro.atlas.delta import (
    AtlasDelta,
    apply_delta,
    compute_delta,
)
from repro.atlas.model import LinkRecord
from repro.atlas.serialization import (
    decode_delta,
    encode_delta,
)
from repro.errors import AtlasFormatError


def _roundtrip(delta: AtlasDelta) -> AtlasDelta:
    return decode_delta(encode_delta(delta))


def _make_daily(atlas):
    nxt = copy.deepcopy(atlas)
    nxt.day += 1
    nxt.links[(10, 40)] = LinkRecord(latency_ms=3.14159265358979)
    nxt.links[(10, 20)] = LinkRecord(latency_ms=12.125, loss_rate=0.015625)
    del nxt.links[(20, 40)]
    nxt.link_loss[(10, 30)] = 0.123456789
    nxt.link_loss.pop((30, 10), None)
    nxt.three_tuples.add((9, 8, 7))
    nxt.three_tuples.discard((3, 1, 2))
    return nxt


class TestDailyRoundTrip:
    def test_applied_atlases_identical_including_dict_order(self):
        base = toy_atlas()
        delta = compute_delta(base, _make_daily(base))
        got = apply_delta(copy.deepcopy(base), _roundtrip(delta))
        want = apply_delta(copy.deepcopy(base), delta)
        assert list(got.links) == list(want.links), (
            "links dict order drives compiled emission order"
        )
        assert got.links == want.links
        assert got.link_loss == want.link_loss
        assert got.three_tuples == want.three_tuples
        assert got.day == want.day

    def test_floats_travel_bit_exact(self):
        base = toy_atlas()
        delta = compute_delta(base, _make_daily(base))
        decoded = _roundtrip(delta)
        for link, rec in delta.links_updated.items():
            assert decoded.links_updated[link].latency_ms == rec.latency_ms
            assert decoded.links_updated[link].loss_rate == rec.loss_rate
        assert decoded.loss_updated == delta.loss_updated

    def test_links_updated_order_preserved_not_sorted(self):
        # Build an update map whose iteration order is NOT sorted; the
        # broadcast codec must keep it (new links append in this order).
        delta = AtlasDelta(base_day=0, new_day=1)
        for link in [(900, 1), (5, 5), (300, 2), (1, 999)]:
            delta.links_updated[link] = LinkRecord(latency_ms=1.5)
        decoded = _roundtrip(delta)
        assert list(decoded.links_updated) == list(delta.links_updated)

    def test_sets_round_trip(self):
        delta = AtlasDelta(base_day=3, new_day=4)
        delta.links_removed = {(7, 8), (1, 2)}
        delta.loss_removed = {(9, 9)}
        delta.tuples_removed = {(1, 2, 3)}
        delta.tuples_added = {(4, 5, 6), (7, 8, 9)}
        decoded = _roundtrip(delta)
        assert decoded.links_removed == delta.links_removed
        assert decoded.loss_removed == delta.loss_removed
        assert decoded.tuples_removed == delta.tuples_removed
        assert decoded.tuples_added == delta.tuples_added
        assert (decoded.base_day, decoded.new_day) == (3, 4)
        assert not decoded.monthly_refresh


class TestMonthlyRoundTrip:
    def _monthly(self):
        base = _make_daily(toy_atlas())
        nxt = copy.deepcopy(base)
        nxt.day = 30
        # asymmetric relationship flip: only representable by a codec
        # that carries both directions (no a<b halving)
        nxt.relationship_codes[(1, 2)] = 3
        nxt.cluster_to_as[777] = 90_001
        nxt.as_degrees[90_001] = 4
        nxt.preferences.add((1, 2, 3))
        nxt.providers = dict(nxt.providers)
        nxt.providers[9] = frozenset({1, 2})
        nxt.prefix_providers = {100: frozenset({3})}
        nxt.upstreams = dict(nxt.upstreams)
        nxt.late_exit_pairs.add(frozenset((1, 5)))
        return base, nxt

    def test_monthly_refresh_datasets_identical(self):
        base, nxt = self._monthly()
        delta = compute_delta(base, nxt)
        assert delta.monthly_refresh, "day 30 must carry the refresh"
        got = apply_delta(copy.deepcopy(base), _roundtrip(delta))
        want = apply_delta(copy.deepcopy(base), delta)
        for field in (
            "prefix_to_cluster",
            "prefix_to_as",
            "cluster_to_as",
            "as_degrees",
            "preferences",
            "providers",
            "prefix_providers",
            "upstreams",
            "relationship_codes",
            "late_exit_pairs",
        ):
            assert getattr(got, field) == getattr(want, field), field

    def test_asymmetric_relationship_codes_survive(self):
        base, nxt = self._monthly()
        decoded = _roundtrip(compute_delta(base, nxt))
        codes = decoded.monthly_refresh["relationship_codes"]
        assert codes == nxt.relationship_codes
        assert codes[(1, 2)] == 3 and codes[(2, 1)] != 3


class TestChainEquivalence:
    def test_random_chain_through_the_codec(self, atlas):
        """A seeded multi-day churn chain applied via decoded broadcasts
        equals the object-delta chain at every step."""
        rng = random.Random(0xC0DEC)
        direct = copy.deepcopy(atlas)
        direct.day = 28  # crosses the monthly boundary at 30
        wired = copy.deepcopy(direct)
        current = copy.deepcopy(direct)
        for _ in range(4):
            nxt = copy.deepcopy(current)
            nxt.day += 1
            links = list(nxt.links)
            for link in rng.sample(links, k=max(1, len(links) // 4)):
                rec = nxt.links[link]
                nxt.links[link] = LinkRecord(latency_ms=rec.latency_ms * 1.03125)
            for link in rng.sample(links, k=2):
                nxt.links.pop(link, None)
                nxt.link_loss.pop(link, None)
            clusters = sorted({c for ab in nxt.links for c in ab})
            a, b = rng.sample(clusters, 2)
            nxt.links.setdefault((a, b), LinkRecord(latency_ms=4.25))
            if nxt.day % 30 == 0:
                for pair in list(nxt.relationship_codes)[:1]:
                    nxt.relationship_codes[pair] = (
                        nxt.relationship_codes[pair] % 3
                    ) + 1
            delta = compute_delta(current, nxt)
            direct = apply_delta(direct, delta)
            wired = apply_delta(wired, _roundtrip(delta))
            assert list(wired.links) == list(direct.links)
            assert wired.links == direct.links
            assert wired.link_loss == direct.link_loss
            assert wired.three_tuples == direct.three_tuples
            assert wired.relationship_codes == direct.relationship_codes
            current = nxt


class TestFraming:
    def test_bad_magic_rejected(self):
        with pytest.raises(AtlasFormatError):
            decode_delta(b"NOPE" + b"\x00" * 16)

    def test_bad_version_rejected(self):
        delta = AtlasDelta(base_day=0, new_day=1)
        payload = bytearray(encode_delta(delta))
        payload[4] = 99
        with pytest.raises(AtlasFormatError):
            decode_delta(bytes(payload))

    def test_truncated_section_rejected(self):
        base = toy_atlas()
        payload = encode_delta(compute_delta(base, _make_daily(base)))
        with pytest.raises(Exception):
            decode_delta(payload[: len(payload) // 2])


class TestTypedCodecErrors:
    """PR 5 hardening: a truncated / oversized / corrupt frame raises
    :class:`~repro.errors.CodecError` (a typed
    :class:`~repro.errors.AtlasFormatError`), never a raw
    ``struct.error`` / ``IndexError`` / ``zlib.error`` — the network
    gateway turns these into clean ERROR frames for untrusted bytes."""

    def _payload(self) -> bytes:
        base = toy_atlas()
        return encode_delta(compute_delta(base, _make_daily(base)))

    def test_every_truncation_is_typed(self):
        from repro.errors import CodecError

        payload = self._payload()
        decode_delta(payload)  # sanity: intact frame decodes
        saw_codec_error = False
        for cut in range(len(payload)):
            with pytest.raises(AtlasFormatError):
                decode_delta(payload[:cut])
            try:
                decode_delta(payload[:cut])
            except CodecError:
                saw_codec_error = True
            except AtlasFormatError:
                pass
        assert saw_codec_error, "section truncations must raise CodecError"

    def test_oversized_declared_section_rejected(self):
        import struct

        from repro.errors import CodecError
        from repro.atlas.serialization import MAX_SECTION_BYTES

        payload = bytearray(self._payload())
        # first section header: magic(4) + <HII>(10) + count(1), then
        # name_len, name, comp_len, raw_len
        offset = 15
        name_len = payload[offset]
        raw_len_at = offset + 1 + name_len + 4
        struct.pack_into("<I", payload, raw_len_at, MAX_SECTION_BYTES + 1)
        with pytest.raises(CodecError, match="declares"):
            decode_delta(bytes(payload))

    def test_corrupt_compressed_bytes_rejected(self):
        from repro.errors import CodecError

        payload = bytearray(self._payload())
        offset = 15
        name_len = payload[offset]
        comp_start = offset + 1 + name_len + 8
        payload[comp_start] ^= 0xFF  # break the zlib stream
        with pytest.raises(CodecError, match="corrupt"):
            decode_delta(bytes(payload))

    def test_decompression_bomb_is_bounded(self):
        import struct
        import zlib

        from repro.errors import CodecError

        # a frame whose section declares 16 raw bytes but carries a
        # compressed stream inflating to 64 MB: the decoder must stop
        # at raw_len + 1, not materialize the bomb
        bomb = zlib.compress(b"\x00" * (64 * 1024 * 1024), 9)
        name = b"links_removed"
        payload = bytearray()
        payload += b"INDB"
        payload += struct.pack("<HII", 1, 0, 1)
        payload += struct.pack("<B", 1)
        payload += struct.pack("<B", len(name)) + name
        payload += struct.pack("<II", len(bomb), 16)
        payload += bomb
        with pytest.raises(CodecError, match="length mismatch"):
            decode_delta(bytes(payload))

    def test_trailing_bytes_after_last_section_rejected(self):
        from repro.errors import CodecError

        with pytest.raises(CodecError, match="trailing"):
            decode_delta(self._payload() + b"\x00" * 16)

    def test_misaligned_rows_rejected(self):
        from repro.errors import CodecError
        from repro.atlas.serialization import _unpack_rows

        with pytest.raises(CodecError, match="aligned"):
            _unpack_rows("<II", b"\x00" * 7)

    def test_atlas_decoder_shares_the_hardening(self):
        from repro.errors import CodecError
        from repro.atlas.serialization import decode_atlas, encode_atlas

        payload = encode_atlas(toy_atlas())
        with pytest.raises(AtlasFormatError):
            decode_atlas(payload[:5])
        with pytest.raises(CodecError):
            decode_atlas(payload[: len(payload) - 3])

    def test_random_mutations_never_leak_raw_errors(self):
        from repro.errors import AtlasError

        payload = self._payload()
        rng = random.Random(0xD17A)
        for _ in range(120):
            mutated = bytearray(payload)
            for _ in range(rng.randrange(1, 5)):
                mutated[rng.randrange(len(mutated))] = rng.randrange(256)
            try:
                decode_delta(bytes(mutated))
            except AtlasError:
                pass  # typed: fine (CodecError / AtlasFormatError)
