"""Tests for BGP feeds, frontier assignment, and link-latency inference."""

import numpy as np
import pytest

from repro.measurement.bgp_feed import collect_bgp_feed
from repro.measurement.frontier import assign_links_to_vantage_points
from repro.measurement.linklatency import LinkLatencyEstimator
from repro.routing.bgp import RouteOracle
from repro.routing.forwarding import ForwardingEngine
from repro.topology import TopologyConfig, generate_topology
from repro.util.ids import PrefixId


@pytest.fixture(scope="module")
def topo():
    return generate_topology(TopologyConfig(seed=71, n_tier1=4, n_tier2=12, n_tier3=30))


class TestBgpFeed:
    def test_origins_correct(self, topo):
        feed = collect_bgp_feed(topo, RouteOracle(topo), n_peers=8, seed=1)
        mapping = feed.prefix_to_as()
        for info in topo.prefixes.values():
            got = mapping.get(info.prefix.index)
            assert got == info.origin_asn

    def test_infra_origins_included(self, topo):
        feed = collect_bgp_feed(topo, RouteOracle(topo), n_peers=8, seed=1)
        mapping = feed.prefix_to_as()
        infra = topo.infra_prefix_origins()
        assert infra  # non-empty
        for prefix_index, asn in infra.items():
            assert mapping[prefix_index] == asn

    def test_paths_terminate_at_origin(self, topo):
        feed = collect_bgp_feed(topo, RouteOracle(topo), n_peers=8, seed=1)
        for (peer, prefix_index), path in feed.paths.items():
            assert path[0] == peer
            assert path[-1] == topo.prefixes[PrefixId(prefix_index)].origin_asn

    def test_origin_of_prefix(self, topo):
        feed = collect_bgp_feed(topo, RouteOracle(topo), n_peers=8, seed=1)
        some_prefix = next(iter(topo.prefixes.values()))
        assert feed.origin_of_prefix(some_prefix.prefix.index) == some_prefix.origin_asn


class TestFrontier:
    def test_redundancy_respected(self):
        paths = {
            0: [(1, 2, 3), (1, 2, 4)],
            1: [(5, 2, 3)],
            2: [(1, 2, 3, 6)],
        }
        assignment = assign_links_to_vantage_points(paths, redundancy=2)
        for link, entries in assignment.assignments.items():
            vps = [vp for vp, _, _ in entries]
            assert len(vps) == len(set(vps))
            assert 1 <= len(vps) <= 2

    def test_all_links_covered(self):
        paths = {0: [(1, 2), (2, 3)], 1: [(3, 4)]}
        assignment = assign_links_to_vantage_points(paths, redundancy=1)
        assert set(assignment.assignments) == {(1, 2), (2, 3), (3, 4)}

    def test_assignment_uses_observing_vp(self):
        paths = {0: [(1, 2)], 1: [(3, 4)]}
        assignment = assign_links_to_vantage_points(paths, redundancy=2)
        assert assignment.measurers_of((1, 2)) == [0]
        assert assignment.measurers_of((3, 4)) == [1]

    def test_load_balancing(self):
        # Two VPs see identical paths; redundancy 1 should spread links.
        shared = [(1, 2, 3, 4, 5)]
        assignment = assign_links_to_vantage_points(
            {0: shared, 1: shared}, redundancy=1
        )
        loads = assignment.load
        assert abs(loads[0] - loads[1]) <= 1

    def test_rejects_bad_redundancy(self):
        with pytest.raises(ValueError):
            assign_links_to_vantage_points({}, redundancy=0)


class TestLinkLatency:
    def test_recovers_clean_samples(self):
        est = LinkLatencyEstimator()
        # Symmetric context: rtt grows by exactly 2*latency per hop.
        for _ in range(5):
            est.add_traceroute_samples([(1, 10.0), (2, 30.0), (3, 70.0)])
        assert est.estimate((1, 2)) == pytest.approx(10.0)
        assert est.estimate((2, 3)) == pytest.approx(20.0)

    def test_shorth_rejects_asymmetric_outliers(self):
        est = LinkLatencyEstimator()
        # Six consistent samples at 10ms, three wild asymmetric ones.
        for _ in range(6):
            est.add_traceroute_samples([(1, 0.0), (2, 20.0)])
        for bias in (80.0, -40.0, 120.0):
            est.add_traceroute_samples([(1, 0.0), (2, 20.0 + bias)])
        assert est.estimate((1, 2)) == pytest.approx(10.0, abs=1.0)

    def test_direction_reconciliation(self):
        est = LinkLatencyEstimator()
        est.add_traceroute_samples([(1, 0.0), (2, 18.0)])
        est.add_traceroute_samples([(2, 0.0), (1, 22.0)])
        estimates = est.estimates()
        assert estimates[(1, 2)] == pytest.approx(10.0)
        assert estimates[(2, 1)] == pytest.approx(10.0)

    def test_min_samples_filter(self):
        est = LinkLatencyEstimator()
        est.add_traceroute_samples([(1, 0.0), (2, 20.0)])
        assert (1, 2) in est.estimates(min_samples=1)
        assert (1, 2) not in est.estimates(min_samples=2)

    def test_negative_samples_clipped(self):
        est = LinkLatencyEstimator()
        est.add_traceroute_samples([(1, 50.0), (2, 10.0)])  # reverse shrinks
        assert est.estimate((1, 2)) >= 0.05

    def test_no_samples_none(self):
        est = LinkLatencyEstimator()
        assert est.estimate((9, 9)) is None
        assert est.n_samples((9, 9)) == 0
