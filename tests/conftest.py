"""Shared fixtures: one small scenario per test session.

The "small" scenario (tiny synthetic Internet, 14 atlas vantage points)
builds in about a second and is shared across all tests that need a
realistic pipeline; tests that mutate state must clone what they touch.
"""

from __future__ import annotations

import pytest

from repro.eval import get_scenario


@pytest.fixture(scope="session")
def scenario():
    return get_scenario("small")


@pytest.fixture(scope="session")
def topo(scenario):
    return scenario.topology(0)


@pytest.fixture(scope="session")
def engine(scenario):
    return scenario.engine(0)


@pytest.fixture(scope="session")
def atlas(scenario):
    return scenario.atlas(0)


@pytest.fixture(scope="session")
def cluster_map(scenario):
    return scenario.cluster_map(0)


@pytest.fixture(scope="session")
def validation(scenario):
    return scenario.validation_set()


import sys
from pathlib import Path

# Make tests/helpers.py importable as `helpers` regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))
