"""Shard/single-process equivalence over a full delta chain.

The sharded service's contract: an N-shard
:class:`~repro.serve.service.PredictionService` — worker processes over
shared-memory CSR, consistent-hash fan-out, binary delta broadcast — is
**observably identical** to a single-process
:class:`~repro.client.server.AtlasServer` runtime over the same atlas
lineage. This suite drives both sides through the same ≥10-day seeded
churn chain (reusing the runtime suite's chain builder, which crosses
the day-30 monthly recompile boundary) and asserts bit-for-bit equal
answers every day, for:

* pooled one-way ``predict_batch`` under multiple predictor configs,
* two-way ``query_batch`` ``PathInfo``\\ s against a co-located client,
* a FROM_SRC-merged **measuring client** (registered on every shard,
  re-measured and re-registered mid-chain to exercise the rev
  handshake),

plus fleet convergence (equal per-shard graph fingerprints) after every
broadcast.
"""

from __future__ import annotations

import copy
import random

import pytest

import test_runtime_delta_chain as chainmod

from repro.atlas.delta import compute_delta
from repro.client import AtlasServer, ClientConfig, INanoClient
from repro.core.predictor import PredictorConfig

N_SHARDS = 3
REMEASURE_STEP = 5  # mid-chain re-measure day (before the monthly boundary)


@pytest.fixture(scope="module")
def chain(atlas):
    return chainmod._build_chain(atlas)


class TestShardedEquivalence:
    def test_fleet_matches_single_process_across_chain(self, chain, scenario):
        server = AtlasServer()
        server.publish(copy.deepcopy(chain[0]))
        ref_runtime = server.runtime()
        service = server.serve(n_shards=N_SHARDS)
        try:
            self._drive_chain(service, server, ref_runtime, chain, scenario)
        finally:
            service.close()

    def _drive_chain(self, service, server, ref_runtime, chain, scenario):
        # Reference consumers, all over the server's own runtime (one
        # compiled graph + one pool, the single-process deployment).
        plain_client = INanoClient(server, shared_runtime=ref_runtime)
        plain_client.fetch()
        source = scenario.validation_set().sources[0]
        measuring = INanoClient(
            server,
            vantage=source.vantage,
            measurement_toolkit=scenario.simulator(0),
            cluster_map=scenario.cluster_map(0),
            config=ClientConfig(use_swarm=False),
            shared_runtime=ref_runtime,
        )
        measuring.fetch()
        measuring.measure(n_prefixes=20)
        assert measuring.from_src_links, "measuring client must carry FROM_SRC"

        def mirror_measuring_client():
            service.register_client(
                "meas",
                measuring.from_src_links,
                client_cluster_as=measuring.cluster_map.cluster_asn,
                from_src_prefixes={source.vantage.prefix_index},
                rev=measuring._from_src_rev,
            )

        mirror_measuring_client()
        prefixes = sorted(chain[0].prefix_to_cluster)
        rng = random.Random(0x5EED)
        configs = [PredictorConfig.inano(), PredictorConfig.graph_baseline()]

        def check_day(day):
            pairs = [tuple(rng.sample(prefixes, 2)) for _ in range(12)]
            for config in configs:
                pooled = ref_runtime.pool.predictor(config)
                assert service.predict_batch(pairs, config) == (
                    pooled.predict_batch(pairs)
                ), (day, config.ablation_name())
            assert service.query_batch(pairs[:8]) == (
                plain_client.query_batch(pairs[:8])
            ), day
            measuring_pairs = [
                (source.vantage.prefix_index, dst)
                for dst in rng.sample(prefixes, 6)
            ]
            assert service.query_batch(
                measuring_pairs,
                config=measuring.config.predictor,
                client="meas",
            ) == measuring.query_batch(measuring_pairs), (day, "measuring")

        check_day(chain[0].day)
        modes = set()
        for step, (base, nxt) in enumerate(zip(chain, chain[1:])):
            delta = compute_delta(base, nxt)
            ref_runtime.apply_delta(delta)
            report = service.apply_delta(delta)
            modes.update(report["modes"])
            assert report["day"] == nxt.day == ref_runtime.atlas.day
            if step == REMEASURE_STEP:
                # Re-measure mid-chain: the client's FROM_SRC plane and
                # rev change; the mirrored registration must follow.
                measuring.measure(n_prefixes=10)
                mirror_measuring_client()
            check_day(nxt.day)
        assert len(chain) - 1 >= 10, "chain must span >= 10 deltas"
        assert "patch" in modes, "daily deltas must take the patch path"
        assert "recompile" in modes, "monthly boundary must recompile"
        assert service.converged(), "all shards on one graph version"
        assert service.day == chain[-1].day


class TestSkewedEquivalence:
    """Hotspot replication under churn: a 90%-skewed workload drives
    promotions (and, after the traffic shifts, demotions) *while* the
    delta chain is advancing — and every answer stays bit-for-bit equal
    to the single-process oracle, because replication is pure routing
    over shards the broadcast already keeps identical."""

    SHIFT_STEP = 5  # traffic moves off the hot set after this delta

    def test_hot_set_promotes_demotes_and_stays_bit_for_bit(
        self, chain, scenario
    ):
        server = AtlasServer()
        server.publish(copy.deepcopy(chain[0]))
        ref_runtime = server.runtime()
        service = server.serve(
            n_shards=N_SHARDS,
            heat=dict(
                window=32,
                alpha=0.5,
                promote_threshold=5.0,
                demote_threshold=1.0,
                replicas=2,
            ),
        )
        try:
            prefixes = sorted(chain[0].prefix_to_cluster)
            rng = random.Random(0xD15EA5E)
            hot_dsts = prefixes[:3]
            cold_dsts = prefixes[3:]

            def day_pairs(shifted: bool) -> list[tuple[int, int]]:
                dsts = cold_dsts[:3] if shifted else hot_dsts
                pairs = [
                    (rng.choice(prefixes), rng.choice(dsts))
                    for _ in range(36)  # 90% of the day's queries
                ]
                pairs += [
                    tuple(rng.sample(prefixes, 2)) for _ in range(4)
                ]
                return pairs

            def check_day(day, shifted):
                pairs = day_pairs(shifted)
                pooled = ref_runtime.pool.predictor(None)
                assert service.predict_batch(pairs) == (
                    pooled.predict_batch(pairs)
                ), day

            check_day(chain[0].day, shifted=False)
            promoted_mid_chain = False
            for step, (base, nxt) in enumerate(zip(chain, chain[1:])):
                delta = compute_delta(base, nxt)
                ref_runtime.apply_delta(delta)
                service.apply_delta(delta)
                shifted = step > self.SHIFT_STEP
                if not shifted and service.heat.hot:
                    promoted_mid_chain = True
                check_day(nxt.day, shifted)
            snap = service.heat.snapshot()
            assert promoted_mid_chain, "hot set must form while churning"
            assert snap["heat.promotions"] > 0
            assert snap["heat.demotions"] > 0, (
                "shifted traffic must decay the old hot set mid-chain"
            )
            assert service.stats["replica_routed"] > 0, (
                "hot destinations must actually fan out to replicas"
            )
            assert service.converged()
            assert service.day == chain[-1].day
        finally:
            service.close()
