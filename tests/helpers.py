"""Hand-built micro-fixtures for unit tests of the prediction core.

``toy_atlas()`` builds a five-AS Internet by hand::

      AS1 (T1) ---peer--- AS2 (T1)
       |                   |
      AS3 (customer)      AS4 (customer)
         \\               /
          AS5 (customer of both AS3 and AS4)

Each AS has one cluster (cluster id == ASN * 10) and one prefix
(prefix index == ASN * 100). All inter-cluster links exist in both
directions with 10ms latency. Relationship codes, degrees, tuples and
providers are filled in consistently, so individual checks can be
exercised by removing or adding entries.
"""

from __future__ import annotations

from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.relationships import REL_CUSTOMER, REL_PEER, REL_PROVIDER


def cluster_of(asn: int) -> int:
    return asn * 10


def prefix_of(asn: int) -> int:
    return asn * 100


def toy_atlas() -> Atlas:
    atlas = Atlas(day=0)
    edges = [
        (1, 2, "peer"),
        (1, 3, "provider"),   # AS1 provides transit to AS3
        (2, 4, "provider"),
        (3, 5, "provider"),
        (4, 5, "provider"),
    ]
    for a, b, kind in edges:
        ca, cb = cluster_of(a), cluster_of(b)
        atlas.links[(ca, cb)] = LinkRecord(latency_ms=10.0)
        atlas.links[(cb, ca)] = LinkRecord(latency_ms=10.0)
        if kind == "peer":
            atlas.relationship_codes[(a, b)] = REL_PEER
            atlas.relationship_codes[(b, a)] = REL_PEER
        else:
            atlas.relationship_codes[(a, b)] = REL_PROVIDER
            atlas.relationship_codes[(b, a)] = REL_CUSTOMER
    for asn in (1, 2, 3, 4, 5):
        atlas.cluster_to_as[cluster_of(asn)] = asn
        atlas.prefix_to_cluster[prefix_of(asn)] = cluster_of(asn)
        atlas.prefix_to_as[prefix_of(asn)] = asn
    atlas.as_degrees = {1: 2, 2: 2, 3: 2, 4: 2, 5: 2}
    # Every consecutive triple along legitimate routes, commutativity-closed.
    for triple in [
        (3, 1, 2), (1, 2, 4), (2, 4, 5), (3, 5, 4), (1, 3, 5), (2, 4, 5), (4, 5, 3),
    ]:
        a, b, c = triple
        atlas.three_tuples.add((a, b, c))
        atlas.three_tuples.add((c, b, a))
    atlas.providers = {
        5: frozenset({3, 4}),
        3: frozenset({1}),
        4: frozenset({2}),
    }
    atlas.upstreams = {
        5: frozenset({3, 4}),
        3: frozenset({1, 5}),
        4: frozenset({2, 5}),
        1: frozenset({2, 3}),
        2: frozenset({1, 4}),
    }
    return atlas
