"""Gateway admission control: rate limits, shedding, caps, TLS + auth.

The contract under test: an over-limit client always gets a *typed*
refusal — a RETRY frame with a retry-after hint, or an ERROR with a
specific code — never a silent drop or a hung socket, and the
:class:`~repro.net.client.NetworkClient` recovers transparently with
capped exponential backoff. Policy math (token buckets, queue
thresholds, pruning) is unit-tested against an explicit clock; the
wire behavior is tested end-to-end against a live gateway.
"""

from __future__ import annotations

import ssl

import pytest

from helpers import prefix_of, toy_atlas

from repro.client import AtlasServer
from repro.errors import NetworkError, RemoteError
from repro.net import AdmissionControl, NetworkClient, NetworkGateway, TokenBucket
from repro.net import protocol as P
from repro.net.admission import MAX_TRACKED_CLIENTS


def make_server() -> AtlasServer:
    server = AtlasServer()
    server.publish(toy_atlas())
    return server


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        assert bucket.take(0.0) is None
        assert bucket.take(0.0) is None
        assert bucket.take(0.0) is None
        # empty: the hint is exactly the time for one token at 10/s
        assert bucket.take(0.0) == pytest.approx(0.1)
        # a refused take consumed nothing
        assert bucket.take(0.0) == pytest.approx(0.1)
        # 0.05s later half a token is back; need 0.05s more
        assert bucket.take(0.05) == pytest.approx(0.05)
        assert bucket.take(0.1) is None

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
        assert bucket.take(0.0) is None
        for _ in range(2):  # a long idle stretch refills to burst, not beyond
            assert bucket.take(1000.0) is None
        assert bucket.take(1000.0) == pytest.approx(0.01)

    def test_time_never_runs_backward(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, now=100.0)
        assert bucket.take(100.0) is None
        # a stale timestamp must not mint tokens or move the clock back
        assert bucket.take(50.0) == pytest.approx(1.0)
        assert bucket.idle_for(100.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)


class TestAdmissionPolicy:
    def test_defaults_admit_everything(self):
        ac = AdmissionControl()
        assert ac.enabled is False
        assert ac.admit_connection(10_000) is True
        assert ac.admit_request("c", 0.0, queue_depth=10_000) is None

    def test_queue_shed_checked_before_rate(self):
        ac = AdmissionControl(rate=100.0, max_queue_depth=4)
        refusal = ac.admit_request("c", 0.0, queue_depth=8)
        assert refusal is not None
        retry_after, reason = refusal
        assert "queue depth 8" in reason
        assert 0.0 < retry_after <= 1.0
        # the drowning node never touched c's bucket
        assert ac.snapshot()["tracked_clients"] == 0
        assert ac.stats["shed_queue"] == 1 and ac.stats["shed_rate"] == 0

    def test_per_client_buckets_are_independent(self):
        ac = AdmissionControl(rate=10.0, burst=1.0)
        assert ac.admit_request("a", 0.0) is None
        refusal = ac.admit_request("a", 0.0)
        assert refusal is not None and "rate limit" in refusal[1]
        assert ac.admit_request("b", 0.0) is None  # b has its own burst
        assert ac.stats == {
            "admitted": 2,
            "shed_rate": 1,
            "shed_queue": 0,
            "connections_rejected": 0,
        }

    def test_connection_cap(self):
        ac = AdmissionControl(max_connections=2)
        assert ac.admit_connection(0) and ac.admit_connection(1)
        assert ac.admit_connection(2) is False
        assert ac.stats["connections_rejected"] == 1

    def test_tracked_clients_bounded(self):
        ac = AdmissionControl(rate=1000.0)
        for i in range(MAX_TRACKED_CLIENTS + 50):
            # later clients are the recently-active ones that survive
            ac.admit_request(f"client-{i}", now=float(i) * 1e-3)
        assert ac.snapshot()["tracked_clients"] <= MAX_TRACKED_CLIENTS
        # the most recent client kept its bucket through the prune
        last = f"client-{MAX_TRACKED_CLIENTS + 49}"
        assert last in ac._buckets

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionControl(rate=-1.0)
        with pytest.raises(ValueError):
            AdmissionControl(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionControl(max_connections=0)


class TestRateLimitOverWire:
    def test_over_rate_client_gets_retry_and_recovers(self):
        gw = NetworkGateway(
            make_server(),
            tcp=("127.0.0.1", 0),
            admission=AdmissionControl(rate=40.0, burst=2.0),
        ).start()
        try:
            host, port = gw.tcp_address
            pair = (prefix_of(1), prefix_of(5))
            want = gw.backend.predict_batch([pair], None, None)[0]
            with NetworkClient.connect_tcp(host, port) as c:
                # HELLO is not a query — the full burst is still ours
                for _ in range(8):
                    assert c.predict(*pair) == want
                # more than burst requests landed instantly: some were
                # shed with a typed RETRY and re-sent after backoff
                assert c.retries > 0
            assert gw.stats["retries_sent"] > 0
            assert gw.stats["retries_sent"] == gw.admission.stats["shed_rate"]
            assert gw.admission.stats["admitted"] >= 8
        finally:
            gw.close()

    def test_pipeline_retries_shed_slots(self):
        gw = NetworkGateway(
            make_server(),
            tcp=("127.0.0.1", 0),
            admission=AdmissionControl(rate=50.0, burst=3.0),
        ).start()
        try:
            host, port = gw.tcp_address
            pairs = [
                (prefix_of(a), prefix_of(b)) for a in (1, 2, 3) for b in (4, 5)
            ] * 2
            oracle = gw.backend.predict_batch(pairs, None, None)
            with NetworkClient.connect_tcp(host, port) as c:
                # 12 pipelined predicts against a 3-token burst: the
                # answers must still come back complete and in order
                assert c.pipeline_predict(pairs) == oracle
                assert c.retries > 0
        finally:
            gw.close()

    def test_retries_exhausted_is_a_typed_failure(self):
        gw = NetworkGateway(
            make_server(),
            tcp=("127.0.0.1", 0),
            admission=AdmissionControl(rate=0.001, burst=1.0),
        ).start()
        try:
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port, max_retries=0) as c:
                pair = (prefix_of(1), prefix_of(5))
                assert c.predict(*pair) is not None  # the one burst token
                with pytest.raises(NetworkError, match="shed .* rate limit"):
                    c.predict(*pair)
                # the connection survived the refusal: non-query frames
                # (bootstrap, subscribe) are never shed
                assert c.subscribe(True) == gw.backend.day
                assert c.bootstrap() is not None
                assert c.mode == "local"
        finally:
            gw.close()

    def test_queue_shed_reports_depth(self):
        # max_queue_depth=1 with serialized inflight accounting is
        # impossible to trip from outside deterministically, so drive
        # the gateway's own policy object the way _dispatch does
        gw = NetworkGateway(
            make_server(),
            tcp=("127.0.0.1", 0),
            admission=AdmissionControl(max_queue_depth=2),
        ).start()
        try:
            refusal = gw.admission.admit_request("peer", 0.0, queue_depth=5)
            assert refusal is not None
            assert "queue depth 5 >= shed threshold 2" in refusal[1]
            # and a real client under the threshold sails through
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port) as c:
                assert c.predict(prefix_of(1), prefix_of(5)) is not None
        finally:
            gw.close()


class TestConnectionCap:
    def test_over_cap_connection_gets_typed_error(self):
        gw = NetworkGateway(
            make_server(),
            tcp=("127.0.0.1", 0),
            admission=AdmissionControl(max_connections=1),
        ).start()
        try:
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port) as first:
                with pytest.raises(RemoteError) as excinfo:
                    NetworkClient.connect_tcp(host, port)
                assert excinfo.value.code == P.E_OVERLOADED
                assert "connection limit" in str(excinfo.value)
                assert gw.stats["connections_rejected"] == 1
                # the admitted client is unaffected
                assert first.predict(prefix_of(1), prefix_of(5)) is not None
            # the slot frees on close
            with NetworkClient.connect_tcp(host, port) as second:
                assert second.predict(prefix_of(1), prefix_of(5)) is not None
        finally:
            gw.close()


class TestAuth:
    TOKEN = "fleet-secret-42"

    def _gateway(self):
        return NetworkGateway(
            make_server(), tcp=("127.0.0.1", 0), auth_token=self.TOKEN
        ).start()

    def test_good_token_admitted(self):
        gw = self._gateway()
        try:
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port, auth_token=self.TOKEN) as c:
                assert c.predict(prefix_of(1), prefix_of(5)) is not None
            assert gw.stats["auth_failures"] == 0
        finally:
            gw.close()

    @pytest.mark.parametrize("bad", [None, "wrong-secret", ""])
    def test_bad_or_missing_token_rejected_typed(self, bad):
        gw = self._gateway()
        try:
            host, port = gw.tcp_address
            with pytest.raises(RemoteError) as excinfo:
                NetworkClient.connect_tcp(host, port, auth_token=bad)
            assert excinfo.value.code == P.E_UNAUTHORIZED
            assert gw.stats["auth_failures"] == 1
            # rejection closes the connection; the gateway keeps serving
            with NetworkClient.connect_tcp(host, port, auth_token=self.TOKEN) as c:
                assert c.predict(prefix_of(1), prefix_of(5)) is not None
        finally:
            gw.close()

    def test_no_gateway_token_ignores_client_token(self):
        gw = NetworkGateway(make_server(), tcp=("127.0.0.1", 0)).start()
        try:
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(host, port, auth_token="whatever") as c:
                assert c.predict(prefix_of(1), prefix_of(5)) is not None
        finally:
            gw.close()


def _self_signed_cert(tmp_path):
    """A localhost cert/key pair (SAN: localhost + 127.0.0.1) written to
    disk, returning (cert_path, key_path, cert_pem)."""
    cryptography = pytest.importorskip("cryptography")  # noqa: F841
    import datetime
    import ipaddress

    from cryptography import x509
    from cryptography.hazmat.primitives import hashes, serialization
    from cryptography.hazmat.primitives.asymmetric import rsa
    from cryptography.x509.oid import NameOID

    key = rsa.generate_private_key(public_exponent=65537, key_size=2048)
    name = x509.Name(
        [x509.NameAttribute(NameOID.COMMON_NAME, "localhost")]
    )
    now = datetime.datetime(2026, 1, 1)
    cert = (
        x509.CertificateBuilder()
        .subject_name(name)
        .issuer_name(name)
        .public_key(key.public_key())
        .serial_number(x509.random_serial_number())
        .not_valid_before(now)
        .not_valid_after(now + datetime.timedelta(days=36500))
        .add_extension(
            x509.SubjectAlternativeName(
                [
                    x509.DNSName("localhost"),
                    x509.IPAddress(ipaddress.IPv4Address("127.0.0.1")),
                ]
            ),
            critical=False,
        )
        .sign(key, hashes.SHA256())
    )
    cert_pem = cert.public_bytes(serialization.Encoding.PEM)
    cert_path = tmp_path / "gw.crt"
    key_path = tmp_path / "gw.key"
    cert_path.write_bytes(cert_pem)
    key_path.write_bytes(
        key.private_bytes(
            serialization.Encoding.PEM,
            serialization.PrivateFormat.TraditionalOpenSSL,
            serialization.NoEncryption(),
        )
    )
    return str(cert_path), str(key_path), cert_pem.decode()


class TestTLS:
    @pytest.fixture(scope="class")
    def tls(self, tmp_path_factory):
        cert, key, pem = _self_signed_cert(tmp_path_factory.mktemp("tls"))
        server_ctx = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
        server_ctx.load_cert_chain(cert, key)
        client_ctx = ssl.create_default_context(cadata=pem)
        return server_ctx, client_ctx

    def test_tls_round_trip_with_verified_cert(self, tls):
        server_ctx, client_ctx = tls
        gw = NetworkGateway(
            make_server(), tcp=("127.0.0.1", 0), ssl_context=server_ctx
        ).start()
        try:
            host, port = gw.tcp_address
            with NetworkClient.connect_tcp(
                host, port, ssl_context=client_ctx, server_hostname="localhost"
            ) as c:
                pair = (prefix_of(1), prefix_of(5))
                assert c.predict(*pair) == gw.backend.predict_batch(
                    [pair], None, None
                )[0]
                # push delivery works through the TLS transport too
                assert c.bootstrap().day == 0
        finally:
            gw.close()

    def test_plaintext_client_cannot_talk_to_tls_gateway(self, tls):
        server_ctx, _ = tls
        gw = NetworkGateway(
            make_server(), tcp=("127.0.0.1", 0), ssl_context=server_ctx
        ).start()
        try:
            host, port = gw.tcp_address
            with pytest.raises((NetworkError, OSError)):
                with NetworkClient.connect_tcp(host, port, timeout=2.0) as c:
                    c.predict(prefix_of(1), prefix_of(5))
        finally:
            gw.close()

    def test_tls_with_bad_auth_token_gets_typed_error(self, tls):
        # the acceptance scenario: encrypted transport up, auth still
        # refused with a typed code — not a TLS alert, not a hang
        server_ctx, client_ctx = tls
        gw = NetworkGateway(
            make_server(),
            tcp=("127.0.0.1", 0),
            ssl_context=server_ctx,
            auth_token="right",
        ).start()
        try:
            host, port = gw.tcp_address
            with pytest.raises(RemoteError) as excinfo:
                NetworkClient.connect_tcp(
                    host,
                    port,
                    ssl_context=client_ctx,
                    server_hostname="localhost",
                    auth_token="wrong",
                )
            assert excinfo.value.code == P.E_UNAUTHORIZED
            with NetworkClient.connect_tcp(
                host,
                port,
                ssl_context=client_ctx,
                server_hostname="localhost",
                auth_token="right",
            ) as c:
                assert c.predict(prefix_of(1), prefix_of(5)) is not None
        finally:
            gw.close()
