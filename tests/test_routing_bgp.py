"""Tests for ground-truth BGP route computation."""

import pytest

from repro.errors import RoutingError
from repro.routing.bgp import RouteOracle, compute_routes
from repro.topology import TopologyConfig, generate_topology
from repro.topology.relationships import Relationship


@pytest.fixture(scope="module")
def topo():
    return generate_topology(
        TopologyConfig(
            seed=21,
            n_tier1=4,
            n_tier2=12,
            n_tier3=30,
            pref_deviation_fraction=0.0,  # textbook routing for these tests
            n_sibling_pairs=0,
        )
    )


@pytest.fixture(scope="module")
def deviant_topo():
    return generate_topology(
        TopologyConfig(
            seed=22, n_tier1=4, n_tier2=12, n_tier3=30, pref_deviation_fraction=0.9,
            n_sibling_pairs=0,
        )
    )


class TestRouteProperties:
    def test_all_ases_reach_most_origins(self, topo):
        origins = sorted(topo.ases)[:10]
        for origin in origins:
            table = compute_routes(topo, origin)
            reached = sum(1 for asn in topo.ases if table.reaches(asn))
            assert reached >= 0.95 * len(topo.ases)

    def test_paths_are_valley_free_without_deviations(self, topo):
        for origin in sorted(topo.ases)[:8]:
            table = compute_routes(topo, origin)
            for asn in table.ases_with_routes():
                path = table.as_path(asn)
                assert topo.relationships.is_valley_free(list(path)), path

    def test_paths_loop_free(self, topo):
        for origin in sorted(topo.ases)[:8]:
            table = compute_routes(topo, origin)
            for asn in table.ases_with_routes():
                path = table.as_path(asn)
                assert len(path) == len(set(path))

    def test_origin_path_is_self(self, topo):
        origin = sorted(topo.ases)[0]
        table = compute_routes(topo, origin)
        assert table.as_path(origin) == (origin,)
        assert table.next_hop[origin] == origin

    def test_unknown_origin_rejected(self, topo):
        with pytest.raises(RoutingError):
            compute_routes(topo, 10**9)

    def test_missing_route_raises(self, topo):
        # An AS that never receives the announcement raises on as_path.
        origin = sorted(topo.ases)[0]
        table = compute_routes(topo, origin)
        with pytest.raises(RoutingError):
            table.as_path(10**9)

    def test_providers_of_origin_use_customer_routes(self, topo):
        """Without deviations or TE, a direct provider of the origin always
        selects a customer-class route (it hears the announcement from a
        customer, which beats any peer/provider alternative)."""
        for origin in sorted(topo.ases)[:6]:
            if topo.ases[origin].announce_providers is not None:
                continue
            table = compute_routes(topo, origin)
            for provider in topo.relationships.providers_of(origin):
                if not table.reaches(provider):
                    continue
                next_hop = table.next_hop[provider]
                rel = topo.relationships.get(provider, next_hop)
                assert rel in (Relationship.PROVIDER, Relationship.SIBLING), (
                    f"provider {provider} of origin {origin} routed via "
                    f"{rel} neighbor {next_hop}"
                )


class TestTrafficEngineering:
    def test_announce_subset_restricts_entry(self, topo):
        """With a restricted announcement, the non-announcing provider
        never appears immediately before the origin."""
        origin = next(
            a.asn
            for a in topo.ases.values()
            if len(topo.relationships.providers_of(a.asn)) >= 2
        )
        providers = topo.relationships.providers_of(origin)
        announce = frozenset(providers[:1])
        table = compute_routes(topo, origin, announce=announce)
        for asn in table.ases_with_routes():
            path = table.as_path(asn)
            if len(path) >= 2:
                before_origin = path[-2]
                rel = topo.relationships.get(origin, before_origin)
                if rel is Relationship.CUSTOMER:  # before_origin is a provider
                    assert before_origin in announce

    def test_oracle_caches(self, topo):
        oracle = RouteOracle(topo)
        prefix = sorted(p.index for p in topo.prefixes)[0]
        t1 = oracle.table_for_prefix(prefix)
        t2 = oracle.table_for_prefix(prefix)
        assert t1 is t2
        oracle.invalidate()
        assert oracle.table_for_prefix(prefix) is not t1

    def test_oracle_resolves_overrides(self, topo):
        oracle = RouteOracle(topo)
        for as_obj in topo.ases.values():
            for prefix_index, override in as_obj.prefix_announce_overrides.items():
                origin, announce = oracle.announcement_for_prefix(prefix_index)
                assert origin == as_obj.asn
                assert announce == override


class TestDeviations:
    def test_deviations_change_routes(self, topo, deviant_topo):
        """Preference deviations must actually alter route selection."""
        # Same seeds produce different topologies, so compare a structural
        # statistic instead: fraction of ASes whose next hop toward a fixed
        # origin is a provider (deviations promote providers).
        def provider_next_fraction(t):
            count = total = 0
            for origin in sorted(t.ases)[:6]:
                table = compute_routes(t, origin)
                for asn in table.ases_with_routes():
                    rel = t.relationships.get(asn, table.next_hop[asn])
                    total += 1
                    if rel is Relationship.CUSTOMER:
                        count += 1
            return count / total

        assert provider_next_fraction(deviant_topo) > provider_next_fraction(topo)
