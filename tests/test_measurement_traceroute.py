"""Tests for the traceroute and ping simulators."""

import numpy as np
import pytest

from repro.errors import MeasurementError
from repro.measurement.ping import PingProber
from repro.measurement.traceroute import TracerouteNoise, TracerouteSimulator
from repro.measurement.vantage import select_vantage_points
from repro.routing.forwarding import ForwardingEngine
from repro.topology import TopologyConfig, generate_topology
from repro.util.ids import PrefixId
from repro.util.rng import derive_rng


@pytest.fixture(scope="module")
def topo():
    return generate_topology(TopologyConfig(seed=51, n_tier1=4, n_tier2=12, n_tier3=30))


@pytest.fixture(scope="module")
def engine(topo):
    return ForwardingEngine(topo)


@pytest.fixture(scope="module")
def vp(topo):
    return select_vantage_points(topo, 3, seed=2)[0]


def make_sim(topo, engine, seed=1, **noise):
    return TracerouteSimulator(
        topo, engine, derive_rng(seed, "test.tr"), noise=TracerouteNoise(**noise)
    )


class TestTraceroute:
    def test_hops_follow_ground_truth(self, topo, engine, vp):
        sim = make_sim(topo, engine, anonymous_hop_prob=0.0, probe_giveup_prob=0.0)
        targets = sorted(p.index for p in topo.prefixes)[:20]
        for target in targets:
            if target == vp.prefix_index:
                continue
            trace = sim.trace_to_prefix(vp, target)
            if not trace.reached:
                continue
            true_path = engine.pop_path(vp.prefix_index, target)
            hop_pops = [
                topo.interface(h.ip).pop_id
                for h in trace.hops[:-1]
                if h.ip is not None and topo.has_interface(h.ip)
            ]
            assert hop_pops == list(true_path.pops)

    def test_rtts_include_reverse_path(self, topo, engine, vp):
        """Hop RTT must be at least twice neither forward nor... i.e. the
        RTT embeds a genuine reverse component, so it exceeds the one-way
        forward latency."""
        sim = make_sim(topo, engine, anonymous_hop_prob=0.0, probe_giveup_prob=0.0)
        target = sorted(p.index for p in topo.prefixes)[-1]
        trace = sim.trace_to_prefix(vp, target)
        true_path = engine.pop_path(vp.prefix_index, target)
        forward = 0.0
        hops = [h for h in trace.hops[:-1] if h.ip is not None]
        for i, hop in enumerate(hops):
            if i > 0:
                forward += topo.links[(true_path.pops[i - 1], true_path.pops[i])].latency_ms
            assert hop.rtt_ms > forward * 0.99

    def test_anonymous_hops_appear(self, topo, engine, vp):
        sim = make_sim(topo, engine, anonymous_hop_prob=0.5)
        targets = sorted(p.index for p in topo.prefixes)[:30]
        traces = [sim.trace_to_prefix(vp, t) for t in targets if t != vp.prefix_index]
        anon = sum(1 for t in traces for h in t.hops if h.ip is None)
        total = sum(len(t.hops) for t in traces)
        assert anon / max(1, total) > 0.2

    def test_unknown_destination_rejected(self, topo, engine, vp):
        sim = make_sim(topo, engine)
        with pytest.raises(MeasurementError):
            sim.trace(vp, 10)  # address inside an unallocated prefix

    def test_campaign_covers_targets(self, topo, engine):
        vps = select_vantage_points(topo, 3, seed=2)
        sim = make_sim(topo, engine)
        targets = sorted(p.index for p in topo.prefixes)[:10]
        traces = sim.campaign(vps, targets)
        assert len(traces) == sum(
            1 for vp in vps for t in targets if t != vp.prefix_index
        )
        assert {t.src_ip for t in traces} == {vp.host_ip for vp in vps}


class TestPing:
    def test_loss_measurement_statistics(self, topo, engine):
        prefixes = sorted(p.index for p in topo.prefixes)
        prober = PingProber(topo, engine, derive_rng(1, "test.ping"), n_probes=100)
        measurement = prober.measure_loss(prefixes[0], prefixes[-1])
        assert 0.0 <= measurement.observed_loss <= 1.0
        assert abs(measurement.observed_loss - measurement.true_loss) < 0.2

    def test_loss_measurement_unbiased(self, topo, engine):
        """Mean of many measurements approaches the true loss."""
        prefixes = sorted(p.index for p in topo.prefixes)
        lossy_pair = None
        for dst in prefixes[1:40]:
            e2e = engine.end_to_end(prefixes[0], dst)
            if 0.01 < e2e.loss_round_trip < 0.5:
                lossy_pair = (prefixes[0], dst, e2e.loss_round_trip)
                break
        if lossy_pair is None:
            pytest.skip("no suitably lossy pair in this topology")
        src, dst, true_loss = lossy_pair
        prober = PingProber(topo, engine, derive_rng(2, "test.ping2"))
        samples = [prober.measure_loss(src, dst).observed_loss for _ in range(50)]
        assert abs(float(np.mean(samples)) - true_loss) < 0.05

    def test_rtt_measurement_close_to_truth(self, topo, engine):
        prefixes = sorted(p.index for p in topo.prefixes)
        prober = PingProber(topo, engine, derive_rng(3, "test.ping3"))
        rtt = prober.measure_rtt(prefixes[0], prefixes[-1])
        truth = engine.end_to_end(prefixes[0], prefixes[-1]).rtt_ms
        assert truth <= rtt <= truth + 5.0

    def test_n_probes_validated(self, topo, engine):
        with pytest.raises(MeasurementError):
            PingProber(topo, engine, derive_rng(1, "x"), n_probes=0)

    def test_link_loss_differencing(self, topo, engine):
        """The near/far differencing estimator recovers a link's loss."""
        prefixes = sorted(p.index for p in topo.prefixes)
        prober = PingProber(topo, engine, derive_rng(4, "test.ping4"))
        # Find a pair whose path crosses a lossy link.
        for dst in prefixes[1:60]:
            path = engine.pop_path(prefixes[0], dst)
            for pos, (a, b) in enumerate(path.links):
                if topo.links[(a, b)].loss_rate > 0.02:
                    ests = [
                        prober.measure_link_loss(prefixes[0], path.pops, pos)
                        for _ in range(40)
                    ]
                    ests = [e for e in ests if e is not None]
                    assert ests
                    err = abs(float(np.mean(ests)) - topo.links[(a, b)].loss_rate)
                    assert err < 0.05
                    return
        pytest.skip("no lossy link on sampled paths")
