"""iPlane Nano reproduction: compact Internet path prediction for P2P apps.

This package reimplements the full system from *iPlane Nano: Path
Prediction for Peer-to-Peer Applications* (Madhyastha et al., NSDI 2009)
over a synthetic-Internet substrate:

* :mod:`repro.topology` — ground-truth Internet generator (AS hierarchy,
  relationships, PoPs, links, prefixes);
* :mod:`repro.routing` — policy routing ground truth, day-to-day dynamics,
  failure injection;
* :mod:`repro.measurement` — traceroute/ping simulators, alias resolution,
  PoP clustering, BGP feeds, frontier assignment;
* :mod:`repro.atlas` — the compact link-level atlas: inference, binary
  serialization, daily deltas, swarm distribution;
* :mod:`repro.core` — the paper's contribution: the GRAPH/iNano route
  predictor plus latency/loss/TCP/MOS models;
* :mod:`repro.baselines` — iPlane path composition, RouteScope, Vivaldi,
  OASIS;
* :mod:`repro.runtime` — the shared atlas runtime: versioned compiled
  cores patched in place by daily deltas, plus the predictor pool the
  server, remote agents and co-located clients resolve through;
* :mod:`repro.client` — the client library and central server;
* :mod:`repro.serve` — the sharded prediction service: multi-process
  shard workers over shared-memory CSR, consistent-hash fan-out,
  binary delta broadcast (``AtlasServer.serve()``);
* :mod:`repro.net` — the network gateway: a length-prefixed binary
  wire protocol, an asyncio TCP/unix-socket front-end over either
  backend, and remote clients that bootstrap an atlas and apply
  pushed deltas over the wire (``repro.client.INanoRemoteClient``);
* :mod:`repro.apps` — CDN, VoIP and detour-routing case studies;
* :mod:`repro.eval` — scenario presets, validation sets, metrics.
"""

from repro.client import AtlasServer, INanoClient, PathInfo
from repro.core import INanoPredictor, PredictedPath, PredictorConfig
from repro.errors import ReproError
from repro.runtime import AtlasRuntime, PredictorPool

__version__ = "1.0.0"

__all__ = [
    "AtlasServer",
    "AtlasRuntime",
    "INanoClient",
    "PathInfo",
    "PredictorPool",
    "INanoPredictor",
    "PredictedPath",
    "PredictorConfig",
    "ReproError",
    "__version__",
]
