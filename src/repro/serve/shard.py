"""Shard worker lifecycle: spawn, shared-memory export, message plumbing.

``ShardManager`` owns the process side of the sharded prediction
service:

* it compiles the atlas **once** (a throwaway
  :class:`~repro.runtime.runtime.AtlasRuntime` over the decoded
  payload), exports each materialized base graph to a
  ``multiprocessing.shared_memory`` block
  (:meth:`~repro.core.compiled.CompiledGraph.to_shared`), and drops the
  compile-side arrays — the shared blocks are the only full copy of the
  CSR until a worker mutates;
* it spawns ``n_shards`` worker processes
  (:func:`~repro.serve.worker.shard_worker_main`), each of which
  decodes its own atlas from the same bytes and maps the blocks
  zero-copy;
* it moves messages: exactly one outstanding request per shard pipe
  (send, then receive before the next send to that shard), which keeps
  the protocol deadlock-free while still letting a broadcast or a
  fanned-out batch run on all shards concurrently — send to every
  shard first, then collect.

The pipe protocol is observability-aware: batch requests may carry an
optional sixth element — a ``(trace_id, parent_span_id)`` context from
:mod:`repro.obs.trace` — and batch replies always carry a fourth
(``spans`` recorded by the worker, or ``None``); ``stats`` replies
embed the worker's full metrics-registry snapshot under ``"obs"``.
The manager itself stays payload-agnostic (it never inspects message
bodies), but :meth:`ShardManager.export_metrics` publishes its own
process-level view — shared bytes, live and quarantined shard counts
— into a caller-supplied registry for the fleet dashboard.

Worker replies tagged ``("error", ...)`` and dead pipes surface as
:class:`~repro.errors.ShardStateError`; the manager never silently
drops a shard.
"""

from __future__ import annotations

import multiprocessing
import sys
import time

from repro.atlas.serialization import decode_atlas
from repro.errors import ServiceError, ShardStateError
from repro.runtime import AtlasRuntime
from repro.serve.worker import shard_worker_main

__all__ = ["ShardManager"]

#: base graphs exported to every worker, in install order
_SHARED_GRAPHS = ("directed", "closed")


def _pick_context(mp_context):
    if mp_context is not None:
        if isinstance(mp_context, str):
            return multiprocessing.get_context(mp_context)
        return mp_context
    # On Linux, fork shares the parent's resource_tracker (and page
    # cache) and starts in milliseconds. Elsewhere keep the platform
    # default — notably macOS, where CPython moved to spawn because
    # fork-without-exec breaks threaded runtimes (Accelerate BLAS,
    # Objective-C) even though fork is still offered.
    if sys.platform.startswith("linux") and (
        "fork" in multiprocessing.get_all_start_methods()
    ):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


class ShardManager:
    """Spawns and talks to the shard worker fleet."""

    def __init__(
        self,
        atlas_bytes: bytes,
        n_shards: int,
        mp_context=None,
        graphs: tuple[str, ...] = _SHARED_GRAPHS,
        atlas=None,
    ) -> None:
        if n_shards < 1:
            raise ServiceError("need at least one shard")
        self.n_shards = int(n_shards)
        ctx = _pick_context(mp_context)
        self._handles = []
        self._conns = []
        self._procs = []
        #: shards whose pipe is desynchronized (a reply timed out while
        #: the worker lived: its late reply would answer the wrong
        #: request) — all further traffic to them raises
        self._poisoned: set[int] = set()
        self.snapshots: list[dict] = []
        try:
            # ``atlas`` (when the caller already decoded the payload) is
            # only read: the compile runtime is discarded right after the
            # export, so sharing the caller's object is safe.
            compile_runtime = AtlasRuntime(
                atlas if atlas is not None else decode_atlas(atlas_bytes)
            )
            for name in graphs:
                cg = compile_runtime._base_graph(name, closed=(name == "closed"))
                self._handles.append((name, cg.to_shared()))
            del compile_runtime  # workers own the serving state from here
            untrack = ctx.get_start_method() != "fork"
            graph_metas = {name: handle.meta for name, handle in self._handles}
            self.shared_bytes = sum(h.nbytes for _, h in self._handles)
            for shard_index in range(self.n_shards):
                parent_conn, child_conn = ctx.Pipe()
                init = {
                    "shard_index": shard_index,
                    "atlas_bytes": atlas_bytes,
                    "graphs": graph_metas,
                    "untrack_shm": untrack,
                }
                proc = ctx.Process(
                    target=shard_worker_main,
                    args=(child_conn, init),
                    name=f"inano-shard-{shard_index}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
            for shard_index, conn in enumerate(self._conns):
                tag, idx, snapshot = conn.recv()
                if tag != "ready" or idx != shard_index:
                    raise ShardStateError(
                        f"shard {shard_index} failed to start: {tag!r}"
                    )
                self.snapshots.append(snapshot)
        except BaseException:
            self.close()
            raise
        self._closed = False

    # -- messaging ---------------------------------------------------------

    def _check_poisoned(self, shard: int) -> None:
        if shard in self._poisoned:
            raise ShardStateError(
                f"shard {shard} pipe is desynchronized after a reply "
                f"timeout; the shard is quarantined"
            )

    def send(self, shard: int, msg: tuple) -> None:
        self._check_poisoned(shard)
        try:
            self._conns[shard].send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise ShardStateError(f"shard {shard} pipe is down: {exc}") from exc

    #: liveness-check cadence while blocked on a reply
    _POLL_STEP_S = 0.05

    def recv_raw(self, shard: int, timeout: float | None = None) -> tuple:
        """One reply off a shard's pipe (worker-reported errors come
        back as ``("error", op, repr)`` tuples, not exceptions — the
        reply *is* consumed either way, so the request/reply protocol
        stays in sync for the next caller).

        Never hangs on a dead worker: the wait polls the pipe in short
        steps and checks the worker process between steps, raising
        :class:`~repro.errors.ShardStateError` naming the shard when
        the process died without answering (buffered replies from a
        worker that died *after* sending are still drained first).
        ``timeout`` (seconds) bounds the total wait even for a live
        worker; ``None`` waits as long as the worker stays alive. A
        timeout on a *live* worker poisons the shard (its late reply
        would answer the wrong request), so every later send/recv to it
        raises instead of consuming a stale reply.
        """
        self._check_poisoned(shard)
        conn = self._conns[shard]
        proc = self._procs[shard]
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            step = self._POLL_STEP_S
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._poisoned.add(shard)
                    raise ShardStateError(
                        f"shard {shard} reply timed out after {timeout}s"
                    )
                step = min(step, remaining)
            try:
                if conn.poll(step):
                    return conn.recv()
            except (EOFError, OSError) as exc:
                raise ShardStateError(f"shard {shard} died mid-request") from exc
            if not proc.is_alive():
                # one last poll: the worker may have replied, then exited
                try:
                    if conn.poll(0):
                        return conn.recv()
                except (EOFError, OSError) as exc:
                    raise ShardStateError(
                        f"shard {shard} died mid-request"
                    ) from exc
                raise ShardStateError(
                    f"shard {shard} worker is dead "
                    f"(exitcode {proc.exitcode}) with no reply pending"
                )

    @staticmethod
    def check(shard: int, reply: tuple) -> tuple:
        if reply[0] == "error":
            raise ShardStateError(
                f"shard {shard} failed op {reply[1]!r}: {reply[2]}"
            )
        return reply

    def recv(self, shard: int, timeout: float | None = None) -> tuple:
        return self.check(shard, self.recv_raw(shard, timeout=timeout))

    def request(self, shard: int, msg: tuple, timeout: float | None = None) -> tuple:
        self.send(shard, msg)
        return self.recv(shard, timeout=timeout)

    def broadcast(self, msg: tuple, timeout: float | None = None) -> list[tuple]:
        """Send ``msg`` to every shard, then collect every reply (the
        shards work concurrently between the two loops). Every reachable
        pipe is drained before any failure — dead shard, worker-side
        error — is raised, so one failed shard cannot desynchronize the
        others' request/reply streams. ``timeout`` bounds each shard's
        reply wait (dead workers are detected promptly regardless)."""
        sent: list[int] = []
        send_error: ShardStateError | None = None
        for shard in range(self.n_shards):
            try:
                self.send(shard, msg)
            except ShardStateError as exc:
                send_error = exc
                break  # later shards never saw the message; their pipes are clean
            sent.append(shard)
        replies: dict[int, tuple] = {}
        recv_error: ShardStateError | None = None
        for shard in sent:
            try:
                replies[shard] = self.recv_raw(shard, timeout=timeout)
            except ShardStateError as exc:
                if recv_error is None:
                    recv_error = exc
        if send_error is not None:
            raise send_error
        if recv_error is not None:
            raise recv_error
        return [self.check(shard, replies[shard]) for shard in sent]

    # -- observability -----------------------------------------------------

    def export_metrics(self, registry, prefix: str = "serve.shards") -> None:
        """Publish the manager's process-level view as gauges: the
        worker fleet's shape and health, independent of what the
        workers themselves report over the stats op."""
        registry.get_gauge(f"{prefix}.count").set(self.n_shards)
        registry.get_gauge(f"{prefix}.alive").set(sum(self.alive()))
        registry.get_gauge(f"{prefix}.poisoned").set(len(self._poisoned))
        registry.get_gauge(f"{prefix}.shared_bytes").set(self.shared_bytes)

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return getattr(self, "_closed", True)

    def alive(self) -> list[bool]:
        return [proc.is_alive() for proc in self._procs]

    def close(self, timeout: float = 5.0) -> None:
        """Stop workers and destroy the shared blocks. Idempotent."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for shard, conn in enumerate(getattr(self, "_conns", [])):
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in getattr(self, "_conns", []):
            try:
                conn.close()
            except OSError:
                pass
        for proc in getattr(self, "_procs", []):
            proc.join(timeout=timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        for _, handle in self._handles:
            handle.close()
            handle.unlink()
