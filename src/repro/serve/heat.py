"""Sliding-window heat tracking for hot-destination detection.

Consistent hashing pins every destination cluster to exactly one shard
(:mod:`repro.serve.hashring`), which is perfect for cache locality and
terrible for skew: one viral destination saturates its shard while the
rest of the fleet idles.  This module is the *detector* half of the
MIDAS-style fix — it watches the per-destination query stream through
sliding windows, smooths the per-window counts with an EMA, and
promotes destinations whose heat crosses a threshold into a *hot set*.
:class:`~repro.serve.service.PredictionService` then routes hot
destinations across a replica set of successor shards instead of the
single pinned owner, and demotes them back when the heat decays so the
pinned shard regains exclusive cache locality.

Two design rules keep this layer honest:

* **Determinism.**  Windows advance on a *logical op clock* (one tick
  per recorded query), never wall-clock time.  The same query sequence
  always produces the same promotions and demotions, in tests, CI and
  production alike — a prerequisite for the repo-wide bit-for-bit
  equivalence contract.
* **Hysteresis.**  Promotion and demotion use separate thresholds
  (demote well below promote), so a destination oscillating around the
  boundary doesn't flap between pinned and replicated routing, which
  would churn every replica's search cache for nothing.

The bookkeeping uses the counter/timer ``Tracker`` idiom so callers
(service stats, the PR-roadmap autoscaler) read one uniform snapshot.
``Tracker`` *is* the obs :class:`~repro.obs.registry.MetricsRegistry`
(and ``Counter``/``Timer`` its metric types) — the heat layer was the
registry idiom's first customer, and folding it onto ``repro.obs``
means ``heat.snapshot()`` and ``registry.snapshot()`` read the very
same objects and cannot drift. A :class:`HeatTracker` constructed by
the service shares the service's registry, so promotions and
demotions appear in the fleet-wide snapshot under their ``heat.*``
names for free.
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs.registry import Counter, MetricsRegistry, Timer

__all__ = ["Counter", "Timer", "Tracker", "HeatTracker"]

#: the heat layer's registry idiom, now literally the obs registry
Tracker = MetricsRegistry


#: queries per sliding window (logical ops, not wall time)
DEFAULT_WINDOW = 256
#: EMA smoothing; 0.5 = half the heat comes from the latest window
DEFAULT_ALPHA = 0.5
#: promote when the smoothed per-window count exceeds this fraction of
#: the window — i.e. one destination absorbing >=20% of recent traffic
DEFAULT_PROMOTE_FRACTION = 0.20
#: demote/promote hysteresis ratio (demote threshold = promote * this)
DEFAULT_DEMOTE_RATIO = 0.25


class HeatTracker:
    """Per-destination heat with EMA decay and promote/demote hysteresis.

    Every call to :meth:`record` advances a logical clock; after
    ``window`` ticks the window closes and each destination's heat is
    re-smoothed::

        heat = alpha * window_count + (1 - alpha) * heat

    Destinations absent from the closed window decay by the same rule
    (``window_count = 0``), so cooled-off hot spots demote within a few
    windows instead of lingering forever.

    Membership queries (:meth:`is_hot`, :attr:`hot`) are O(1) set
    lookups — the service consults them on every routed query.
    """

    def __init__(
        self,
        *,
        window: int = DEFAULT_WINDOW,
        alpha: float = DEFAULT_ALPHA,
        promote_threshold: float | None = None,
        demote_threshold: float | None = None,
        replicas: int = 2,
        tracker: Tracker | None = None,
    ) -> None:
        self.window = int(window)
        if self.window < 1:
            raise ValueError("window must be >= 1")
        self.alpha = float(alpha)
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if promote_threshold is None:
            promote_threshold = DEFAULT_PROMOTE_FRACTION * self.window
        self.promote_threshold = float(promote_threshold)
        if demote_threshold is None:
            demote_threshold = self.promote_threshold * DEFAULT_DEMOTE_RATIO
        self.demote_threshold = float(demote_threshold)
        if self.demote_threshold >= self.promote_threshold:
            raise ValueError("demote threshold must sit below promote")
        self.replicas = int(replicas)
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")

        self.tracker = tracker if tracker is not None else Tracker()
        self._records = self.tracker.get_counter("heat.records")
        self._windows = self.tracker.get_counter("heat.windows_closed")
        self._promotions = self.tracker.get_counter("heat.promotions")
        self._demotions = self.tracker.get_counter("heat.demotions")

        self._ticks = 0  # ops in the currently open window
        self._window_counts: dict[int, int] = defaultdict(int)
        self._heat: dict[int, float] = {}
        self._hot: set[int] = set()

    # -- recording -----------------------------------------------------

    def record(self, dst: int, n: int = 1) -> None:
        """Count ``n`` queries toward destination cluster ``dst``."""
        if n < 1:
            raise ValueError("n must be >= 1")
        dst = int(dst)
        self._records.increase(n)
        # Split across window boundaries so a large batch can't smear
        # one window's traffic into the next and skew the EMA.
        while n:
            take = min(n, self.window - self._ticks)
            self._window_counts[dst] += take
            self._ticks += take
            n -= take
            if self._ticks == self.window:
                self._close_window()

    def _close_window(self) -> None:
        alpha = self.alpha
        counts = self._window_counts
        heat = self._heat
        for dst in counts.keys() | heat.keys():
            h = alpha * counts.get(dst, 0) + (1.0 - alpha) * heat.get(dst, 0.0)
            if h < 1e-9:
                heat.pop(dst, None)
            else:
                heat[dst] = h
        counts.clear()
        self._ticks = 0
        self._windows.increase()
        # Hysteresis: promote above the high bar, demote below the low
        # one, hold membership anywhere in between.
        for dst, h in heat.items():
            if dst not in self._hot and h >= self.promote_threshold:
                self._hot.add(dst)
                self._promotions.increase()
        for dst in [d for d in self._hot if heat.get(d, 0.0) <= self.demote_threshold]:
            self._hot.discard(dst)
            self._demotions.increase()

    # -- queries -------------------------------------------------------

    @property
    def hot(self) -> frozenset[int]:
        """The current hot set (destination clusters under replication)."""
        return frozenset(self._hot)

    def is_hot(self, dst: int) -> bool:
        return int(dst) in self._hot

    def heat_of(self, dst: int) -> float:
        """Smoothed per-window count for ``dst`` (0.0 if never seen)."""
        return self._heat.get(int(dst), 0.0)

    def snapshot(self) -> dict[str, float]:
        """This tracker's own ``heat.*`` tallies plus the current
        hot-set size, one flat dict. Reads only the counters this
        instance registered — a shared (service-wide) registry's other
        metrics stay out of the heat view."""
        out = {
            counter.name: counter.get()
            for counter in (
                self._records,
                self._windows,
                self._promotions,
                self._demotions,
            )
        }
        out["heat.hot_destinations"] = len(self._hot)
        return out
