"""Deterministic consistent-hash ring for destination routing.

The sharded prediction service routes every query by its **destination
cluster**: all traffic toward one destination lands on one shard, so
that shard's per-destination search cache (and the pool's warm-start /
prewarm machinery) sees the whole stream — the same locality the
in-process :class:`~repro.runtime.pool.PredictorPool` exploits.

Two properties matter and both are guaranteed here:

* **Determinism.** Ring points come from BLAKE2b digests of explicit
  byte strings — never Python's builtin ``hash()``, whose string/bytes
  randomization (``PYTHONHASHSEED``) would scatter a destination onto a
  different shard every process restart, silently discarding every
  shard's accumulated cache locality and making tests unreproducible.
  The same ``(salt, shards, vnodes)`` always yields the same routing
  table, in any process, on any run.
* **Minimal disruption.** Each shard owns ``vnodes`` points on the
  ring; removing a shard reassigns only the keys in its arcs (≈ 1/N of
  the keyspace) and adding one steals only what it now owns. Everything
  else keeps its shard — and its warm cache.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing"]

#: virtual nodes per shard; enough for <15% load imbalance at small N
DEFAULT_VNODES = 64


def _point(data: bytes) -> int:
    """A 64-bit ring position from a stable cryptographic digest."""
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """Maps integer keys (destination clusters) onto shard ids."""

    def __init__(
        self,
        shards,
        vnodes: int = DEFAULT_VNODES,
        salt: bytes = b"inano-serve",
    ) -> None:
        self.vnodes = int(vnodes)
        self.salt = bytes(salt)
        if self.vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self._points: list[int] = []
        self._owners: list[int] = []
        self._shards: set[int] = set()
        self._lookup_cache: dict[int, int] = {}
        for shard in shards:
            self.add_shard(shard)
        if not self._shards:
            raise ValueError("ring needs at least one shard")

    def __len__(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> list[int]:
        return sorted(self._shards)

    def _vnode_points(self, shard: int) -> list[int]:
        prefix = b"%s|shard:%d|vnode:" % (self.salt, shard)
        return [_point(prefix + b"%d" % v) for v in range(self.vnodes)]

    def add_shard(self, shard: int) -> None:
        shard = int(shard)
        if shard in self._shards:
            raise ValueError(f"shard {shard} already on the ring")
        self._shards.add(shard)
        self._lookup_cache.clear()
        for p in self._vnode_points(shard):
            # Tie-break exact point collisions by shard id so insertion
            # order can never influence ownership.
            i = bisect.bisect_left(self._points, p)
            while i < len(self._points) and self._points[i] == p and self._owners[i] < shard:
                i += 1
            self._points.insert(i, p)
            self._owners.insert(i, shard)

    def remove_shard(self, shard: int) -> None:
        shard = int(shard)
        if shard not in self._shards:
            raise ValueError(f"shard {shard} not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.remove(shard)
        self._lookup_cache.clear()
        keep = [i for i, owner in enumerate(self._owners) if owner != shard]
        self._points = [self._points[i] for i in keep]
        self._owners = [self._owners[i] for i in keep]

    def shard_for(self, key: int) -> int:
        """The shard owning ``key`` (first ring point clockwise).

        Lookups are memoized per key — the hot routing path hashes each
        destination once per ring topology, not once per query.  The
        cache is invalidated by ``add_shard``/``remove_shard``.
        """
        key = int(key)
        cached = self._lookup_cache.get(key)
        if cached is not None:
            return cached
        p = _point(b"%s|key:%d" % (self.salt, key))
        i = bisect.bisect_right(self._points, p)
        if i == len(self._points):
            i = 0
        owner = self._owners[i]
        self._lookup_cache[key] = owner
        return owner

    def successors(self, key: int, k: int) -> list[int]:
        """The first ``k`` *distinct* shards clockwise from ``key``.

        ``successors(key, k)[0] == shard_for(key)`` always — the pinned
        owner leads, then the next distinct owners around the ring.
        This is the replica set for a hot destination: deterministic
        (same digests as ``shard_for``), and stable under ring changes
        in the same minimal-disruption sense as primary ownership.
        ``k`` is clamped to the number of shards on the ring.
        """
        k = min(int(k), len(self._shards))
        if k < 1:
            raise ValueError("k must be >= 1")
        p = _point(b"%s|key:%d" % (self.salt, int(key)))
        start = bisect.bisect_right(self._points, p)
        n = len(self._points)
        out: list[int] = []
        seen: set[int] = set()
        for step in range(n):
            owner = self._owners[(start + step) % n]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) == k:
                    break
        return out

    def assignment(self, keys) -> dict[int, int]:
        """Batch ``shard_for`` (key -> shard), for tests and rebalance
        accounting."""
        return {int(k): self.shard_for(k) for k in keys}
