"""The sharded prediction front-end: consistent-hash fan-out over the
worker fleet.

:class:`PredictionService` is the scale-out answer path for the
ROADMAP's heavy-traffic north star. One front-end object routes
``predict`` / ``predict_batch`` / ``query_batch`` across N shard worker
processes (:mod:`repro.serve.shard`), each holding its own
:class:`~repro.runtime.runtime.AtlasRuntime` over the shared-memory CSR
(:mod:`repro.serve.worker`):

* **Routing.** Every query is routed by consistent hash of its
  *destination cluster* (:mod:`repro.serve.hashring`), so the full
  query stream for one destination lands on one shard and rides that
  shard's per-destination search cache — shard-count changes remap only
  ~1/N of destinations.
* **Hotspot replication.** With a :class:`~repro.serve.heat.HeatTracker`
  installed (``heat=``), destinations whose sliding-window heat crosses
  the promote threshold are spread over ``k`` successor shards
  (:meth:`HashRing.successors`) and each query picks the least-loaded
  replica; demotion on heat decay restores single-shard cache
  locality. Because the delta broadcast keeps *every* shard's graph
  (and registered-client planes) current, replication is pure routing
  policy — any replica returns the bit-identical answer.
* **Coalescing.** :meth:`submit` queues requests per shard and
  :meth:`flush` ships each shard one batch: duplicate ``(src, dst)``
  pairs in a window collapse to one slot, and distinct sources toward
  one destination ride a single kernel search worker-side (the
  predictor's destination-grouped batch path). :meth:`predict_batch`
  fans a caller-supplied batch out to all involved shards concurrently
  and reassembles results in order.
* **Backpressure.** A shard whose queue reaches ``max_pending``
  requests is flushed synchronously before more work is accepted for
  it, bounding per-shard queue memory and keeping one outstanding
  message per pipe (deadlock-free by construction).
* **Delta broadcast.** :meth:`apply_delta` encodes one day's delta with
  the binary broadcast codec
  (:func:`~repro.atlas.serialization.encode_delta`) and fans the same
  bytes to every worker, which decodes straight into the in-place
  patch + warm-start repair path. The per-worker state snapshots
  (day + array fingerprints) must agree afterwards — a diverged shard
  raises :class:`~repro.errors.ShardStateError` instead of silently
  serving two graph versions.

Results are bit-for-bit identical to a single-process
:class:`~repro.client.server.AtlasServer` over the same atlas lineage
(``tests/test_serve_equivalence.py`` proves it across a delta chain
with a monthly recompile and a FROM_SRC-merged measuring client).
"""

from __future__ import annotations

import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.atlas.delta import AtlasDelta, apply_delta_inplace
from repro.atlas.serialization import decode_atlas, decode_delta, encode_delta
from repro.client.query import combine_batches
from repro.errors import ServiceError, ShardStateError
from repro.obs.registry import MetricsRegistry, prefix_snapshot
from repro.obs.trace import TraceCollector, Tracer
from repro.serve.hashring import DEFAULT_VNODES, HashRing
from repro.serve.heat import HeatTracker
from repro.serve.shard import ShardManager

__all__ = ["PredictionService", "PendingPrediction"]

_REQ_IDS = itertools.count(1)


@dataclass
class PendingPrediction:
    """A queued one-way prediction; resolved by the next flush of its
    shard (or any full :meth:`PredictionService.flush`)."""

    src: int
    dst: int
    _service: object
    _shard: int | None
    done: bool = False
    value: object = None
    #: set when the worker failed this request's group; ``result()``
    #: re-raises instead of masquerading as a no-path answer
    error: Exception | None = None

    def result(self):
        """The PredictedPath (or None), flushing the queue if needed.
        Raises :class:`~repro.errors.ShardStateError` if the request's
        window failed worker-side."""
        if not self.done:
            self._service.flush()
        if self.error is not None:
            raise self.error
        return self.value

    def _resolve(self, value) -> None:
        self.value = value
        self.done = True

    def _fail(self, error: Exception) -> None:
        self.error = error
        self.done = True


class _ShardQueue:
    """Per-shard pending requests, grouped by (config, client) and
    deduplicated by (src, dst) within each group."""

    __slots__ = ("groups", "requests")

    def __init__(self) -> None:
        #: (config, client) -> OrderedDict[(src, dst)] -> [futures]
        self.groups: OrderedDict = OrderedDict()
        self.requests = 0

    def add(self, key, src, dst, future) -> bool:
        """Queue one request; True when it coalesced onto an already
        queued identical pair."""
        group = self.groups.setdefault(key, OrderedDict())
        waiters = group.get((src, dst))
        if waiters is None:
            group[(src, dst)] = [future]
            coalesced = False
        else:
            waiters.append(future)
            coalesced = True
        self.requests += 1
        return coalesced


class PredictionService:
    """Routes predictions across shard workers; see module docstring."""

    def __init__(
        self,
        atlas_bytes: bytes,
        n_shards: int = 4,
        *,
        vnodes: int = DEFAULT_VNODES,
        max_pending: int = 256,
        timeout: float | None = None,
        mp_context=None,
        heat: HeatTracker | dict | bool | None = None,
    ) -> None:
        #: the front-end's metrics registry — every service counter,
        #: gauge and histogram below is a view over it, and
        #: :meth:`fleet_snapshot` folds the workers' registries in
        self.obs = MetricsRegistry()
        # ``heat`` enables hot-destination replication: pass a
        # configured HeatTracker, a kwargs dict for one, or True for
        # the defaults. None (the default) keeps pure pinned routing.
        # Trackers built here share the service registry, so heat
        # counters land in the same snapshot as everything else.
        if heat is True:
            heat = HeatTracker(tracker=self.obs)
        elif isinstance(heat, dict):
            heat = HeatTracker(**{"tracker": self.obs, **heat})
        self._heat = heat if isinstance(heat, HeatTracker) else None
        # Validate everything cheap before spawning the fleet, so bad
        # arguments cannot leak worker processes or shared blocks.
        self._ring = HashRing(range(n_shards), vnodes=vnodes)
        self.max_pending = int(max_pending)
        #: bound on every broadcast / fan-out reply wait (seconds; None
        #: waits while the worker stays alive — dead workers raise
        #: promptly either way)
        self.timeout = timeout
        #: the front-end's routing atlas — kept current by applying the
        #: same decoded broadcasts the workers apply
        self._atlas = decode_atlas(atlas_bytes)
        # the manager compiles its shared-memory export from this same
        # decoded object (read-only there), skipping a second decode
        self._shards = ShardManager(
            atlas_bytes, n_shards, mp_context=mp_context, atlas=self._atlas
        )
        self._queues = [_ShardQueue() for _ in range(n_shards)]
        self._inflight = [0] * n_shards
        #: recent front-end request round-trips (send -> reply, in us):
        #: a registry histogram — bucket counts merge fleet-wide, the
        #: bounded raw window answers exact local percentiles
        self._req_hist = self.obs.get_histogram("serve.service.request_us")
        self._epoch = 0
        self._clients: set[object] = set()
        #: dict-shaped stats surface, backed by registry gauges — the
        #: registry is the only copy of these numbers
        self.stats = self.obs.view(
            "serve.service",
            (
                "requests",
                "coalesced",
                "backpressure_flushes",
                "flushes",
                "batches_routed",
                "deltas_broadcast",
                "bytes_broadcast",
                "replica_routed",
                "queue_depth",
                "inflight",
                "req_p50_us",
                "req_p99_us",
            ),
        )
        #: spans recorded front-end-side plus those workers return on
        #: traced batches; the gateway's TRACE_FETCH path reads it
        self.trace = TraceCollector()
        self.tracer = Tracer(collector=self.trace)
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self._shards.n_shards

    @property
    def day(self) -> int:
        """The atlas day every shard currently serves."""
        return self._atlas.day

    @property
    def atlas(self):
        """The front-end's routing atlas (read-only use: it is the
        decoded view every worker also holds, kept current by the
        delta broadcasts — the network gateway re-encodes it to serve
        ATLAS_FETCH bootstraps)."""
        return self._atlas

    @property
    def shared_bytes(self) -> int:
        """Size of the shared-memory CSR export all workers map."""
        return self._shards.shared_bytes

    def close(self) -> None:
        """Stop the workers and destroy the shared blocks. Pending
        (unflushed) requests resolve to None. Idempotent — later calls
        (context-manager exit after an explicit close, double teardown)
        are no-ops."""
        if self._closed:
            return
        self._closed = True
        for queue in self._queues:
            for group in queue.groups.values():
                for waiters in group.values():
                    for future in waiters:
                        future._resolve(None)
            queue.groups.clear()
            queue.requests = 0
        self._shards.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._shards.closed:
            raise ServiceError("prediction service is closed")

    # -- routing -----------------------------------------------------------

    def shard_of_destination(self, dst_prefix_index: int) -> int | None:
        """The shard serving a destination prefix (None when the prefix
        is unmapped — such queries answer None without a worker trip)."""
        cluster = self._atlas.cluster_of_prefix(dst_prefix_index)
        if cluster is None:
            return None
        return self._ring.shard_for(cluster)

    @property
    def heat(self) -> HeatTracker | None:
        """The installed heat tracker (None = pinned routing only)."""
        return self._heat

    def replicas_of_destination(self, dst_prefix_index: int) -> list[int]:
        """The shard set currently serving a destination prefix: the
        pinned owner alone, or the full replica set while the heat
        tracker holds its cluster hot. Empty for unmapped prefixes."""
        cluster = self._atlas.cluster_of_prefix(dst_prefix_index)
        if cluster is None:
            return []
        if self._heat is not None and self._heat.is_hot(cluster):
            return self._ring.successors(cluster, self._heat.replicas)
        return [self._ring.shard_for(cluster)]

    def _shard_load(self, shard: int, extra=None) -> int:
        load = self._queues[shard].requests + self._inflight[shard]
        if extra is not None:
            load += extra.get(shard, 0)
        return load

    def _route_cluster(self, cluster: int, extra=None) -> tuple[int, bool]:
        """One query's ``(shard, promoted)``: the pinned ring owner
        (``promoted=False``), unless the heat tracker holds the
        cluster hot — then the least-loaded of its ``k`` successor
        replicas (ties break on replica order, so routing stays
        deterministic for a given query sequence). ``extra`` adds
        batch-transient per-shard assignments so one large batch
        spreads over the replicas instead of dogpiling the
        momentarily-idlest."""
        heat = self._heat
        if heat is None:
            return self._ring.shard_for(cluster), False
        heat.record(cluster)
        if not heat.is_hot(cluster):
            return self._ring.shard_for(cluster), False
        replicas = self._ring.successors(cluster, heat.replicas)
        self.stats["replica_routed"] += 1
        return min(replicas, key=lambda s: self._shard_load(s, extra)), True

    # -- one-way predictions ----------------------------------------------

    def submit(
        self, src: int, dst: int, config=None, client=None
    ) -> PendingPrediction:
        """Queue one prediction into its shard's coalescing window.

        The request rides the next flush of that shard; duplicate
        pairs in the window share one wire slot and one result, and a
        shard at ``max_pending`` queued requests is flushed
        synchronously first (backpressure).
        """
        self._check_open()
        self.stats["requests"] += 1
        cluster = self._atlas.cluster_of_prefix(dst)
        if cluster is None:
            future = PendingPrediction(src=src, dst=dst, _service=self, _shard=None)
            future._resolve(None)
            return future
        shard = None
        heat = self._heat
        if heat is not None:
            heat.record(cluster)
            if heat.is_hot(cluster):
                replicas = self._ring.successors(cluster, heat.replicas)
                self.stats["replica_routed"] += 1
                # Coalescing beats balancing: an identical pair already
                # queued on any replica costs zero extra worker time.
                for s in replicas:
                    group = self._queues[s].groups.get((config, client))
                    if group is not None and (src, dst) in group:
                        shard = s
                        break
                else:
                    shard = min(replicas, key=self._shard_load)
        if shard is None:
            shard = self._ring.shard_for(cluster)
        future = PendingPrediction(src=src, dst=dst, _service=self, _shard=shard)
        if self._queues[shard].requests >= self.max_pending:
            self.stats["backpressure_flushes"] += 1
            self._flush_shard(shard)
        if self._queues[shard].add((config, client), src, dst, future):
            self.stats["coalesced"] += 1
        return future

    def flush(self) -> None:
        """Ship every shard's queued window.

        Runs in rounds: each round sends at most **one** batch message
        per shard (the pipe protocol's one-outstanding-request
        invariant — a second in-flight message could mutual-send
        deadlock on oversized windows), then drains that round's
        replies from every shard before the next. Shards still work
        concurrently within a round, and every reply is consumed before
        any worker-side failure raises — a failed group cannot
        desynchronize the other shards' streams.
        """
        self._run_rounds(self._take_queues(range(self.n_shards)))

    def _flush_shard(self, shard: int) -> None:
        self._run_rounds(self._take_queues([shard]))

    def _take_queues(self, shards) -> dict:
        taken = {}
        for shard in shards:
            queue = self._queues[shard]
            if queue.requests:
                self._queues[shard] = _ShardQueue()
                taken[shard] = queue.groups
        return taken

    def _run_rounds(self, taken: dict) -> None:
        """Every group taken off the queues ends this call either
        resolved or failed — never stranded looking unanswered — and
        every successfully sent message gets its reply drained, so a
        failure on one shard cannot desynchronize the others. The
        first error is raised after all rounds complete."""
        first: ShardStateError | None = None
        sent: list[tuple] = []
        try:
            while taken:
                sent = []
                for shard in list(taken):
                    groups = taken[shard]
                    (config, client), group = groups.popitem(last=False)
                    if not groups:
                        del taken[shard]
                    pairs = list(group)
                    req_id = next(_REQ_IDS)

                    def deliver(paths, pairs=pairs, group=group):
                        for pair, path in zip(pairs, paths):
                            for future in group[pair]:
                                future._resolve(path)

                    def on_error(exc, pairs=pairs, group=group):
                        for pair in pairs:
                            for future in group[pair]:
                                future._fail(exc)

                    try:
                        self._shards.send(
                            shard, ("batch", req_id, pairs, config, client)
                        )
                    except ShardStateError as exc:
                        # Dead pipe: fail this group and everything
                        # else queued for the shard; keep the round
                        # going for the healthy shards.
                        on_error(exc)
                        self._fail_groups(taken.pop(shard, {}), exc)
                        if first is None:
                            first = exc
                        continue
                    self._inflight[shard] += 1
                    sent.append(
                        (shard, req_id, deliver, on_error, time.perf_counter())
                    )
                    self.stats["flushes"] += 1
                try:
                    self._collect(sent)
                except ShardStateError as exc:
                    if first is None:
                        first = exc
                sent = []
        except BaseException as exc:  # unexpected: strand nothing
            error = ShardStateError(f"flush aborted: {exc!r}")
            for shard, _, _, on_error, _ in sent:
                self._inflight[shard] -= 1
                on_error(error)
            for groups in taken.values():
                self._fail_groups(groups, error)
            raise
        if first is not None:
            raise first

    @staticmethod
    def _fail_groups(groups: dict, error: Exception) -> None:
        for group in groups.values():
            for waiters in group.values():
                for future in waiters:
                    future._fail(error)

    def _collect(self, sent: list[tuple]) -> None:
        """Drain one reply per sent ``(shard, req_id, deliver,
        on_error, t0)`` message — every drainable one, even past a dead
        shard or a worker-side failure, so one failed request cannot
        desynchronize the surviving shards' streams — then surface the
        first error. ``on_error`` (when given) marks the group's
        futures failed, so ``result()`` re-raises instead of passing a
        failure off as a no-path answer."""
        first = None

        def failed(exc, on_error):
            nonlocal first
            if on_error is not None:
                on_error(exc)
            if first is None:
                first = exc

        for shard, req_id, deliver, on_error, t0 in sent:
            try:
                reply = self._shards.recv_raw(shard, timeout=self.timeout)
            except ShardStateError as exc:  # dead pipe: drain the rest
                self._inflight[shard] -= 1
                failed(exc, on_error)
                continue
            self._inflight[shard] -= 1
            self._req_hist.observe((time.perf_counter() - t0) * 1e6)
            if reply[0] == "error":
                try:
                    self._shards.check(shard, reply)
                except ShardStateError as exc:
                    failed(exc, on_error)
                continue
            tag, got_id = reply[0], reply[1]
            if tag != "batch" or got_id != req_id:
                failed(
                    ShardStateError(
                        f"shard {shard} answered {tag!r}/{got_id} "
                        f"to batch {req_id}"
                    ),
                    on_error,
                )
                continue
            _, _, paths, spans = reply
            if spans:
                self.trace.extend(spans)
            deliver(paths)
        if first is not None:
            raise first

    def predict(self, src_prefix_index: int, dst_prefix_index: int, config=None):
        """One-way prediction (PredictedPath or None), immediately
        flushed. Mirrors :meth:`AtlasServer.predict`'s
        ``predict_or_none`` semantics."""
        future = self.submit(src_prefix_index, dst_prefix_index, config)
        if not future.done:
            self._flush_shard(future._shard)
        return future.value

    def predict_batch(self, pairs, config=None, client=None, trace=None) -> list:
        """Batched one-way predictions, fanned out to every involved
        shard concurrently; results align with ``pairs`` and match a
        single-process ``AtlasServer.predict_batch`` bit for bit.

        ``trace`` is an optional ``(trace_id, parent_span_id)``
        context (minted by a FLAG_TRACE network client, threaded down
        by the gateway): each shard group gets a ``serve.route`` span
        tagged pinned vs promoted-replica, and workers parent their
        ``shard.batch`` spans on it."""
        self._check_open()
        pairs = list(pairs)
        out: list = [None] * len(pairs)
        if not pairs:
            return out
        self.flush()  # never interleave with queued windows on the pipes
        self.stats["requests"] += len(pairs)
        self.stats["batches_routed"] += 1
        by_shard: dict[int, tuple[list[int], list[tuple[int, int]], list[bool]]] = {}
        cluster_of = self._atlas.cluster_of_prefix
        assigned: dict[int, int] = {}  # batch-transient replica balance
        for i, (src, dst) in enumerate(pairs):
            cluster = cluster_of(dst)
            if cluster is None:
                continue  # unmapped destination: None, like the pool path
            shard, promoted = self._route_cluster(cluster, assigned)
            idxs, sub, hot = by_shard.setdefault(shard, ([], [], []))
            idxs.append(i)
            sub.append((src, dst))
            hot.append(promoted)
            if self._heat is not None:
                assigned[shard] = assigned.get(shard, 0) + 1
        sent = []
        first: ShardStateError | None = None
        for shard, (idxs, sub, hot) in by_shard.items():
            req_id = next(_REQ_IDS)
            child = None
            if trace is not None:
                # the route span parents the worker's shard.batch span;
                # record it now (the routing decision already happened)
                route_span = self.tracer.record(
                    trace,
                    "serve.route",
                    Tracer.now_us(),
                    0.0,
                    shard=shard,
                    pairs=len(sub),
                    replica="promoted" if any(hot) else "pinned",
                )
                child = (trace[0], route_span)
            try:
                self._shards.send(
                    shard, ("batch", req_id, sub, config, client, child)
                )
            except ShardStateError as exc:
                # Dead pipe: keep fanning out to (and draining) the
                # healthy shards so their streams stay in sync.
                if first is None:
                    first = exc
                continue

            def deliver(paths, idxs=idxs):
                for i, path in zip(idxs, paths):
                    out[i] = path

            self._inflight[shard] += 1
            sent.append((shard, req_id, deliver, None, time.perf_counter()))
        try:
            self._collect(sent)
        except ShardStateError as exc:
            if first is None:
                first = exc
        if first is not None:
            raise first
        return out

    # -- two-way query interface -------------------------------------------

    def query_batch(self, pairs, config=None, client=None, trace=None) -> list:
        """Both directions per pair, combined into
        :class:`~repro.client.query.PathInfo`\\ s (forward routed by the
        destination's shard, reverse by the source's). Shares
        ``INanoClient.query_batch``'s combine contract
        (:func:`~repro.client.query.combine_batches`), which the
        equivalence suite asserts bit for bit. ``trace`` threads a
        trace context into both directions' fan-outs."""
        return combine_batches(
            pairs,
            lambda batch: self.predict_batch(batch, config, client, trace=trace),
            self.day,
        )

    def query(self, src_prefix_index: int, dst_prefix_index: int, config=None):
        """One two-way query (PathInfo or None)."""
        return self.query_batch([(src_prefix_index, dst_prefix_index)], config)[0]

    # -- measuring clients --------------------------------------------------

    def register_client(
        self,
        token: object,
        from_src_links: dict,
        client_cluster_as: dict[int, int] | None = None,
        from_src_prefixes: set[int] | None = None,
        rev: int = 1,
    ) -> None:
        """Install (or refresh, with a higher ``rev``) a measuring
        client's FROM_SRC plane on every shard: each worker merges the
        plane onto its shared directed base exactly like a co-located
        ``INanoClient`` would, so client-scoped queries stay bit-for-bit
        with the single-process path."""
        self._check_open()
        self.flush()
        self._shards.broadcast(
            (
                "register",
                token,
                dict(from_src_links),
                dict(client_cluster_as or {}),
                set(from_src_prefixes) if from_src_prefixes is not None else None,
                rev,
            ),
            timeout=self.timeout,
        )
        self._clients.add(token)

    def release_client(self, token: object) -> None:
        """Drop a client's merged views, pooled predictors, and
        warm-start records on every shard."""
        self._check_open()
        self.flush()
        self._shards.broadcast(("release", token), timeout=self.timeout)
        self._clients.discard(token)

    # -- updates ------------------------------------------------------------

    def apply_delta(
        self,
        delta: AtlasDelta,
        verify: str = "fingerprint",
        payload: bytes | None = None,
    ) -> dict:
        """Advance every shard one day via the binary delta broadcast.

        ``payload``, when given, must be ``encode_delta(delta)`` — a
        caller that already encoded the same delta (the network
        gateway shares its push payload) skips the second encode.

        Encodes once, fans the same bytes to all workers, verifies the
        post-apply snapshots agree (same day, same per-graph array
        fingerprints — "one graph version across the fleet"), and rolls
        the front-end's routing atlas forward with the identical
        decoded view. Returns ``{"day", "epoch", "wire_bytes",
        "modes", "snapshot"}``.

        ``verify="fingerprint"`` (default) has each worker digest its
        full arrays into the handshake — O(graph), the strong check.
        ``verify="shape"`` compares only day/node/edge counts per
        graph (the cheap handshake for latency-sensitive update paths;
        :meth:`converged` still runs the full check on demand).
        """
        if verify not in ("fingerprint", "shape"):
            raise ValueError(f"unknown verify mode {verify!r}")
        self._check_open()
        self.flush()
        if payload is None:
            payload = encode_delta(delta)
        self._epoch += 1
        replies = self._shards.broadcast(
            ("delta", self._epoch, payload, verify), timeout=self.timeout
        )
        snapshots = []
        modes = []
        for shard, reply in enumerate(replies):
            tag, epoch, snapshot, report = reply
            if tag != "delta" or epoch != self._epoch:
                raise ShardStateError(
                    f"shard {shard} answered {tag!r}@{epoch} to delta "
                    f"broadcast {self._epoch}"
                )
            snapshots.append(snapshot)
            modes.append(report["mode"])
        self._require_converged(snapshots)
        apply_delta_inplace(self._atlas, decode_delta(payload))
        if self._atlas.day != snapshots[0]["day"]:
            raise ShardStateError(
                f"front-end day {self._atlas.day} != shard day "
                f"{snapshots[0]['day']} after broadcast"
            )
        self.stats["deltas_broadcast"] += 1
        self.stats["bytes_broadcast"] += len(payload) * self.n_shards
        return {
            "day": self._atlas.day,
            "epoch": self._epoch,
            "wire_bytes": len(payload),
            "modes": modes,
            "snapshot": snapshots[0],
        }

    def sync_from(self, server) -> int:
        """Roll forward to an :class:`AtlasServer`'s latest published
        day through its delta chain; returns the number of deltas
        applied. A gap in the chain cannot be bridged by broadcast —
        that is a restart, not an update."""
        applied = 0
        latest = server.latest_day()
        while self.day < latest:
            delta = server.delta_for(self.day + 1)
            self.apply_delta(delta)
            applied += 1
        return applied

    def shard_snapshots(self) -> list[dict]:
        """Fresh per-worker state snapshots (day + graph fingerprints)."""
        self._check_open()
        self.flush()
        return [
            reply[1]
            for reply in self._shards.broadcast(
                ("snapshot",), timeout=self.timeout
            )
        ]

    def converged(self) -> bool:
        """True when every shard reports identical graph state."""
        snapshots = self.shard_snapshots()
        return all(s == snapshots[0] for s in snapshots[1:])

    def _require_converged(self, snapshots: list[dict]) -> None:
        first = snapshots[0]
        for shard, snapshot in enumerate(snapshots[1:], start=1):
            if snapshot != first:
                raise ShardStateError(
                    f"shard {shard} diverged after broadcast: "
                    f"{snapshot} != {first}"
                )

    def shard_stats(self) -> list[dict]:
        """Per-worker counters (batches, pairs, deltas, clients)."""
        self._check_open()
        self.flush()
        return [
            reply[1]
            for reply in self._shards.broadcast(("stats",), timeout=self.timeout)
        ]

    def load_stats(self) -> dict:
        """The load telemetry the heat layer and an autoscaler read:
        per-shard queue depths, in-flight messages, and rolling request
        round-trip percentiles. Cheap — no worker round trips — and
        mirrored into :attr:`stats` (``queue_depth`` / ``inflight`` /
        ``req_p50_us`` / ``req_p99_us``) so the gateway's FLAG_STATS
        frames carry the same numbers."""
        depths = [queue.requests for queue in self._queues]
        p50 = self._req_hist.percentile(0.50)
        p99 = self._req_hist.percentile(0.99)
        out = {
            "queue_depths": depths,
            "queue_depth": sum(depths),
            "inflight_per_shard": list(self._inflight),
            "inflight": sum(self._inflight),
            "req_p50_us": p50,
            "req_p99_us": p99,
        }
        if self._heat is not None:
            out["heat"] = self._heat.snapshot()
            out["hot_destinations"] = sorted(self._heat.hot)
        self.stats["queue_depth"] = out["queue_depth"]
        self.stats["inflight"] = out["inflight"]
        self.stats["req_p50_us"] = p50
        self.stats["req_p99_us"] = p99
        return out

    # -- observability -------------------------------------------------------

    def trace_spans(self, trace_id: int) -> list:
        """Every span this front-end holds for one trace: its own
        ``serve.route`` spans plus the ``shard.batch`` /
        ``kernel.search`` spans workers returned with traced batches."""
        return self.trace.spans_of(trace_id)

    def fleet_snapshot(self) -> dict:
        """One metrics view over the whole fleet: the front-end's own
        registry, the workers' registries folded together under their
        original names (counters add, histograms merge bucket-wise),
        and each worker's snapshot again under a ``shard<i>.`` prefix
        for per-shard drill-down. Feed it to
        :func:`repro.obs.dashboard.render` or
        :meth:`~repro.obs.registry.MetricsRegistry.expose_text`."""
        self.load_stats()  # refresh queue/inflight/percentile gauges
        self._shards.export_metrics(self.obs)
        per_worker = self.shard_stats()
        out = dict(self.obs.snapshot())
        worker_snaps = [s.get("obs", {}) for s in per_worker]
        out.update(MetricsRegistry.merge_snapshots(*worker_snaps))
        for s in per_worker:
            out.update(
                prefix_snapshot(s.get("obs", {}), f"shard{s['shard']}")
            )
        return out
