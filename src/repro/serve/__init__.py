"""The sharded prediction service (multi-process scale-out serving).

Everything below :mod:`repro.runtime` is single-process: one
``AtlasRuntime``, one predictor pool, throughput capped at one core.
``repro.serve`` breaks that cap without giving up the runtime's
bit-for-bit guarantees:

* :mod:`repro.serve.hashring` — deterministic consistent-hash routing
  of destination clusters onto shards (BLAKE2b points, never the
  builtin randomized ``hash()``);
* :mod:`repro.serve.shard` — worker process lifecycle: the compiled
  CSR is exported once to ``multiprocessing.shared_memory`` and every
  worker maps it zero-copy;
* :mod:`repro.serve.worker` — the per-shard process: its own
  ``AtlasRuntime`` + predictor pool over the shared arrays, decoding
  binary delta broadcasts straight into the in-place patch and
  warm-start repair path;
* :mod:`repro.serve.service` — the :class:`PredictionService`
  front-end: destination-hashed fan-out, request coalescing windows,
  per-shard backpressure, delta broadcast with convergence handshakes,
  and FROM_SRC measuring-client registration;
* :mod:`repro.serve.heat` — sliding-window per-destination heat
  tracking (:class:`HeatTracker`): hot destinations promote onto a
  replica set of ring successors and queries fan to the least-loaded
  replica, demoting again on decay — pure routing policy, bit-for-bit
  answers either way.

``AtlasServer.serve(n_shards=...)`` is the one-call entry point: it
exports the server's latest published atlas into a running service.
"""

from repro.serve.hashring import HashRing
from repro.serve.heat import HeatTracker, Tracker
from repro.serve.service import PendingPrediction, PredictionService
from repro.serve.shard import ShardManager
from repro.serve.worker import graph_fingerprint, shard_worker_main

__all__ = [
    "HashRing",
    "HeatTracker",
    "Tracker",
    "PendingPrediction",
    "PredictionService",
    "ShardManager",
    "graph_fingerprint",
    "shard_worker_main",
]
