"""The shard worker process: one AtlasRuntime + predictor pool per core.

``shard_worker_main`` is the entry point the
:class:`~repro.serve.shard.ShardManager` spawns. Each worker

* decodes its own private :class:`~repro.atlas.model.Atlas` from the
  same encoded payload the service holds (identical bytes → identical
  ``links`` dict order → identical compiled emission order),
* maps the service's compiled CSR arrays **zero-copy** from shared
  memory (:meth:`~repro.core.compiled.CompiledGraph.from_shared`) and
  installs them into its runtime — no per-worker ``from_atlas``
  compile, one physical copy of the graph across N processes,
* then serves request messages off its pipe until told to stop.

Daily updates arrive as binary delta broadcasts
(:func:`~repro.atlas.serialization.decode_delta`) and flow straight
into :meth:`AtlasRuntime.apply_delta` — in-place atlas mutation, CSR
patch (which materializes the shared views copy-on-write on first
structural/value edit), warm-start cache repair, and pool prewarming,
exactly the path a single-process consumer takes. After each delta the
worker replies with a state snapshot (day + per-graph shape + array
fingerprint) so the service can verify every shard converged to the
same graph version.

Wire protocol (one request message in, one reply out, in order)::

    ("batch", req_id, pairs, config, client[, trace]) -> ("batch", req_id, [PredictedPath|None], spans|None)
    ("delta", epoch, payload, verify)         -> ("delta", epoch, snapshot, report)
    ("register", token, links, extra, prefixes, rev) -> ("register", token)
    ("release", token)                        -> ("release", token)
    ("snapshot",)                             -> ("snapshot", snapshot)
    ("stats",)                                -> ("stats", stats_dict)
    ("stop",)                                 -> ("stopped", shard_index)

Worker-side exceptions never kill the loop: the reply is
``("error", op, repr(exc))`` and the service raises
:class:`~repro.errors.ShardStateError`.
"""

from __future__ import annotations

import time

from repro.atlas.serialization import decode_atlas, decode_delta
from repro.core.compiled import CompiledGraph
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Span, Tracer
from repro.runtime import AtlasRuntime

#: recent per-batch handle times kept for the stats op's percentiles
_HANDLE_WINDOW = 512

__all__ = ["shard_worker_main", "graph_fingerprint", "runtime_snapshot"]


def graph_fingerprint(cg: CompiledGraph) -> int:
    """A position-sensitive cross-process fingerprint of the compiled
    arrays: a BLAKE2b digest over every array's exact bytes (floats
    included bit for bit), in field order.

    A digest — not a content sum — because the plausible divergence
    mode between shards is *reordering* (survivor order, set-iteration
    order feeding the splice), which permutes array elements without
    changing their multiset. Two graphs with equal fingerprints across
    workers are, for convergence-checking purposes, the same graph
    version.
    """
    import hashlib

    import numpy as np

    digest = hashlib.blake2b(digest_size=8)
    for name, values in cg.arrays().items():
        dtype = np.float64 if name in CompiledGraph._FLOAT_FIELDS else np.int64
        digest.update(np.asarray(values, dtype=dtype).tobytes())
    return int.from_bytes(digest.digest(), "big")


def runtime_snapshot(runtime: AtlasRuntime, fingerprint: bool = True) -> dict:
    """The comparable state one worker reports after init and after
    every delta: atlas day plus shape (+ array fingerprint) per
    materialized graph. Graph ``version`` ints are process-local and
    meaningless across workers; fingerprints are the cross-process
    equivalent. ``fingerprint=False`` skips the O(graph) array walk —
    the cheap handshake mode for latency-sensitive broadcasts."""
    return {
        "day": runtime.atlas.day,
        "updates_applied": runtime.updates_applied,
        "graphs": {
            name: (
                cg.n_nodes,
                cg.n_edges,
                graph_fingerprint(cg) if fingerprint else None,
            )
            for name, cg in sorted(runtime._graphs.items())
        },
    }


def _resolve_predictor(runtime, clients: dict, config, token):
    """Mirror :attr:`INanoClient.predictor`'s pool resolution for a
    registered client token (or the shared entry when ``token`` is
    None)."""
    if token is None:
        return runtime.pool.predictor(config)
    spec = clients[token]
    links = spec["from_src_links"]
    has_links = bool(links)
    return runtime.pool.predictor(
        config,
        client_key=token if has_links else None,
        from_src_links=links or None,
        from_src_prefixes=spec["from_src_prefixes"],
        client_cluster_as=spec["client_cluster_as"],
        from_src_rev=spec["rev"] if has_links else 0,
    )


def shard_worker_main(conn, init: dict) -> None:
    """Run one shard worker over ``conn`` until a ``stop`` message."""
    shard_index = init["shard_index"]
    atlas = decode_atlas(init["atlas_bytes"])
    runtime = AtlasRuntime(atlas)
    mapped: list[CompiledGraph] = []
    for name, meta in init["graphs"].items():
        cg = CompiledGraph.from_shared(meta, atlas)
        runtime.install_graph(name, cg, closed=(name == "closed"))
        mapped.append(cg)
    if init.get("untrack_shm"):
        # Non-fork start methods give each worker a private
        # resource_tracker that would unlink the (service-owned) blocks
        # when this worker exits; drop the attach-side registration.
        _untrack_shared(init["graphs"])
    clients: dict[object, dict] = {}
    obs = _WorkerObs(shard_index)
    conn.send(("ready", shard_index, runtime_snapshot(runtime)))
    try:
        while True:
            msg = conn.recv()
            op = msg[0]
            if op == "stop":
                conn.send(("stopped", shard_index))
                break
            try:
                conn.send(_dispatch(op, msg, runtime, clients, obs))
            except Exception as exc:  # keep the worker serving
                conn.send(("error", op, repr(exc)))
    except (EOFError, OSError, KeyboardInterrupt):
        # EOFError/BrokenPipeError: the service closed its end (clean
        # shutdown may race our final reply) — exit quietly.
        pass
    finally:
        for cg in mapped:
            cg.release_shared()
        conn.close()


class _WorkerObs:
    """One worker's observability bundle: the metrics registry, the
    dict-shaped stats view over it, the batch handle-time histogram,
    and a tracer for minting span ids when a traced batch arrives."""

    __slots__ = ("registry", "stats", "handle", "tracer", "shard")

    def __init__(self, shard_index: int) -> None:
        self.shard = shard_index
        self.registry = MetricsRegistry()
        self.stats = self.registry.view(
            "serve.shard",
            ("shard", "batches", "pairs", "deltas", "registered_clients"),
        )
        self.stats["shard"] = shard_index
        self.handle = self.registry.get_histogram(
            "serve.shard.handle_us", window=_HANDLE_WINDOW
        )
        self.tracer = Tracer()


def _repair_class(last_repair: dict) -> str:
    """The dominant repair class of the last applied delta — the
    warm-start outcome a traced kernel span reports."""
    best, best_n = "none", 0
    for key, n in last_repair.items():
        if key != "prewarmed" and n > best_n:
            best, best_n = key, n
    return best


def _traced_batch(obs, runtime, predictor, pairs, trace):
    """Run the batch under a ``shard.batch`` span with a
    ``kernel.search`` child attributing the pool's kernel-counter
    deltas (cache-hit vs cold-search, repair class) to this request."""
    pool = runtime.pool
    k0 = pool.kernel_stats()
    start_us = Tracer.now_us()
    t0 = time.perf_counter()
    batch_span = obs.tracer.mint_id()
    paths = predictor.predict_batch(pairs)
    duration_us = (time.perf_counter() - t0) * 1e6
    k1 = pool.kernel_stats()
    searches = k1["searches"] - k0["searches"]
    spans = [
        Span(
            trace_id=trace[0],
            span_id=batch_span,
            parent_id=trace[1],
            name="shard.batch",
            start_us=start_us,
            duration_us=duration_us,
            tags={"shard": str(obs.shard), "pairs": str(len(pairs))},
        ),
        Span(
            trace_id=trace[0],
            span_id=obs.tracer.mint_id(),
            parent_id=batch_span,
            name="kernel.search",
            start_us=start_us,
            duration_us=k1["search_us"] - k0["search_us"],
            tags={
                "searches": str(searches),
                "hits": str(k1["hits"] - k0["hits"]),
                "cache": "cold" if searches else "hit",
                "repair": _repair_class(pool.last_repair),
            },
        ),
    ]
    return paths, spans, duration_us


def _dispatch(op, msg, runtime, clients, obs):
    stats = obs.stats
    if op == "batch":
        _, req_id, pairs, config, token, *rest = msg
        trace = rest[0] if rest else None
        pairs = list(pairs)
        predictor = _resolve_predictor(runtime, clients, config, token)
        if trace is None:
            t0 = time.perf_counter()
            paths = predictor.predict_batch(pairs)
            spans = None
            duration_us = (time.perf_counter() - t0) * 1e6
        else:
            paths, spans, duration_us = _traced_batch(
                obs, runtime, predictor, pairs, trace
            )
        stats["batches"] += 1
        stats["pairs"] += len(pairs)
        obs.handle.observe(duration_us)
        return ("batch", req_id, paths, spans)
    if op == "delta":
        _, epoch, payload, verify = msg
        report = runtime.apply_delta(decode_delta(payload))
        stats["deltas"] += 1
        return (
            "delta",
            epoch,
            runtime_snapshot(runtime, fingerprint=(verify == "fingerprint")),
            {"mode": report.mode, "cache": report.cache},
        )
    if op == "register":
        _, token, links, extra, prefixes, rev = msg
        clients[token] = {
            "from_src_links": links,
            "client_cluster_as": extra,
            "from_src_prefixes": prefixes,
            "rev": rev,
        }
        stats["registered_clients"] = len(clients)
        return ("register", token)
    if op == "release":
        _, token = msg
        clients.pop(token, None)
        runtime.release(token)
        stats["registered_clients"] = len(clients)
        return ("release", token)
    if op == "snapshot":
        return ("snapshot", runtime_snapshot(runtime))
    if op == "stats":
        # the shard's registry is the single source: the dict surface
        # (batches/pairs/percentiles/kernel/last_repair) is derived
        # from it, and the full snapshot rides along under "obs" for
        # the front-end's fleet-wide merge
        runtime.pool.export_metrics(obs.registry)
        out = dict(stats)
        out["handle_p50_us"] = obs.handle.percentile(0.50)
        out["handle_p99_us"] = obs.handle.percentile(0.99)
        out["kernel"] = runtime.pool.kernel_stats()
        out["last_repair"] = dict(runtime.pool.last_repair)
        out["obs"] = obs.registry.snapshot()
        return ("stats", out)
    raise ValueError(f"unknown worker op {op!r}")


def _untrack_shared(graph_metas: dict) -> None:
    """Best-effort: unregister this process's attach-side shared-memory
    tracking (the exporting service owns block lifetime)."""
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover
        return
    for meta in graph_metas.values():
        try:
            resource_tracker.unregister(f"/{meta['name']}", "shared_memory")
        except Exception:  # pragma: no cover - tracker internals vary
            pass
