"""Gao-style AS relationship inference from observed AS paths.

The predictor never sees ground-truth business relationships; like the
paper (which combines CAIDA's inferences [16] and Gao's algorithm [19]),
it infers them from the AS paths visible in traceroutes and BGP feeds.
Gao's algorithm keys on the *top provider* of each path: the highest-degree
AS on a valley-free path splits it into an uphill and a downhill segment.
Inference is vote-based and intentionally error-prone in exactly the ways
the paper laments (spurious siblings among high-degree ASes, mislabeled
peers) — those errors are what Sections 4.3.2-4.3.4 then repair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Relationship codes as stored in the atlas (direction a -> b).
REL_PROVIDER = 0  # a is b's provider
REL_CUSTOMER = 1  # a is b's customer
REL_PEER = 2
REL_SIBLING = 3

_CODE_INVERSE = {
    REL_PROVIDER: REL_CUSTOMER,
    REL_CUSTOMER: REL_PROVIDER,
    REL_PEER: REL_PEER,
    REL_SIBLING: REL_SIBLING,
}


@dataclass
class InferredRelationships:
    """Vote-aggregated relationship table over observed AS adjacencies."""

    codes: dict[tuple[int, int], int] = field(default_factory=dict)

    def set(self, a: int, b: int, code: int) -> None:
        self.codes[(a, b)] = code
        self.codes[(b, a)] = _CODE_INVERSE[code]

    def get(self, a: int, b: int) -> int | None:
        return self.codes.get((a, b))

    def is_provider_of(self, a: int, b: int) -> bool:
        return self.codes.get((a, b)) == REL_PROVIDER

    def adjacencies(self) -> list[tuple[int, int]]:
        return sorted((a, b) for (a, b) in self.codes if a < b)

    def __len__(self) -> int:
        return len(self.codes) // 2


def degree_table(as_paths: list[tuple[int, ...]]) -> dict[int, int]:
    """AS degrees in the observed AS-level graph."""
    neighbors: dict[int, set[int]] = {}
    for path in as_paths:
        for a, b in zip(path, path[1:]):
            if a == b:
                continue
            neighbors.setdefault(a, set()).add(b)
            neighbors.setdefault(b, set()).add(a)
    return {asn: len(ns) for asn, ns in neighbors.items()}


def infer_relationships(
    as_paths: list[tuple[int, ...]],
    sibling_ratio: float = 2.0,
    peer_degree_ratio: float = 3.0,
) -> InferredRelationships:
    """Infer relationships from observed AS paths (Gao's algorithm).

    Phase 1: for every path, the maximum-degree AS is the top provider;
    edges before it vote "customer->provider", edges after vote
    "provider->customer". Phase 2: adjacencies with substantial votes in
    *both* directions (ratio below ``sibling_ratio``) become siblings.
    Phase 3: adjacencies only ever seen as the last uphill / first downhill
    step next to the top provider, between ASes of comparable degree, are
    re-labelled peers when neither direction's transit evidence survives.
    """
    degrees = degree_table(as_paths)
    up_votes: dict[tuple[int, int], int] = {}  # (a, b): a appeared as b's customer

    def vote(a: int, b: int) -> None:
        up_votes[(a, b)] = up_votes.get((a, b), 0) + 1

    transit_witness: set[tuple[int, int]] = set()  # middle AS carried a->...->b
    for path in as_paths:
        if len(path) < 2:
            continue
        peak = max(range(len(path)), key=lambda i: (degrees.get(path[i], 0), -i))
        for i in range(len(path) - 1):
            a, b = path[i], path[i + 1]
            if a == b:
                continue
            if i < peak:
                vote(a, b)  # a is customer of b
            else:
                vote(b, a)  # b is customer of a
        # Transit evidence: every interior AS provides transit between its
        # neighbors on the path.
        for i in range(1, len(path) - 1):
            transit_witness.add((path[i - 1], path[i]))
            transit_witness.add((path[i + 1], path[i]))

    result = InferredRelationships()
    adjacencies = {tuple(sorted(key)) for key in up_votes}
    for a, b in sorted(adjacencies):
        ab = up_votes.get((a, b), 0)  # a customer of b
        ba = up_votes.get((b, a), 0)  # b customer of a
        if ab > 0 and ba > 0 and max(ab, ba) < sibling_ratio * min(ab, ba):
            result.set(a, b, REL_SIBLING)
        elif ab >= ba:
            result.set(a, b, REL_CUSTOMER)  # a is b's customer
        else:
            result.set(a, b, REL_PROVIDER)

    # Peer re-labelling: comparable-degree pairs with weak, one-sided
    # evidence and no observed transit *through* the link in either
    # direction beyond the peak position.
    for a, b in sorted(adjacencies):
        code = result.get(a, b)
        if code == REL_SIBLING:
            continue
        da, db = degrees.get(a, 1), degrees.get(b, 1)
        ratio = max(da, db) / max(1, min(da, db))
        votes = up_votes.get((a, b), 0) + up_votes.get((b, a), 0)
        if ratio <= peer_degree_ratio and votes <= 2:
            result.set(a, b, REL_PEER)
    return result
