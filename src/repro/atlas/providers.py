"""Provider and upstream-neighbor mapping (Section 4.3.4).

For each AS we record two sets derived from observed paths:

* **upstream neighbors** — ASes seen immediately before it anywhere in
  the atlas (it carries transit from them), and
* **providers** — ASes seen immediately before it on paths that
  *terminate* at it (someone announces its prefixes through them).

When the provider set is a proper subset of the upstream set, the AS
provides transit over links it does not announce its own prefixes on, and
route prediction must refuse to enter the AS over a non-provider edge for
destination prefixes it originates. The same sets are refined per prefix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atlas.tuples import collapse_prepending


@dataclass
class ProviderInference:
    """Accumulates terminating/transit observations, emits provider maps."""

    _upstreams: dict[int, set[int]] = field(default_factory=dict)
    _providers: dict[int, set[int]] = field(default_factory=dict)
    _prefix_providers: dict[int, set[int]] = field(default_factory=dict)

    def add_path(
        self,
        raw_path: tuple[int, ...],
        dst_prefix_index: int | None = None,
        terminates: bool = False,
    ) -> None:
        """Record one observed AS path.

        ``terminates`` marks paths whose last AS is genuinely the origin of
        the destination (a traceroute that reached it, or a BGP
        announcement); only those contribute provider votes. Every path
        contributes upstream-neighbor votes.
        """
        path = collapse_prepending(raw_path)
        if len(path) < 2:
            return
        for a, b in zip(path, path[1:]):
            self._upstreams.setdefault(b, set()).add(a)
        if not terminates:
            return
        origin = path[-1]
        before_origin = path[-2]
        self._providers.setdefault(origin, set()).add(before_origin)
        if dst_prefix_index is not None:
            self._prefix_providers.setdefault(dst_prefix_index, set()).add(before_origin)

    def upstream_map(self) -> dict[int, frozenset[int]]:
        return {asn: frozenset(s) for asn, s in self._upstreams.items()}

    def provider_map(self) -> dict[int, frozenset[int]]:
        return {asn: frozenset(s) for asn, s in self._providers.items()}

    def prefix_provider_map(
        self, prefix_to_as: dict[int, int]
    ) -> dict[int, frozenset[int]]:
        """Per-prefix provider sets, kept only where they refine the AS set."""
        out: dict[int, frozenset[int]] = {}
        for prefix_index, providers in self._prefix_providers.items():
            origin = prefix_to_as.get(prefix_index)
            if origin is None:
                continue
            as_level = self._providers.get(origin, set())
            if providers != as_level:
                out[prefix_index] = frozenset(providers)
        return out

    def restrictive_ases(self) -> list[int]:
        """ASes whose provider set is a proper subset of their upstreams.

        The paper found 1,352 of 27,515 such ASes; the count is reported by
        the Table 2 benchmark for comparison.
        """
        out = []
        for asn, providers in self._providers.items():
            upstream = self._upstreams.get(asn, set())
            if providers < upstream:
                out.append(asn)
        return sorted(out)
