"""The compact link-level atlas: datasets, inference, serialization, deltas.

This is the artifact iNano ships to clients (Table 2 of the paper): an
annotated inter-cluster link map plus the side tables that let the
predictor reconstruct routing policy — prefix/AS mappings, AS degrees,
observed AS 3-tuples, inferred AS preferences, and provider sets. The
builder consumes only measurement-layer outputs (traceroutes, probes, BGP
feeds); nothing here reads the ground-truth topology.
"""

from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.builder import AtlasBuilder, AtlasInputs
from repro.atlas.relationships import InferredRelationships, infer_relationships
from repro.atlas.serialization import (
    dataset_payloads,
    decode_atlas,
    encode_atlas,
)
from repro.atlas.delta import AtlasDelta, apply_delta, compute_delta, encode_delta
from repro.atlas.swarm import SwarmConfig, simulate_swarm

__all__ = [
    "Atlas",
    "LinkRecord",
    "AtlasBuilder",
    "AtlasInputs",
    "InferredRelationships",
    "infer_relationships",
    "dataset_payloads",
    "decode_atlas",
    "encode_atlas",
    "AtlasDelta",
    "apply_delta",
    "compute_delta",
    "encode_delta",
    "SwarmConfig",
    "simulate_swarm",
]
