"""Relationship-agnostic AS preference inference (Section 4.3.3).

For every observed AS route ``r`` to a destination, the algorithm looks at
the alternative routes "visible in the topology but not taken": at each AS
along ``r``, a neighbor that demonstrably reaches the same destination in
the *same total AS-path length* — demonstrably, because some observed path
to that destination passes through the neighbor with a matching suffix
length — yields a preference vote ``(AS, chosen_next > alternative_next)``.

A preference is kept only if observed at least ``dominance`` (3×) as often
as its reverse; wavering pairs (load balancing) are dropped, and only
preferences valid across sources and destinations are retained, as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atlas.tuples import collapse_prepending


@dataclass
class PreferenceInference:
    """Accumulates observed terminating routes, then infers preferences."""

    dominance: float = 3.0
    _paths_by_dst: dict[int, list[tuple[int, ...]]] = field(default_factory=dict)
    _neighbors: dict[int, set[int]] = field(default_factory=dict)

    def add_path(self, raw_path: tuple[int, ...]) -> None:
        """Record one observed AS path that terminates at ``path[-1]``."""
        path = collapse_prepending(raw_path)
        if len(path) < 2:
            return
        self._paths_by_dst.setdefault(path[-1], []).append(path)
        for a, b in zip(path, path[1:]):
            self._neighbors.setdefault(a, set()).add(b)
            self._neighbors.setdefault(b, set()).add(a)

    @staticmethod
    def _suffix_lengths(
        paths: list[tuple[int, ...]],
    ) -> dict[int, tuple[int, int | None]]:
        """Per AS: fewest observed hops to this destination and the next hop
        taken on that minimal observed route (None when the AS is the
        destination itself)."""
        suffix: dict[int, tuple[int, int | None]] = {}
        for path in paths:
            n = len(path)
            for j, asn in enumerate(path):
                hops = n - 1 - j
                successor = path[j + 1] if j + 1 < n else None
                if asn not in suffix or hops < suffix[asn][0]:
                    suffix[asn] = (hops, successor)
        return suffix

    def infer(
        self,
        three_tuples: set[tuple[int, int, int]] | None = None,
        degrees: dict[int, int] | None = None,
        degree_threshold: int = 5,
    ) -> set[tuple[int, int, int]]:
        """Return the dominant preference tuples ``(AS1, AS2, AS3)``.

        ``(AS1, AS2, AS3)`` means AS1 prefers a route through AS2 over an
        equal-length route through AS3. When ``three_tuples`` is given, an
        alternative only generates a vote if its use would have been
        export-compliant — i.e. the 3-tuple (AS1, alt, alt's next hop) was
        observed — so export filtering is not mistaken for preference.
        """
        votes: dict[tuple[int, int, int], int] = {}
        for dst in sorted(self._paths_by_dst):
            paths = self._paths_by_dst[dst]
            suffix = self._suffix_lengths(paths)
            for path in paths:
                for k in range(len(path) - 1):
                    asn, chosen = path[k], path[k + 1]
                    remaining = len(path) - 1 - k
                    for alt in self._neighbors.get(asn, ()):
                        if alt == chosen or alt in path[: k + 1]:
                            continue
                        entry = suffix.get(alt)
                        if entry is None:
                            continue
                        alt_hops, alt_successor = entry
                        if alt_hops + 1 != remaining:
                            continue
                        # Exportability: for well-observed (high-degree)
                        # alternatives, require the 3-tuple through the
                        # alternative to have been seen, mirroring the
                        # predictor's own tuple check; otherwise the vote
                        # records export filtering, not preference.
                        checkable = (
                            degrees is None
                            or degrees.get(alt, 0) > degree_threshold
                        )
                        if (
                            three_tuples is not None
                            and checkable
                            and alt_successor is not None
                            and (asn, alt, alt_successor) not in three_tuples
                        ):
                            continue  # export artifact, not a choice
                        key = (asn, chosen, alt)
                        votes[key] = votes.get(key, 0) + 1

        preferences: set[tuple[int, int, int]] = set()
        for (asn, b, c), count in votes.items():
            if b > c:
                continue  # handle each unordered pair once
            reverse = votes.get((asn, c, b), 0)
            if count >= self.dominance * max(1, reverse) and count > reverse:
                preferences.add((asn, b, c))
            elif reverse >= self.dominance * max(1, count) and reverse > count:
                preferences.add((asn, c, b))
            # else: wavering (likely load balancing) -> drop both
        return preferences
