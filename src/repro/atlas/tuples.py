"""Observed AS 3-tuple extraction (Section 4.3.2).

A 3-tuple ``(AS1, AS2, AS3)`` witnesses that AS2 exports AS3's routes to
AS1 (or vice versa — the paper assumes commutativity and stores both
orders). Tuples come from traceroute-derived AS paths and BGP feed paths,
with AS-path prepending discounted (consecutive duplicates collapsed).
"""

from __future__ import annotations


def collapse_prepending(path: tuple[int, ...]) -> tuple[int, ...]:
    """Remove consecutive duplicate ASes (BGP prepending)."""
    out: list[int] = []
    for asn in path:
        if not out or out[-1] != asn:
            out.append(asn)
    return tuple(out)


def extract_three_tuples(
    as_paths: list[tuple[int, ...]],
) -> set[tuple[int, int, int]]:
    """All consecutive AS triples, commutativity-closed."""
    tuples: set[tuple[int, int, int]] = set()
    for raw in as_paths:
        path = collapse_prepending(raw)
        for i in range(len(path) - 2):
            a, b, c = path[i], path[i + 1], path[i + 2]
            if a == c:
                continue
            tuples.add((a, b, c))
            tuples.add((c, b, a))
    return tuples


def tuple_check(
    tuples: set[tuple[int, int, int]],
    degrees: dict[int, int],
    a: int,
    b: int,
    c: int,
    degree_threshold: int = 5,
) -> bool:
    """The 3-tuple validity check used during route prediction.

    A candidate AS segment ``a -> b -> c`` passes if the middle AS is an
    edge AS (degree <= threshold, where our visibility is too poor to have
    seen its export policy) or if the triple was observed.
    """
    if a == b or b == c:
        return True
    if degrees.get(b, 0) <= degree_threshold:
        return True
    return (a, b, c) in tuples
