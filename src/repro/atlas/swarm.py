"""Swarmed atlas distribution (Section 5, "Fetching the Atlas").

iNano offloads atlas dissemination to the clients themselves: the central
server seeds the file once and peers exchange chunks BitTorrent-style. We
simulate a round-based swarm: each round, every peer downloads up to its
per-round capacity in chunks, preferring the rarest chunks available from
the seed or from peers that already hold them. The simulation reports how
long full dissemination takes and what fraction of bytes the server had to
serve — the paper's "low infrastructure cost" argument in numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import derive_rng


@dataclass
class SwarmConfig:
    """Swarm parameters."""

    n_peers: int = 100
    file_bytes: int = 7_000_000
    chunk_bytes: int = 65_536
    peer_upload_chunks_per_round: int = 4
    seed_upload_chunks_per_round: int = 8
    peer_download_chunks_per_round: int = 8
    max_rounds: int = 10_000
    seed: int = 0


@dataclass
class SwarmResult:
    """Outcome of a swarm simulation."""

    rounds: int
    chunks_from_seed: int
    chunks_from_peers: int
    completed_peers: int
    n_chunks: int
    completion_round: dict[int, int] = field(default_factory=dict)

    @property
    def seed_byte_fraction(self) -> float:
        """Fraction of all delivered chunks the central seed served."""
        total = self.chunks_from_seed + self.chunks_from_peers
        return self.chunks_from_seed / total if total else 0.0


def simulate_swarm(config: SwarmConfig | None = None) -> SwarmResult:
    """Run the swarm to completion (or ``max_rounds``)."""
    cfg = config or SwarmConfig()
    rng = derive_rng(cfg.seed, "swarm")
    n_chunks = max(1, (cfg.file_bytes + cfg.chunk_bytes - 1) // cfg.chunk_bytes)
    have = [np.zeros(n_chunks, dtype=bool) for _ in range(cfg.n_peers)]
    chunk_copies = np.zeros(n_chunks, dtype=np.int64)  # copies among peers

    from_seed = 0
    from_peers = 0
    completion_round: dict[int, int] = {}
    rounds = 0
    for rounds in range(1, cfg.max_rounds + 1):
        seed_budget = cfg.seed_upload_chunks_per_round
        upload_budget = np.full(cfg.n_peers, cfg.peer_upload_chunks_per_round)
        order = rng.permutation(cfg.n_peers)
        progressed = False
        for peer in order:
            if have[peer].all():
                continue
            missing = np.flatnonzero(~have[peer])
            # Rarest-first among chunks this peer is missing.
            rarity = chunk_copies[missing]
            pick_order = missing[np.argsort(rarity, kind="stable")]
            downloaded = 0
            for chunk in pick_order:
                if downloaded >= cfg.peer_download_chunks_per_round:
                    break
                # Prefer a peer source with upload budget; else the seed.
                sources = [
                    p for p in range(cfg.n_peers)
                    if p != peer and have[p][chunk] and upload_budget[p] > 0
                ]
                if sources:
                    src = sources[int(rng.integers(0, len(sources)))]
                    upload_budget[src] -= 1
                    from_peers += 1
                elif seed_budget > 0:
                    seed_budget -= 1
                    from_seed += 1
                else:
                    continue
                have[peer][chunk] = True
                chunk_copies[chunk] += 1
                downloaded += 1
                progressed = True
            if downloaded and have[peer].all():
                completion_round[int(peer)] = rounds
        if all(h.all() for h in have):
            break
        if not progressed:
            break  # stalled (shouldn't happen with a live seed)

    return SwarmResult(
        rounds=rounds,
        chunks_from_seed=from_seed,
        chunks_from_peers=from_peers,
        completed_peers=sum(1 for h in have if h.all()),
        n_chunks=n_chunks,
        completion_round=completion_round,
    )
