"""Atlas data model.

An :class:`Atlas` holds exactly the datasets Table 2 of the paper lists,
plus the inferred AS relationships and late-exit pairs the prediction
graph needs. Cluster ids, prefix indices and ASNs are opaque integers in
atlas space — the atlas knows nothing about the ground-truth topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AtlasError


@dataclass(frozen=True, slots=True)
class LinkRecord:
    """An annotated directed inter-cluster link."""

    latency_ms: float
    loss_rate: float = 0.0


@dataclass
class Atlas:
    """One day's atlas. All datasets use atlas-space integer identifiers."""

    day: int = 0
    #: directed (cluster, cluster) -> latency annotation
    links: dict[tuple[int, int], LinkRecord] = field(default_factory=dict)
    #: directed links with a measured, non-negligible loss rate
    link_loss: dict[tuple[int, int], float] = field(default_factory=dict)
    prefix_to_cluster: dict[int, int] = field(default_factory=dict)
    prefix_to_as: dict[int, int] = field(default_factory=dict)
    cluster_to_as: dict[int, int] = field(default_factory=dict)
    as_degrees: dict[int, int] = field(default_factory=dict)
    #: observed (AS1, AS2, AS3) export witnesses, commutativity-closed
    three_tuples: set[tuple[int, int, int]] = field(default_factory=set)
    #: (AS1, AS2, AS3) meaning AS1 prefers next-hop AS2 over AS3
    preferences: set[tuple[int, int, int]] = field(default_factory=set)
    #: origin AS -> ASes observed announcing it (its usable providers)
    providers: dict[int, frozenset[int]] = field(default_factory=dict)
    #: per-prefix refinement of the provider sets (Section 4.3.4)
    prefix_providers: dict[int, frozenset[int]] = field(default_factory=dict)
    #: AS -> ASes seen immediately upstream of it anywhere in the atlas
    upstreams: dict[int, frozenset[int]] = field(default_factory=dict)
    #: AS pairs inferred to run late-exit routing between each other
    late_exit_pairs: set[frozenset[int]] = field(default_factory=set)
    #: inferred business relationships, encoded as (a, b) -> code; see
    #: repro.atlas.relationships for the code values
    relationship_codes: dict[tuple[int, int], int] = field(default_factory=dict)

    # -- convenience accessors --------------------------------------------

    def asn_of_cluster(self, cluster: int) -> int | None:
        return self.cluster_to_as.get(cluster)

    def cluster_of_prefix(self, prefix_index: int) -> int | None:
        return self.prefix_to_cluster.get(prefix_index)

    def loss_of_link(self, link: tuple[int, int]) -> float:
        """Loss annotation for a link (0.0 when not measured as lossy)."""
        return self.link_loss.get(link, 0.0)

    def degree_of_as(self, asn: int) -> int:
        return self.as_degrees.get(asn, 0)

    def has_tuple(self, a: int, b: int, c: int) -> bool:
        return (a, b, c) in self.three_tuples

    def prefers(self, asn: int, over_this: int, that: int) -> bool:
        """True iff the atlas says ``asn`` prefers next-hop ``over_this`` to ``that``."""
        return (asn, over_this, that) in self.preferences

    def providers_for_prefix(self, prefix_index: int) -> frozenset[int] | None:
        """Provider set guarding entry into the prefix's origin AS.

        Per-prefix data wins; falls back to the origin AS's set; None means
        the constraint cannot be applied (unknown origin or no data).
        """
        specific = self.prefix_providers.get(prefix_index)
        if specific is not None:
            return specific
        origin = self.prefix_to_as.get(prefix_index)
        if origin is None:
            return None
        return self.providers.get(origin)

    def neighbors_of_cluster(self) -> dict[int, list[int]]:
        """Adjacency over clusters (directed, from the link table)."""
        adj: dict[int, list[int]] = {}
        for (a, b) in self.links:
            adj.setdefault(a, []).append(b)
        return adj

    def clusters(self) -> set[int]:
        out = set()
        for (a, b) in self.links:
            out.add(a)
            out.add(b)
        return out

    def entry_counts(self) -> dict[str, int]:
        """Dataset cardinalities, for Table 2."""
        return {
            "inter_cluster_links": len(self.links),
            "link_loss_rates": len(self.link_loss),
            "prefix_to_cluster": len(self.prefix_to_cluster),
            "prefix_to_as": len(self.prefix_to_as),
            "cluster_to_as": len(self.cluster_to_as),
            "as_degrees": len(self.as_degrees),
            "as_three_tuples": len(self.three_tuples),
            "as_preferences": len(self.preferences),
            "provider_mappings": len(self.providers) + len(self.prefix_providers),
            "relationships": len(self.relationship_codes) // 2,
            "late_exit_pairs": len(self.late_exit_pairs),
        }

    def validate(self) -> None:
        """Cheap internal consistency checks; raises AtlasError."""
        for link in self.link_loss:
            if link not in self.links:
                raise AtlasError(f"loss entry for unknown link {link}")
        for cluster in set(self.prefix_to_cluster.values()):
            if cluster not in self.cluster_to_as:
                raise AtlasError(f"prefix maps to cluster {cluster} with no AS")
        for (a, b, c) in self.preferences:
            if a == b or a == c or b == c:
                raise AtlasError(f"degenerate preference tuple {(a, b, c)}")
