"""Daily atlas deltas (Section 6.2.3).

To update from day N to day N+1, iNano ships "the union of the old entries
not present any more and new entries added" for the churning datasets —
inter-cluster links, link loss rates, and AS three-tuples. Every other
dataset is stationary day to day and is refreshed in full only monthly;
the delta carries them only when they changed *and* the day is a monthly
refresh boundary.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.serialization import (
    _encode_latency,
    _encode_loss,
    _pack_rows,
    dataset_payloads,
)
from repro.errors import DeltaMismatchError

#: Datasets updated incrementally every day.
DAILY_DATASETS = ("inter_cluster_links", "link_loss_rates", "as_three_tuples")
#: Every other dataset refreshes in full on this cadence (days).
MONTHLY_REFRESH_DAYS = 30


@dataclass
class AtlasDelta:
    """The difference between two consecutive days' atlases."""

    base_day: int
    new_day: int
    links_removed: set[tuple[int, int]] = field(default_factory=set)
    links_updated: dict[tuple[int, int], LinkRecord] = field(default_factory=dict)
    loss_removed: set[tuple[int, int]] = field(default_factory=set)
    loss_updated: dict[tuple[int, int], float] = field(default_factory=dict)
    tuples_removed: set[tuple[int, int, int]] = field(default_factory=set)
    tuples_added: set[tuple[int, int, int]] = field(default_factory=set)
    #: full replacement payloads for monthly-refresh datasets (by name)
    monthly_refresh: dict[str, object] = field(default_factory=dict)

    def entry_counts(self) -> dict[str, int]:
        return {
            "inter_cluster_links": len(self.links_removed) + len(self.links_updated),
            "link_loss_rates": len(self.loss_removed) + len(self.loss_updated),
            "as_three_tuples": len(self.tuples_removed) + len(self.tuples_added),
        }


def _monthly_due(new_day: int) -> bool:
    return new_day % MONTHLY_REFRESH_DAYS == 0


def compute_delta(base: Atlas, new: Atlas) -> AtlasDelta:
    """Diff two atlases into the daily update payload."""
    delta = AtlasDelta(base_day=base.day, new_day=new.day)

    for link, record in new.links.items():
        old = base.links.get(link)
        if old is None or _encode_latency(old.latency_ms) != _encode_latency(record.latency_ms):
            delta.links_updated[link] = record
    delta.links_removed = set(base.links) - set(new.links)

    for link, loss in new.link_loss.items():
        old_loss = base.link_loss.get(link)
        if old_loss is None or _encode_loss(old_loss) != _encode_loss(loss):
            delta.loss_updated[link] = loss
    delta.loss_removed = set(base.link_loss) - set(new.link_loss)

    delta.tuples_added = new.three_tuples - base.three_tuples
    delta.tuples_removed = base.three_tuples - new.three_tuples

    if _monthly_due(new.day):
        delta.monthly_refresh = {
            "prefix_to_cluster": dict(new.prefix_to_cluster),
            "prefix_to_as": dict(new.prefix_to_as),
            "cluster_to_as": dict(new.cluster_to_as),
            "as_degrees": dict(new.as_degrees),
            "as_preferences": set(new.preferences),
            "providers": dict(new.providers),
            "prefix_providers": dict(new.prefix_providers),
            "upstreams": dict(new.upstreams),
            "relationship_codes": dict(new.relationship_codes),
            "late_exit_pairs": set(new.late_exit_pairs),
        }
    return delta


def apply_delta_inplace(base: Atlas, delta: AtlasDelta) -> Atlas:
    """Apply a daily delta by mutating ``base`` into the next day's atlas.

    Semantically identical to :func:`apply_delta`, including the
    resulting ``links`` dict ordering (survivors keep their positions,
    genuinely new links append in delta order) — which matters because
    the compiled query core's emission order follows that dict order.
    Mutating in place means every long-lived reference to the atlas
    (the runtime's compiled graphs, pooled predictors) observes the new
    day without rewiring; returns ``base`` for convenience.
    """
    if base.day != delta.base_day:
        raise DeltaMismatchError(expected_day=delta.base_day, actual_day=base.day)
    links = base.links
    for link in delta.links_removed:
        links.pop(link, None)
    links.update(delta.links_updated)
    loss = base.link_loss
    for link in delta.loss_removed:
        loss.pop(link, None)
    for link in [l for l in loss if l not in links]:
        del loss[link]
    loss.update(
        {link: rate for link, rate in delta.loss_updated.items() if link in links}
    )
    base.three_tuples -= delta.tuples_removed
    base.three_tuples |= delta.tuples_added

    refresh = delta.monthly_refresh
    if refresh:
        base.prefix_to_cluster = dict(refresh["prefix_to_cluster"])
        base.prefix_to_as = dict(refresh["prefix_to_as"])
        base.cluster_to_as = dict(refresh["cluster_to_as"])
        base.as_degrees = dict(refresh["as_degrees"])
        base.preferences = set(refresh["as_preferences"])
        base.providers = dict(refresh["providers"])
        base.prefix_providers = dict(refresh["prefix_providers"])
        base.upstreams = dict(refresh["upstreams"])
        base.relationship_codes = dict(refresh["relationship_codes"])
        base.late_exit_pairs = set(refresh["late_exit_pairs"])
    base.day = delta.new_day
    return base


def apply_delta(base: Atlas, delta: AtlasDelta) -> Atlas:
    """Apply a daily delta, producing the next day's atlas."""
    if base.day != delta.base_day:
        raise DeltaMismatchError(expected_day=delta.base_day, actual_day=base.day)
    new = Atlas(day=delta.new_day)
    new.links = {
        link: record for link, record in base.links.items()
        if link not in delta.links_removed
    }
    new.links.update(delta.links_updated)
    new.link_loss = {
        link: loss for link, loss in base.link_loss.items()
        if link not in delta.loss_removed and link in new.links
    }
    new.link_loss.update(
        {link: loss for link, loss in delta.loss_updated.items() if link in new.links}
    )
    new.three_tuples = (base.three_tuples - delta.tuples_removed) | delta.tuples_added

    refresh = delta.monthly_refresh
    new.prefix_to_cluster = dict(refresh.get("prefix_to_cluster", base.prefix_to_cluster))
    new.prefix_to_as = dict(refresh.get("prefix_to_as", base.prefix_to_as))
    new.cluster_to_as = dict(refresh.get("cluster_to_as", base.cluster_to_as))
    new.as_degrees = dict(refresh.get("as_degrees", base.as_degrees))
    new.preferences = set(refresh.get("as_preferences", base.preferences))
    new.providers = dict(refresh.get("providers", base.providers))
    new.prefix_providers = dict(refresh.get("prefix_providers", base.prefix_providers))
    new.upstreams = dict(refresh.get("upstreams", base.upstreams))
    new.relationship_codes = dict(refresh.get("relationship_codes", base.relationship_codes))
    new.late_exit_pairs = set(refresh.get("late_exit_pairs", base.late_exit_pairs))
    return new


def delta_payloads(delta: AtlasDelta) -> dict[str, bytes]:
    """Serialize the delta's sections (uncompressed), for size accounting."""
    payloads: dict[str, bytes] = {}
    payloads["inter_cluster_links"] = _pack_rows(
        "<BIIH",
        [(0, a, b, 0) for (a, b) in sorted(delta.links_removed)]
        + [
            (1, a, b, _encode_latency(rec.latency_ms))
            for (a, b), rec in sorted(delta.links_updated.items())
        ],
    )
    payloads["link_loss_rates"] = _pack_rows(
        "<BIIH",
        [(0, a, b, 0) for (a, b) in sorted(delta.loss_removed)]
        + [
            (1, a, b, _encode_loss(loss))
            for (a, b), loss in sorted(delta.loss_updated.items())
        ],
    )
    payloads["as_three_tuples"] = _pack_rows(
        "<BIII",
        [(0, *t) for t in sorted(delta.tuples_removed)]
        + [(1, *t) for t in sorted(delta.tuples_added)],
    )
    if delta.monthly_refresh:
        # Monthly refresh reuses the full-atlas section encodings.
        stub = Atlas(day=delta.new_day)
        stub.prefix_to_cluster = delta.monthly_refresh["prefix_to_cluster"]
        stub.prefix_to_as = delta.monthly_refresh["prefix_to_as"]
        stub.cluster_to_as = delta.monthly_refresh["cluster_to_as"]
        stub.as_degrees = delta.monthly_refresh["as_degrees"]
        stub.preferences = delta.monthly_refresh["as_preferences"]
        stub.providers = delta.monthly_refresh["providers"]
        stub.prefix_providers = delta.monthly_refresh["prefix_providers"]
        stub.upstreams = delta.monthly_refresh["upstreams"]
        stub.relationship_codes = delta.monthly_refresh["relationship_codes"]
        stub.late_exit_pairs = delta.monthly_refresh["late_exit_pairs"]
        full = dataset_payloads(stub)
        for name in (
            "prefix_to_cluster",
            "prefix_to_as",
            "cluster_to_as",
            "as_degrees",
            "as_preferences",
            "provider_mappings",
            "relationships",
            "late_exit_pairs",
        ):
            payloads[f"monthly:{name}"] = full[name]
    return payloads


def encode_delta(delta: AtlasDelta, compress_level: int = 6) -> bytes:
    """Wire encoding of a delta (header + compressed sections)."""
    out = bytearray(b"INND")
    out += struct.pack("<II", delta.base_day, delta.new_day)
    payloads = delta_payloads(delta)
    out += struct.pack("<B", len(payloads))
    for name in sorted(payloads):
        compressed = zlib.compress(payloads[name], compress_level)
        name_bytes = name.encode("ascii")
        out += struct.pack("<B", len(name_bytes))
        out += name_bytes
        out += struct.pack("<I", len(compressed))
        out += compressed
    return bytes(out)


def compressed_delta_sizes(delta: AtlasDelta, compress_level: int = 6) -> dict[str, int]:
    """Per-section compressed sizes of the daily update (Table 2 delta column)."""
    return {
        name: len(zlib.compress(payload, compress_level))
        for name, payload in delta_payloads(delta).items()
    }
