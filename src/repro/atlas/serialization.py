"""Binary serialization of atlas datasets — and the delta broadcast codec.

Each dataset gets its own length-prefixed section so the Table 2 benchmark
can report per-dataset compressed sizes exactly the way the paper does.
The format is row-oriented ``struct`` packing with sorted keys, which is
what makes DEFLATE effective (neighboring rows share most of their bytes).

:func:`encode_delta` / :func:`decode_delta` are the **shard broadcast
codec**: the wire format the sharded prediction service
(:mod:`repro.serve`) uses to fan one day's
:class:`~repro.atlas.delta.AtlasDelta` out to every worker process. It
reuses the atlas framing (magic + length-prefixed compressed sections)
but differs from the bandwidth-accounting encoder in
:mod:`repro.atlas.delta` in two load-bearing ways:

* **lossless values** — latencies and losses travel as raw float64, not
  quantized units, so a worker that decodes the broadcast lands on
  exactly the atlas a co-located consumer holding the object delta
  lands on (bit-for-bit identical compiled arrays);
* **order-preserving** — ``links_updated`` (and ``loss_updated``) rows
  keep the delta's dict iteration order, because
  ``apply_delta_inplace`` appends genuinely new links in that order and
  the compiled emission order follows the ``links`` dict. Sorting the
  rows (as the size-accounting encoder does) would reorder appended
  links and silently fork a worker's graph from the service's.
  Monthly-refresh sections carry ``relationship_codes`` in full (both
  directions, no ``a < b`` halving) for the same reason: lossless
  round-trip beats compactness on this path.
"""

from __future__ import annotations

import struct
import zlib

from repro.atlas.model import Atlas, LinkRecord
from repro.errors import AtlasFormatError, CodecError

MAGIC = b"INNA"
FORMAT_VERSION = 1
#: version 2 is the **exact** anchor format: float64 link values, dict
#: iteration order preserved, relationship codes in full. It exists so a
#: gateway can fold its delta log into a fresh anchor (re-anchoring)
#: without breaking the anchor+INDB bit-for-bit convergence contract —
#: re-encoding a delta-evolved atlas with version 1 would re-quantize
#: values and re-sort appended links, silently forking every client that
#: bootstraps from the new anchor off the origin's runtime.
EXACT_FORMAT_VERSION = 2

#: hard ceiling on one decompressed section — a corrupt or hostile
#: length prefix must not balloon the decoder's memory
MAX_SECTION_BYTES = 256 * 1024 * 1024

#: Dataset names in serialization order; names match Table 2's rows where
#: the paper has them.
DATASET_ORDER = [
    "inter_cluster_links",
    "link_loss_rates",
    "prefix_to_cluster",
    "prefix_to_as",
    "cluster_to_as",
    "as_degrees",
    "as_three_tuples",
    "as_preferences",
    "provider_mappings",
    "relationships",
    "late_exit_pairs",
]

_LATENCY_UNIT_MS = 0.05  # stored as uint16 multiples: max ~3276 ms
_LOSS_UNIT = 1.0 / 10000.0


def _pack_rows(fmt: str, rows: list[tuple]) -> bytes:
    packer = struct.Struct(fmt)
    return b"".join(packer.pack(*row) for row in rows)


def _unpack_rows(fmt: str, payload: bytes) -> list[tuple]:
    packer = struct.Struct(fmt)
    if len(payload) % packer.size:
        raise CodecError(
            f"dataset payload of {len(payload)} bytes is not aligned to "
            f"{packer.size}-byte rows"
        )
    return [packer.unpack_from(payload, off) for off in range(0, len(payload), packer.size)]


def _read_sections(
    data: bytes, offset: int, n_sections: int, what: str
) -> dict[str, bytes]:
    """Shared section walk for the atlas and delta decoders: every
    length is validated against the remaining payload before use, so
    truncated or oversized frames raise :class:`~repro.errors.CodecError`
    instead of leaking ``struct.error`` / ``IndexError`` /
    ``zlib.error`` from arbitrary offsets."""
    sections: dict[str, bytes] = {}
    for _ in range(n_sections):
        if offset + 1 > len(data):
            raise CodecError(f"{what}: truncated before section name")
        (name_len,) = struct.unpack_from("<B", data, offset)
        offset += 1
        if offset + name_len + 8 > len(data):
            raise CodecError(f"{what}: truncated section header")
        try:
            name = data[offset : offset + name_len].decode("ascii")
        except UnicodeDecodeError as exc:
            raise CodecError(f"{what}: undecodable section name") from exc
        offset += name_len
        comp_len, raw_len = struct.unpack_from("<II", data, offset)
        offset += 8
        if raw_len > MAX_SECTION_BYTES:
            raise CodecError(
                f"{what}: section {name} declares {raw_len} bytes "
                f"(limit {MAX_SECTION_BYTES})"
            )
        if offset + comp_len > len(data):
            raise CodecError(
                f"{what}: section {name} truncated "
                f"({comp_len} bytes declared, {len(data) - offset} left)"
            )
        try:
            # bounded inflate: a bomb claiming a small raw_len stops at
            # raw_len + 1 bytes instead of materializing its full output
            decomp = zlib.decompressobj()
            raw = decomp.decompress(data[offset : offset + comp_len], raw_len + 1)
        except zlib.error as exc:
            raise CodecError(f"{what}: section {name} is corrupt: {exc}") from exc
        if (
            len(raw) != raw_len
            or not decomp.eof
            or decomp.unconsumed_tail
            or decomp.unused_data
        ):
            raise CodecError(f"{what}: section {name} length mismatch")
        sections[name] = raw
        offset += comp_len
    if offset != len(data):
        raise CodecError(
            f"{what}: {len(data) - offset} trailing bytes after the last "
            f"section"
        )
    return sections


def _encode_latency(latency_ms: float) -> int:
    return min(0xFFFF, max(1, round(latency_ms / _LATENCY_UNIT_MS)))


def _decode_latency(units: int) -> float:
    return units * _LATENCY_UNIT_MS


def _encode_loss(loss: float) -> int:
    return min(0xFFFF, max(0, round(loss / _LOSS_UNIT)))


def _decode_loss(units: int) -> float:
    return units * _LOSS_UNIT


def _shared_payloads(atlas: Atlas) -> dict[str, bytes]:
    """The sections encoded identically by both format versions."""
    payloads: dict[str, bytes] = {}
    payloads["prefix_to_cluster"] = _pack_rows(
        "<II", sorted(atlas.prefix_to_cluster.items())
    )
    payloads["prefix_to_as"] = _pack_rows("<II", sorted(atlas.prefix_to_as.items()))
    payloads["cluster_to_as"] = _pack_rows("<II", sorted(atlas.cluster_to_as.items()))
    payloads["as_three_tuples"] = _pack_rows("<III", sorted(atlas.three_tuples))
    payloads["as_preferences"] = _pack_rows("<III", sorted(atlas.preferences))

    provider_rows: list[tuple[int, int, int, int]] = []
    for asn, providers in sorted(atlas.providers.items()):
        for provider in sorted(providers):
            provider_rows.append((0, asn, provider, 0))
    for prefix_index, providers in sorted(atlas.prefix_providers.items()):
        for provider in sorted(providers):
            provider_rows.append((1, prefix_index, provider, 0))
    for asn, ups in sorted(atlas.upstreams.items()):
        for upstream in sorted(ups):
            provider_rows.append((2, asn, upstream, 0))
    payloads["provider_mappings"] = _pack_rows("<BIIB", provider_rows)

    payloads["late_exit_pairs"] = _pack_rows(
        "<II", sorted(tuple(sorted(p)) for p in atlas.late_exit_pairs)
    )
    return payloads


def dataset_payloads(atlas: Atlas) -> dict[str, bytes]:
    """Serialize each dataset independently (uncompressed bytes)."""
    payloads = _shared_payloads(atlas)
    payloads["inter_cluster_links"] = _pack_rows(
        "<IIH",
        [
            (a, b, _encode_latency(rec.latency_ms))
            for (a, b), rec in sorted(atlas.links.items())
        ],
    )
    payloads["link_loss_rates"] = _pack_rows(
        "<IIH",
        [
            (a, b, _encode_loss(loss))
            for (a, b), loss in sorted(atlas.link_loss.items())
        ],
    )
    payloads["as_degrees"] = _pack_rows("<IH", sorted(atlas.as_degrees.items()))
    payloads["relationships"] = _pack_rows(
        "<IIB",
        [
            (a, b, code)
            for (a, b), code in sorted(atlas.relationship_codes.items())
            if a < b
        ],
    )
    return payloads


def dataset_payloads_exact(atlas: Atlas) -> dict[str, bytes]:
    """Version-2 payloads: lossless values, dict-order rows.

    Differs from :func:`dataset_payloads` only where version 1 loses
    information:

    * ``inter_cluster_links`` — float64 latency **and** loss, rows in
      ``atlas.links`` iteration order (the compiled emission order);
    * ``link_loss_rates`` — float64 loss in dict order;
    * ``as_degrees`` — int64 (monthly refreshes carry ``<Iq``);
    * ``relationships`` — both directions verbatim, no ``a < b``
      halving, so asymmetric codes survive the round trip.
    """
    payloads = _shared_payloads(atlas)
    payloads["inter_cluster_links"] = _pack_rows(
        "<IIdd",
        [
            (a, b, rec.latency_ms, rec.loss_rate)
            for (a, b), rec in atlas.links.items()
        ],
    )
    payloads["link_loss_rates"] = _pack_rows(
        "<IId",
        [(a, b, loss) for (a, b), loss in atlas.link_loss.items()],
    )
    payloads["as_degrees"] = _pack_rows("<Iq", sorted(atlas.as_degrees.items()))
    payloads["relationships"] = _pack_rows(
        "<IIB",
        [(a, b, code) for (a, b), code in atlas.relationship_codes.items()],
    )
    return payloads


def encode_atlas(atlas: Atlas, compress_level: int = 6, *, exact: bool = False) -> bytes:
    """Full wire encoding: header + per-dataset compressed sections.

    ``exact=True`` emits format version 2 (see
    :func:`dataset_payloads_exact`): a lossless, order-preserving anchor
    whose decode reproduces ``atlas`` bit-for-bit — including link
    insertion order, which the compiled graph emission follows. Publish
    paths keep the default version 1 (quantized, sorted, smaller).
    """
    payloads = dataset_payloads_exact(atlas) if exact else dataset_payloads(atlas)
    out = bytearray()
    out += MAGIC
    out += struct.pack(
        "<HI", EXACT_FORMAT_VERSION if exact else FORMAT_VERSION, atlas.day
    )
    out += struct.pack("<B", len(DATASET_ORDER))
    for name in DATASET_ORDER:
        compressed = zlib.compress(payloads[name], compress_level)
        name_bytes = name.encode("ascii")
        out += struct.pack("<B", len(name_bytes))
        out += name_bytes
        out += struct.pack("<II", len(compressed), len(payloads[name]))
        out += compressed
    return bytes(out)


def decode_atlas(data: bytes) -> Atlas:
    """Inverse of :func:`encode_atlas`; validates framing (truncated or
    oversized frames raise :class:`~repro.errors.CodecError`)."""
    if len(data) < 11:
        raise CodecError(f"atlas frame of {len(data)} bytes has no header")
    if data[:4] != MAGIC:
        raise AtlasFormatError("bad magic")
    version, day = struct.unpack_from("<HI", data, 4)
    if version not in (FORMAT_VERSION, EXACT_FORMAT_VERSION):
        raise AtlasFormatError(f"unsupported atlas format version {version}")
    exact = version == EXACT_FORMAT_VERSION
    (n_sections,) = struct.unpack_from("<B", data, 10)
    sections = _read_sections(data, 11, n_sections, "atlas")

    atlas = Atlas(day=day)
    if exact:
        for a, b, lat, loss in _unpack_rows(
            "<IIdd", sections.get("inter_cluster_links", b"")
        ):
            atlas.links[(a, b)] = LinkRecord(latency_ms=lat, loss_rate=loss)
        for a, b, loss in _unpack_rows("<IId", sections.get("link_loss_rates", b"")):
            atlas.link_loss[(a, b)] = loss
    else:
        for a, b, lat in _unpack_rows("<IIH", sections.get("inter_cluster_links", b"")):
            atlas.links[(a, b)] = LinkRecord(latency_ms=_decode_latency(lat))
        for a, b, loss in _unpack_rows("<IIH", sections.get("link_loss_rates", b"")):
            atlas.link_loss[(a, b)] = _decode_loss(loss)
    atlas.prefix_to_cluster = {
        k: v for k, v in _unpack_rows("<II", sections.get("prefix_to_cluster", b""))
    }
    atlas.prefix_to_as = {
        k: v for k, v in _unpack_rows("<II", sections.get("prefix_to_as", b""))
    }
    atlas.cluster_to_as = {
        k: v for k, v in _unpack_rows("<II", sections.get("cluster_to_as", b""))
    }
    atlas.as_degrees = {
        k: v
        for k, v in _unpack_rows(
            "<Iq" if exact else "<IH", sections.get("as_degrees", b"")
        )
    }
    atlas.three_tuples = {
        (a, b, c) for a, b, c in _unpack_rows("<III", sections.get("as_three_tuples", b""))
    }
    atlas.preferences = {
        (a, b, c) for a, b, c in _unpack_rows("<III", sections.get("as_preferences", b""))
    }
    providers: dict[int, set[int]] = {}
    prefix_providers: dict[int, set[int]] = {}
    upstreams: dict[int, set[int]] = {}
    for kind, key, value, _ in _unpack_rows("<BIIB", sections.get("provider_mappings", b"")):
        target = {0: providers, 1: prefix_providers, 2: upstreams}[kind]
        target.setdefault(key, set()).add(value)
    atlas.providers = {k: frozenset(v) for k, v in providers.items()}
    atlas.prefix_providers = {k: frozenset(v) for k, v in prefix_providers.items()}
    atlas.upstreams = {k: frozenset(v) for k, v in upstreams.items()}
    if exact:
        for a, b, code in _unpack_rows("<IIB", sections.get("relationships", b"")):
            atlas.relationship_codes[(a, b)] = code
    else:
        for a, b, code in _unpack_rows("<IIB", sections.get("relationships", b"")):
            from repro.atlas.relationships import _CODE_INVERSE

            atlas.relationship_codes[(a, b)] = code
            atlas.relationship_codes[(b, a)] = _CODE_INVERSE[code]
    atlas.late_exit_pairs = {
        frozenset((a, b)) for a, b in _unpack_rows("<II", sections.get("late_exit_pairs", b""))
    }
    return atlas


DELTA_MAGIC = b"INDB"  # iNano delta broadcast
DELTA_FORMAT_VERSION = 1

#: broadcast sections in wire order; ``m:*`` sections appear only on
#: monthly-refresh days
_DELTA_SECTIONS = [
    "links_removed",
    "links_updated",
    "loss_removed",
    "loss_updated",
    "tuples_removed",
    "tuples_added",
    "m:prefix_to_cluster",
    "m:prefix_to_as",
    "m:cluster_to_as",
    "m:as_degrees",
    "m:as_preferences",
    "m:providers",
    "m:prefix_providers",
    "m:upstreams",
    "m:relationship_codes",
    "m:late_exit_pairs",
]


def _delta_payloads_exact(delta) -> dict[str, bytes]:
    """Per-section broadcast payloads (uncompressed, lossless)."""
    payloads: dict[str, bytes] = {
        "links_removed": _pack_rows("<II", sorted(delta.links_removed)),
        "links_updated": _pack_rows(
            "<IIdd",
            [
                (a, b, rec.latency_ms, rec.loss_rate)
                for (a, b), rec in delta.links_updated.items()
            ],
        ),
        "loss_removed": _pack_rows("<II", sorted(delta.loss_removed)),
        "loss_updated": _pack_rows(
            "<IId",
            [(a, b, loss) for (a, b), loss in delta.loss_updated.items()],
        ),
        "tuples_removed": _pack_rows("<III", sorted(delta.tuples_removed)),
        "tuples_added": _pack_rows("<III", sorted(delta.tuples_added)),
    }
    refresh = delta.monthly_refresh
    if refresh:
        payloads["m:prefix_to_cluster"] = _pack_rows(
            "<II", list(refresh["prefix_to_cluster"].items())
        )
        payloads["m:prefix_to_as"] = _pack_rows(
            "<II", list(refresh["prefix_to_as"].items())
        )
        payloads["m:cluster_to_as"] = _pack_rows(
            "<II", list(refresh["cluster_to_as"].items())
        )
        payloads["m:as_degrees"] = _pack_rows(
            "<Iq", list(refresh["as_degrees"].items())
        )
        payloads["m:as_preferences"] = _pack_rows(
            "<III", sorted(refresh["as_preferences"])
        )
        for kind in ("providers", "prefix_providers", "upstreams"):
            payloads[f"m:{kind}"] = _pack_rows(
                "<II",
                [
                    (key, member)
                    for key, members in sorted(refresh[kind].items())
                    for member in sorted(members)
                ],
            )
        payloads["m:relationship_codes"] = _pack_rows(
            "<IIB",
            [
                (a, b, code)
                for (a, b), code in refresh["relationship_codes"].items()
            ],
        )
        payloads["m:late_exit_pairs"] = _pack_rows(
            "<II",
            sorted(tuple(sorted(p)) for p in refresh["late_exit_pairs"]),
        )
    return payloads


def encode_delta(delta, compress_level: int = 6) -> bytes:
    """Broadcast wire encoding of one daily delta (see module docstring).

    Inverse of :func:`decode_delta`. Distinct from
    :func:`repro.atlas.delta.encode_delta` (the paper's quantized
    size-accounting format, which has no decoder): this codec is
    lossless and order-preserving, so ``apply_delta_inplace`` of the
    decoded object reproduces the original's effect exactly.
    """
    payloads = _delta_payloads_exact(delta)
    out = bytearray()
    out += DELTA_MAGIC
    out += struct.pack(
        "<HII", DELTA_FORMAT_VERSION, delta.base_day, delta.new_day
    )
    present = [name for name in _DELTA_SECTIONS if name in payloads]
    out += struct.pack("<B", len(present))
    for name in present:
        compressed = zlib.compress(payloads[name], compress_level)
        name_bytes = name.encode("ascii")
        out += struct.pack("<B", len(name_bytes))
        out += name_bytes
        out += struct.pack("<II", len(compressed), len(payloads[name]))
        out += compressed
    return bytes(out)


def decode_delta(data: bytes):
    """Decode a broadcast payload back into an ``AtlasDelta``; validates
    framing. The decoded object feeds ``AtlasRuntime.apply_delta``
    directly — in-place atlas mutation, CSR patch, warm-start repair —
    with no intermediate representation."""
    from repro.atlas.delta import AtlasDelta

    if len(data) < 15:
        raise CodecError(f"delta frame of {len(data)} bytes has no header")
    if data[:4] != DELTA_MAGIC:
        raise AtlasFormatError("bad delta magic")
    version, base_day, new_day = struct.unpack_from("<HII", data, 4)
    if version != DELTA_FORMAT_VERSION:
        raise AtlasFormatError(f"unsupported delta format version {version}")
    (n_sections,) = struct.unpack_from("<B", data, 14)
    sections = _read_sections(data, 15, n_sections, "delta")

    delta = AtlasDelta(base_day=base_day, new_day=new_day)
    delta.links_removed = {
        (a, b) for a, b in _unpack_rows("<II", sections.get("links_removed", b""))
    }
    delta.links_updated = {
        (a, b): LinkRecord(latency_ms=lat, loss_rate=loss)
        for a, b, lat, loss in _unpack_rows(
            "<IIdd", sections.get("links_updated", b"")
        )
    }
    delta.loss_removed = {
        (a, b) for a, b in _unpack_rows("<II", sections.get("loss_removed", b""))
    }
    delta.loss_updated = {
        (a, b): loss
        for a, b, loss in _unpack_rows("<IId", sections.get("loss_updated", b""))
    }
    delta.tuples_removed = {
        t for t in _unpack_rows("<III", sections.get("tuples_removed", b""))
    }
    delta.tuples_added = {
        t for t in _unpack_rows("<III", sections.get("tuples_added", b""))
    }
    if "m:cluster_to_as" in sections or "m:relationship_codes" in sections:
        refresh: dict[str, object] = {
            "prefix_to_cluster": dict(
                _unpack_rows("<II", sections.get("m:prefix_to_cluster", b""))
            ),
            "prefix_to_as": dict(
                _unpack_rows("<II", sections.get("m:prefix_to_as", b""))
            ),
            "cluster_to_as": dict(
                _unpack_rows("<II", sections.get("m:cluster_to_as", b""))
            ),
            "as_degrees": dict(
                _unpack_rows("<Iq", sections.get("m:as_degrees", b""))
            ),
            "as_preferences": {
                t for t in _unpack_rows("<III", sections.get("m:as_preferences", b""))
            },
            "relationship_codes": {
                (a, b): code
                for a, b, code in _unpack_rows(
                    "<IIB", sections.get("m:relationship_codes", b"")
                )
            },
            "late_exit_pairs": {
                frozenset((a, b))
                for a, b in _unpack_rows("<II", sections.get("m:late_exit_pairs", b""))
            },
        }
        for kind in ("providers", "prefix_providers", "upstreams"):
            grouped: dict[int, set[int]] = {}
            for key, member in _unpack_rows("<II", sections.get(f"m:{kind}", b"")):
                grouped.setdefault(key, set()).add(member)
            refresh[kind] = {k: frozenset(v) for k, v in grouped.items()}
        delta.monthly_refresh = refresh
    return delta


def compressed_section_sizes(atlas: Atlas, compress_level: int = 6) -> dict[str, int]:
    """Per-dataset compressed byte counts (Table 2's middle column)."""
    return {
        name: len(zlib.compress(payload, compress_level))
        for name, payload in dataset_payloads(atlas).items()
    }
