"""Binary serialization of atlas datasets.

Each dataset gets its own length-prefixed section so the Table 2 benchmark
can report per-dataset compressed sizes exactly the way the paper does.
The format is row-oriented ``struct`` packing with sorted keys, which is
what makes DEFLATE effective (neighboring rows share most of their bytes).
"""

from __future__ import annotations

import struct
import zlib

from repro.atlas.model import Atlas, LinkRecord
from repro.errors import AtlasFormatError

MAGIC = b"INNA"
FORMAT_VERSION = 1

#: Dataset names in serialization order; names match Table 2's rows where
#: the paper has them.
DATASET_ORDER = [
    "inter_cluster_links",
    "link_loss_rates",
    "prefix_to_cluster",
    "prefix_to_as",
    "cluster_to_as",
    "as_degrees",
    "as_three_tuples",
    "as_preferences",
    "provider_mappings",
    "relationships",
    "late_exit_pairs",
]

_LATENCY_UNIT_MS = 0.05  # stored as uint16 multiples: max ~3276 ms
_LOSS_UNIT = 1.0 / 10000.0


def _pack_rows(fmt: str, rows: list[tuple]) -> bytes:
    packer = struct.Struct(fmt)
    return b"".join(packer.pack(*row) for row in rows)


def _unpack_rows(fmt: str, payload: bytes) -> list[tuple]:
    packer = struct.Struct(fmt)
    if len(payload) % packer.size:
        raise AtlasFormatError("dataset payload is not row-aligned")
    return [packer.unpack_from(payload, off) for off in range(0, len(payload), packer.size)]


def _encode_latency(latency_ms: float) -> int:
    return min(0xFFFF, max(1, round(latency_ms / _LATENCY_UNIT_MS)))


def _decode_latency(units: int) -> float:
    return units * _LATENCY_UNIT_MS


def _encode_loss(loss: float) -> int:
    return min(0xFFFF, max(0, round(loss / _LOSS_UNIT)))


def _decode_loss(units: int) -> float:
    return units * _LOSS_UNIT


def dataset_payloads(atlas: Atlas) -> dict[str, bytes]:
    """Serialize each dataset independently (uncompressed bytes)."""
    payloads: dict[str, bytes] = {}
    payloads["inter_cluster_links"] = _pack_rows(
        "<IIH",
        [
            (a, b, _encode_latency(rec.latency_ms))
            for (a, b), rec in sorted(atlas.links.items())
        ],
    )
    payloads["link_loss_rates"] = _pack_rows(
        "<IIH",
        [
            (a, b, _encode_loss(loss))
            for (a, b), loss in sorted(atlas.link_loss.items())
        ],
    )
    payloads["prefix_to_cluster"] = _pack_rows(
        "<II", sorted(atlas.prefix_to_cluster.items())
    )
    payloads["prefix_to_as"] = _pack_rows("<II", sorted(atlas.prefix_to_as.items()))
    payloads["cluster_to_as"] = _pack_rows("<II", sorted(atlas.cluster_to_as.items()))
    payloads["as_degrees"] = _pack_rows("<IH", sorted(atlas.as_degrees.items()))
    payloads["as_three_tuples"] = _pack_rows("<III", sorted(atlas.three_tuples))
    payloads["as_preferences"] = _pack_rows("<III", sorted(atlas.preferences))

    provider_rows: list[tuple[int, int, int, int]] = []
    for asn, providers in sorted(atlas.providers.items()):
        for provider in sorted(providers):
            provider_rows.append((0, asn, provider, 0))
    for prefix_index, providers in sorted(atlas.prefix_providers.items()):
        for provider in sorted(providers):
            provider_rows.append((1, prefix_index, provider, 0))
    for asn, ups in sorted(atlas.upstreams.items()):
        for upstream in sorted(ups):
            provider_rows.append((2, asn, upstream, 0))
    payloads["provider_mappings"] = _pack_rows("<BIIB", provider_rows)

    payloads["relationships"] = _pack_rows(
        "<IIB",
        [
            (a, b, code)
            for (a, b), code in sorted(atlas.relationship_codes.items())
            if a < b
        ],
    )
    payloads["late_exit_pairs"] = _pack_rows(
        "<II", sorted(tuple(sorted(p)) for p in atlas.late_exit_pairs)
    )
    return payloads


def encode_atlas(atlas: Atlas, compress_level: int = 6) -> bytes:
    """Full wire encoding: header + per-dataset compressed sections."""
    payloads = dataset_payloads(atlas)
    out = bytearray()
    out += MAGIC
    out += struct.pack("<HI", FORMAT_VERSION, atlas.day)
    out += struct.pack("<B", len(DATASET_ORDER))
    for name in DATASET_ORDER:
        compressed = zlib.compress(payloads[name], compress_level)
        name_bytes = name.encode("ascii")
        out += struct.pack("<B", len(name_bytes))
        out += name_bytes
        out += struct.pack("<II", len(compressed), len(payloads[name]))
        out += compressed
    return bytes(out)


def decode_atlas(data: bytes) -> Atlas:
    """Inverse of :func:`encode_atlas`; validates framing."""
    if data[:4] != MAGIC:
        raise AtlasFormatError("bad magic")
    version, day = struct.unpack_from("<HI", data, 4)
    if version != FORMAT_VERSION:
        raise AtlasFormatError(f"unsupported atlas format version {version}")
    (n_sections,) = struct.unpack_from("<B", data, 10)
    offset = 11
    sections: dict[str, bytes] = {}
    for _ in range(n_sections):
        (name_len,) = struct.unpack_from("<B", data, offset)
        offset += 1
        name = data[offset : offset + name_len].decode("ascii")
        offset += name_len
        comp_len, raw_len = struct.unpack_from("<II", data, offset)
        offset += 8
        raw = zlib.decompress(data[offset : offset + comp_len])
        if len(raw) != raw_len:
            raise AtlasFormatError(f"section {name}: length mismatch")
        sections[name] = raw
        offset += comp_len

    atlas = Atlas(day=day)
    for a, b, lat in _unpack_rows("<IIH", sections.get("inter_cluster_links", b"")):
        atlas.links[(a, b)] = LinkRecord(latency_ms=_decode_latency(lat))
    for a, b, loss in _unpack_rows("<IIH", sections.get("link_loss_rates", b"")):
        atlas.link_loss[(a, b)] = _decode_loss(loss)
    atlas.prefix_to_cluster = {
        k: v for k, v in _unpack_rows("<II", sections.get("prefix_to_cluster", b""))
    }
    atlas.prefix_to_as = {
        k: v for k, v in _unpack_rows("<II", sections.get("prefix_to_as", b""))
    }
    atlas.cluster_to_as = {
        k: v for k, v in _unpack_rows("<II", sections.get("cluster_to_as", b""))
    }
    atlas.as_degrees = {
        k: v for k, v in _unpack_rows("<IH", sections.get("as_degrees", b""))
    }
    atlas.three_tuples = {
        (a, b, c) for a, b, c in _unpack_rows("<III", sections.get("as_three_tuples", b""))
    }
    atlas.preferences = {
        (a, b, c) for a, b, c in _unpack_rows("<III", sections.get("as_preferences", b""))
    }
    providers: dict[int, set[int]] = {}
    prefix_providers: dict[int, set[int]] = {}
    upstreams: dict[int, set[int]] = {}
    for kind, key, value, _ in _unpack_rows("<BIIB", sections.get("provider_mappings", b"")):
        target = {0: providers, 1: prefix_providers, 2: upstreams}[kind]
        target.setdefault(key, set()).add(value)
    atlas.providers = {k: frozenset(v) for k, v in providers.items()}
    atlas.prefix_providers = {k: frozenset(v) for k, v in prefix_providers.items()}
    atlas.upstreams = {k: frozenset(v) for k, v in upstreams.items()}
    for a, b, code in _unpack_rows("<IIB", sections.get("relationships", b"")):
        from repro.atlas.relationships import _CODE_INVERSE

        atlas.relationship_codes[(a, b)] = code
        atlas.relationship_codes[(b, a)] = _CODE_INVERSE[code]
    atlas.late_exit_pairs = {
        frozenset((a, b)) for a, b in _unpack_rows("<II", sections.get("late_exit_pairs", b""))
    }
    return atlas


def compressed_section_sizes(atlas: Atlas, compress_level: int = 6) -> dict[str, int]:
    """Per-dataset compressed byte counts (Table 2's middle column)."""
    return {
        name: len(zlib.compress(payload, compress_level))
        for name, payload in dataset_payloads(atlas).items()
    }
