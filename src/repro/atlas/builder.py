"""Atlas construction from measurement outputs.

The builder is the centralized component of iNano (Section 5, server
side): it aggregates traceroutes, loss probes, and BGP feed snapshots into
the compact link-level atlas. It never touches the ground-truth topology;
probing instruments are injected as callables so the measurement layer
retains that monopoly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.sssp import latency_sssp

from repro.atlas.model import Atlas, LinkRecord
from repro.atlas.preferences import PreferenceInference
from repro.atlas.providers import ProviderInference
from repro.atlas.relationships import degree_table, infer_relationships
from repro.atlas.tuples import collapse_prepending, extract_three_tuples
from repro.measurement.bgp_feed import BgpFeedSnapshot
from repro.measurement.clustering import ClusterMap
from repro.measurement.frontier import assign_links_to_vantage_points
from repro.measurement.linklatency import LinkLatencyEstimator
from repro.measurement.traceroute import Traceroute

#: Loss estimates below this are treated as lossless and not stored,
#: mirroring the paper's much smaller loss dataset (47K of 309K links).
LOSS_STORE_THRESHOLD = 0.005

#: A probe callable: (vp_prefix_index, cluster_path, link_position) -> loss or None.
LossProber = Callable[[int, tuple[int, ...], int], "float | None"]


@dataclass
class AtlasInputs:
    """Everything the builder consumes for one day's atlas."""

    traceroutes: list[Traceroute]
    cluster_map: ClusterMap
    feed: BgpFeedSnapshot
    loss_prober: LossProber | None = None
    day: int = 0
    frontier_redundancy: int = 2
    min_latency_samples: int = 1
    late_exit_min_crossings: int = 4
    late_exit_mismatch_threshold: float = 0.5


@dataclass
class AtlasBuilder:
    """Builds an :class:`Atlas` from one day's measurements."""

    inputs: AtlasInputs
    _cluster_paths: dict[int, list[list[tuple[int, float]]]] = field(
        default_factory=dict, repr=False
    )

    def build(self) -> Atlas:
        atlas = Atlas(day=self.inputs.day)
        cmap = self.inputs.cluster_map

        self._collect_cluster_paths()
        self._build_links(atlas)
        as_paths, terminating = self._as_paths()
        self._build_policy_datasets(atlas, as_paths, terminating)
        self._build_mappings(atlas)
        self._build_loss(atlas)
        self._infer_late_exit(atlas)
        atlas.cluster_to_as = dict(cmap.cluster_asn)
        atlas.validate()
        return atlas

    # -- stage 1: cluster-level path segments --------------------------------

    def _collect_cluster_paths(self) -> None:
        """Gather gap-split cluster segments per source prefix.

        Splitting at anonymous/unmapped hops keeps fabricated links and AS
        adjacencies out of the atlas.
        """
        cmap = self.inputs.cluster_map
        for trace in self.inputs.traceroutes:
            for segment in cmap.cluster_segments_with_rtts(trace):
                if len(segment) >= 2:
                    self._cluster_paths.setdefault(trace.src_prefix_index, []).append(
                        segment
                    )

    # -- stage 2: links with latencies --------------------------------------

    def _build_links(self, atlas: Atlas) -> None:
        estimator = LinkLatencyEstimator()
        for paths in self._cluster_paths.values():
            for path in paths:
                estimator.add_traceroute_samples(path)
        for link, latency in estimator.estimates(
            min_samples=self.inputs.min_latency_samples
        ).items():
            atlas.links[link] = LinkRecord(latency_ms=latency)

    # -- stage 3: AS paths and policy datasets -------------------------------

    def _as_paths(self) -> tuple[list[tuple[int, ...]], list[tuple[tuple[int, ...], int]]]:
        """AS-level path segments from traceroutes and feeds.

        Traceroute segments are converted independently (no stitching across
        measurement gaps). The first segment is anchored with the source's
        origin AS and the last — when the trace reached its destination —
        with the destination's origin AS. Returns (all segments,
        [(segment, dst_prefix)] for segments that genuinely terminate).
        """
        cmap = self.inputs.cluster_map
        feed_origin = self.inputs.feed.prefix_to_as()
        all_paths: list[tuple[int, ...]] = []
        terminating: list[tuple[tuple[int, ...], int]] = []

        for trace in self.inputs.traceroutes:
            segments = cmap.cluster_segments_with_rtts(trace)
            if not segments:
                continue
            as_segments: list[list[int]] = []
            for segment in segments:
                ases: list[int] = []
                for cluster, _ in segment:
                    asn = cmap.cluster_asn.get(cluster)
                    if asn is not None and (not ases or ases[-1] != asn):
                        ases.append(asn)
                as_segments.append(ases)
            src_as = feed_origin.get(trace.src_prefix_index)
            if src_as is not None and as_segments[0][:1] != [src_as]:
                as_segments[0].insert(0, src_as)
            reached = trace.reached
            if reached:
                dst_as = feed_origin.get(trace.dst_prefix_index)
                if dst_as is not None and (
                    not as_segments[-1] or as_segments[-1][-1] != dst_as
                ):
                    as_segments[-1].append(dst_as)
            for i, ases in enumerate(as_segments):
                path = collapse_prepending(tuple(ases))
                if len(path) < 2:
                    continue
                all_paths.append(path)
                if reached and i == len(as_segments) - 1:
                    terminating.append((path, trace.dst_prefix_index))

        for (_, prefix_index), path in sorted(self.inputs.feed.paths.items()):
            clean = collapse_prepending(path)
            if len(clean) >= 2:
                all_paths.append(clean)
                terminating.append((clean, prefix_index))
        return all_paths, terminating

    def _build_policy_datasets(
        self,
        atlas: Atlas,
        as_paths: list[tuple[int, ...]],
        terminating: list[tuple[tuple[int, ...], int]],
    ) -> None:
        atlas.as_degrees = degree_table(as_paths)
        atlas.three_tuples = extract_three_tuples(as_paths)

        # Preferences need routes whose destination is known, so only
        # terminating segments and feed paths vote.
        prefs = PreferenceInference()
        for path, _ in terminating:
            prefs.add_path(path)
        atlas.preferences = prefs.infer(
            three_tuples=atlas.three_tuples, degrees=atlas.as_degrees
        )

        providers = ProviderInference()
        terminating_set = set()
        for path, prefix_index in terminating:
            providers.add_path(path, prefix_index, terminates=True)
            terminating_set.add(path)
        for path in as_paths:
            if path not in terminating_set:
                providers.add_path(path)
        atlas.providers = providers.provider_map()
        atlas.upstreams = providers.upstream_map()

        rels = infer_relationships(as_paths)
        atlas.relationship_codes = dict(rels.codes)

        feed_origin = self.inputs.feed.prefix_to_as()
        atlas.prefix_to_as = dict(feed_origin)
        atlas.prefix_providers = providers.prefix_provider_map(atlas.prefix_to_as)

    # -- stage 4: prefix mappings -------------------------------------------

    def _build_mappings(self, atlas: Atlas) -> None:
        atlas.prefix_to_cluster = dict(self.inputs.cluster_map.prefix_cluster)

    # -- stage 5: loss annotations -------------------------------------------

    def _build_loss(self, atlas: Atlas) -> None:
        prober = self.inputs.loss_prober
        if prober is None:
            return
        paths_per_vp: dict[int, list[tuple[int, ...]]] = {}
        vp_prefixes: dict[int, int] = {}
        for vp_index, src_prefix in enumerate(sorted(self._cluster_paths)):
            vp_prefixes[vp_index] = src_prefix
            paths_per_vp[vp_index] = [
                tuple(c for c, _ in path) for path in self._cluster_paths[src_prefix]
            ]
        assignment = assign_links_to_vantage_points(
            paths_per_vp, redundancy=self.inputs.frontier_redundancy
        )
        for link in sorted(assignment.assignments):
            if link not in atlas.links:
                continue
            estimates = []
            for vp_index, path, pos in assignment.assignments[link]:
                est = prober(vp_prefixes[vp_index], path, pos)
                if est is not None:
                    estimates.append(est)
            if not estimates:
                continue
            loss = sum(estimates) / len(estimates)
            if loss >= LOSS_STORE_THRESHOLD:
                atlas.link_loss[link] = loss

    # -- stage 6: late-exit inference ------------------------------------------

    def _intra_as_distance(
        self, atlas: Atlas, asn: int, src: int, dst: int, cache: dict
    ) -> float:
        """Shared-helper Dijkstra over the atlas's intra-AS cluster links."""
        key = (asn, src)
        if key not in cache:
            links = atlas.links
            asn_of = atlas.cluster_to_as.get

            def neighbors(node):
                for (a, b), record in links.items():
                    if a == node and asn_of(b) == asn:
                        yield b, record.latency_ms

            cache[key] = latency_sssp(src, neighbors)[0]
        return cache[key].get(dst, float("inf"))

    def _infer_late_exit(self, atlas: Atlas) -> None:
        """Mark AS pairs whose observed exits contradict early-exit routing."""
        cmap = self.inputs.cluster_map
        # Interconnect links per AS pair.
        interconnects: dict[tuple[int, int], set[tuple[int, int]]] = {}
        for (a, b) in atlas.links:
            as_a = cmap.cluster_asn.get(a)
            as_b = cmap.cluster_asn.get(b)
            if as_a is not None and as_b is not None and as_a != as_b:
                interconnects.setdefault((as_a, as_b), set()).add((a, b))

        # Observed crossings: (as_pair) -> list of (ingress, egress).
        crossings: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for paths in self._cluster_paths.values():
            for path in paths:
                clusters = [c for c, _ in path]
                prev_as: int | None = None
                ingress_cluster: int | None = None
                for i, cluster in enumerate(clusters):
                    asn = cmap.cluster_asn.get(cluster)
                    if asn is None:
                        prev_as = None
                        continue
                    if asn != prev_as:
                        ingress_cluster = cluster
                        prev_as = asn
                    if i + 1 < len(clusters):
                        next_as = cmap.cluster_asn.get(clusters[i + 1])
                        if next_as is not None and next_as != asn:
                            crossings.setdefault((asn, next_as), []).append(
                                (ingress_cluster if ingress_cluster is not None else cluster, cluster)
                            )

        cache: dict = {}
        for pair in sorted(crossings):
            links = interconnects.get(pair, set())
            if len(links) < 2:
                continue
            events = crossings[pair]
            if len(events) < self.inputs.late_exit_min_crossings:
                continue
            mismatches = 0
            judged = 0
            for ingress, egress in events:
                options = {
                    e: self._intra_as_distance(atlas, pair[0], ingress, e, cache)
                    for e, _ in links
                }
                finite = {e: d for e, d in options.items() if d < float("inf")}
                if len(finite) < 2:
                    continue
                early_egress = min(sorted(finite), key=lambda e: finite[e])
                judged += 1
                if egress != early_egress:
                    mismatches += 1
            if (
                judged >= self.inputs.late_exit_min_crossings
                and mismatches / judged > self.inputs.late_exit_mismatch_threshold
            ):
                atlas.late_exit_pairs.add(frozenset(pair))


def build_from_src_links(
    traceroutes: list[Traceroute], cmap: ClusterMap
) -> dict[tuple[int, int], LinkRecord]:
    """Build a FROM_SRC link plane from a client's own traceroutes.

    Used by the client library (Section 5): directed links observed on
    routes *originating at this end-host*, with the same latency estimator
    as the main atlas.
    """
    estimator = LinkLatencyEstimator()
    for trace in traceroutes:
        for segment in cmap.cluster_segments_with_rtts(trace):
            estimator.add_traceroute_samples(segment)
    return {
        link: LinkRecord(latency_ms=latency)
        for link, latency in estimator.estimates(min_samples=1).items()
    }
