"""Comparison systems the paper evaluates against.

* :mod:`repro.baselines.composition` — iPlane's path-composition predictor
  over an atlas of *paths* (two orders of magnitude larger than iNano's
  link atlas), plus the "improved path-based" variant that adds iNano's
  3-tuple and preference checks at splice points (Section 6.3.1).
* :mod:`repro.baselines.routescope` — RouteScope [32]: shortest valley-free
  AS paths over the AS graph, one picked at random.
* :mod:`repro.baselines.vivaldi` — the Vivaldi network coordinate system
  [13] (latency only, by construction).
* :mod:`repro.baselines.oasis` — an OASIS-like server-selection service
  [18] using coarse geographic anycast with cached probes.
"""

from repro.baselines.composition import PathCompositionPredictor
from repro.baselines.routescope import RouteScopePredictor
from repro.baselines.vivaldi import VivaldiSystem, VivaldiConfig
from repro.baselines.oasis import OasisSelector

__all__ = [
    "PathCompositionPredictor",
    "RouteScopePredictor",
    "VivaldiSystem",
    "VivaldiConfig",
    "OasisSelector",
]
