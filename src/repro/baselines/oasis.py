"""OASIS-like anycast server selection [18].

OASIS maps clients to replicas primarily by *geographic* proximity
(resolved from IP geolocation) refined with infrequent cached latency
probes. We reproduce its decision quality: geographic distance with
geolocation error, plus stale cached RTTs — good at coarse placement,
blind to loss and to transient path conditions, which is why iNano beats
it in the CDN case study (Figure 9).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.util.rng import derive_rng


@dataclass
class OasisSelector:
    """Ranks replica candidates for a client, the OASIS way."""

    #: client/replica id -> (x, y) geolocated position (with error applied
    #: by the caller or via add_node's jitter)
    geolocation_error: float = 0.08
    probe_staleness_ms: float = 15.0
    latency_scale_ms: float = 55.0
    seed: int = 0
    _positions: dict[int, tuple[float, float]] = field(default_factory=dict)
    _cached_rtt: dict[tuple[int, int], float] = field(default_factory=dict)

    def add_node(self, node: int, true_position: tuple[float, float]) -> None:
        """Register a node with a geolocated (noisy) position."""
        rng = derive_rng(self.seed, f"oasis.geo.{node}")
        x = true_position[0] + float(rng.normal(0, self.geolocation_error))
        y = true_position[1] + float(rng.normal(0, self.geolocation_error))
        self._positions[node] = (x, y)

    def record_probe(self, client: int, replica: int, rtt_ms: float) -> None:
        """Store a cached (and soon stale) probe result."""
        rng = derive_rng(self.seed, f"oasis.stale.{client}.{replica}")
        staleness = float(rng.exponential(self.probe_staleness_ms))
        self._cached_rtt[(client, replica)] = rtt_ms + staleness

    def estimated_rtt_ms(self, client: int, replica: int) -> float:
        """OASIS's working estimate: cached probe if any, else geo distance."""
        cached = self._cached_rtt.get((client, replica))
        if cached is not None:
            return cached
        if client not in self._positions or replica not in self._positions:
            raise KeyError(f"unregistered node in pair ({client}, {replica})")
        (x1, y1), (x2, y2) = self._positions[client], self._positions[replica]
        one_way = math.hypot(x1 - x2, y1 - y2) * self.latency_scale_ms
        return 2.0 * one_way

    def rank(self, client: int, replicas: list[int]) -> list[int]:
        """Replicas sorted by OASIS's estimate, best first."""
        return sorted(replicas, key=lambda r: (self.estimated_rtt_ms(client, r), r))

    def select(self, client: int, replicas: list[int]) -> int:
        if not replicas:
            raise ValueError("no replicas to select from")
        return self.rank(client, replicas)[0]
