"""iPlane's path-composition prediction (the "path-based" baseline).

iPlane stores *measured paths* (not links). To predict src -> dst it
composes two intersecting segments: one out of the source (the source's
own traceroutes) and one from a vantage point into the destination's
prefix. Among intersecting pairs, it picks the composition minimizing
estimated latency (hops to the intersection plus the tail of the
vantage-point path).

The "improved path-based" variant applies iNano's techniques at the splice
point (Section 6.3.1): the AS sequence around the intersection must pass
the 3-tuple check, and AS preferences rank otherwise-equal candidates.

This baseline's dataset is the full set of cluster-level traceroute paths
— proportional to (vantage points × destinations × path length), which is
what makes iPlane's atlas gigabytes where iNano's is megabytes; the
benchmarks report both sizes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.atlas.model import Atlas
from repro.atlas.tuples import tuple_check
from repro.core.predictor import PredictedPath
from repro.errors import UnknownEndpointError


@dataclass
class _StoredPath:
    clusters: tuple[int, ...]
    src_prefix: int
    dst_prefix: int
    #: cumulative latency (ms) at each cluster along the path
    cumulative_ms: tuple[float, ...]


@dataclass
class PathCompositionPredictor:
    """Predicts routes by splicing measured path segments (iPlane [30])."""

    atlas: Atlas
    improved: bool = False
    tuple_degree_threshold: int = 5
    #: cluster -> AS for client-side clusters absent from the atlas
    extra_cluster_as: dict[int, int] = field(default_factory=dict)
    _all_paths: list[_StoredPath] = field(default_factory=list)
    _paths_from_prefix: dict[int, list[_StoredPath]] = field(default_factory=dict)
    _paths_to_prefix: dict[int, list[_StoredPath]] = field(default_factory=dict)
    _cluster_index: dict[int, set[int]] = field(default_factory=dict)

    # -- atlas-of-paths construction ---------------------------------------

    def add_measured_path(
        self,
        clusters: list[tuple[int, float]],
        src_prefix: int,
        dst_prefix: int,
        reached: bool,
    ) -> None:
        """Add one cluster-level measured path (with per-hop RTTs).

        Latency along the path is approximated from RTT differences, like
        iPlane does ("just subtracting RTTs measured in traceroutes") —
        which is why its latency estimates are noisier in the tail
        (Section 6.3.2).
        """
        if len(clusters) < 2:
            return
        base_rtt = clusters[0][1]
        # One-way cumulative latency from RTT differences, forced monotone
        # (reverse-path shrinkage would otherwise make segments negative).
        cumulative_list: list[float] = []
        for _, rtt in clusters:
            value = max(0.0, (rtt - base_rtt) / 2.0)
            if cumulative_list:
                value = max(value, cumulative_list[-1])
            cumulative_list.append(value)
        cumulative = tuple(cumulative_list)
        path = _StoredPath(
            clusters=tuple(c for c, _ in clusters),
            src_prefix=src_prefix,
            dst_prefix=dst_prefix,
            cumulative_ms=cumulative,
        )
        index = len(self._all_paths)
        self._all_paths.append(path)
        self._paths_from_prefix.setdefault(src_prefix, []).append(path)
        if reached:
            self._paths_to_prefix.setdefault(dst_prefix, []).append(path)
        for cluster in path.clusters:
            self._cluster_index.setdefault(cluster, set()).add(index)

    # -- prediction -----------------------------------------------------------

    def predict_or_none(
        self, src_prefix_index: int, dst_prefix_index: int
    ) -> PredictedPath | None:
        try:
            return self.predict(src_prefix_index, dst_prefix_index)
        except UnknownEndpointError:
            return None

    def _out_candidates(self, src_prefix_index: int) -> list[tuple[_StoredPath, int]]:
        """Path segments leaving the source: the source's own measured
        paths, else the suffix (from the source's cluster) of any measured
        path passing through that cluster — iPlane's 'path out from the
        source' generalized to arbitrary end-hosts."""
        own = self._paths_from_prefix.get(src_prefix_index)
        if own:
            return [(p, 0) for p in own]
        src_cluster = self.atlas.cluster_of_prefix(src_prefix_index)
        if src_cluster is None:
            return []
        out: list[tuple[_StoredPath, int]] = []
        for index in sorted(self._cluster_index.get(src_cluster, ())):
            path = self._all_paths[index]
            out.append((path, path.clusters.index(src_cluster)))
        return out

    def predict(self, src_prefix_index: int, dst_prefix_index: int) -> PredictedPath | None:
        """Compose a route src -> dst from intersecting measured segments."""
        out_candidates = self._out_candidates(src_prefix_index)
        in_paths = self._paths_to_prefix.get(dst_prefix_index, [])
        if not out_candidates or not in_paths:
            raise UnknownEndpointError(
                src_prefix_index if not out_candidates else dst_prefix_index
            )

        # Consider every intersection point of every (out, in) pair. The
        # best splice keeps as much as possible of both accurate ends:
        # primarily it joins the in-path as close to the destination as
        # possible (short in-path tail after the intersection), then as
        # close to the source as possible on the out-path, with estimated
        # latency as the final tie-break.
        best: tuple[tuple[int, int, float], list[int], float] | None = None
        for out_path, start in out_candidates:
            out_positions = {
                c: i for i, c in enumerate(out_path.clusters) if i >= start
            }
            for j, in_path in self._intersections(out_positions, in_paths):
                i = out_positions[in_path.clusters[j]]
                clusters = list(out_path.clusters[start : i + 1]) + list(
                    in_path.clusters[j + 1 :]
                )
                latency = max(
                    0.0,
                    out_path.cumulative_ms[i]
                    - out_path.cumulative_ms[start]
                    + in_path.cumulative_ms[-1]
                    - in_path.cumulative_ms[j],
                )
                if self.improved and not self._splice_valid(out_path, in_path, i, j):
                    continue
                score = (len(in_path.clusters) - 1 - j, i - start, latency)
                if best is None or score < best[0]:
                    best = (score, clusters, latency)
        if best is None:
            return None
        _, clusters, latency = best
        return self._to_predicted(
            clusters, latency, src_prefix_index, dst_prefix_index
        )

    @staticmethod
    def _intersections(out_positions, in_paths):
        for in_path in in_paths:
            for j, cluster in enumerate(in_path.clusters):
                if cluster in out_positions:
                    yield j, in_path

    def asn_of(self, cluster: int) -> int | None:
        asn = self.atlas.cluster_to_as.get(cluster)
        if asn is None:
            asn = self.extra_cluster_as.get(cluster)
        return asn

    def _splice_valid(
        self, out_path: _StoredPath, in_path: _StoredPath, i: int, j: int
    ) -> bool:
        """Improved variant: 3-tuple check around the intersection point."""
        as_seq: list[int] = []
        window = (
            list(out_path.clusters[max(0, i - 2) : i + 1])
            + list(in_path.clusters[j + 1 : j + 3])
        )
        for cluster in window:
            asn = self.asn_of(cluster)
            if asn is not None and (not as_seq or as_seq[-1] != asn):
                as_seq.append(asn)
        for a, b, c in zip(as_seq, as_seq[1:], as_seq[2:]):
            if not tuple_check(
                self.atlas.three_tuples,
                self.atlas.as_degrees,
                a,
                b,
                c,
                self.tuple_degree_threshold,
            ):
                return False
        return True

    def _to_predicted(
        self,
        clusters: list[int],
        latency_ms: float,
        src_prefix_index: int | None = None,
        dst_prefix_index: int | None = None,
    ) -> PredictedPath:
        as_path: list[int] = []
        for cluster in clusters:
            asn = self.asn_of(cluster)
            if asn is not None and (not as_path or as_path[-1] != asn):
                as_path.append(asn)
        # Pad with the endpoints' origin ASes (known from prefix-to-AS):
        # measured paths often start/stop one hop inside a neighbor AS.
        if src_prefix_index is not None:
            src_as = self.atlas.prefix_to_as.get(src_prefix_index)
            if src_as is not None and (not as_path or as_path[0] != src_as):
                as_path.insert(0, src_as)
        if dst_prefix_index is not None:
            dst_as = self.atlas.prefix_to_as.get(dst_prefix_index)
            if dst_as is not None and (not as_path or as_path[-1] != dst_as):
                as_path.append(dst_as)
        loss = 0.0
        success = 1.0
        for a, b in zip(clusters, clusters[1:]):
            success *= 1.0 - self.atlas.loss_of_link((a, b))
        loss = 1.0 - success
        return PredictedPath(
            clusters=tuple(clusters),
            as_path=tuple(as_path),
            latency_ms=latency_ms,
            loss=loss,
            as_hops=max(0, len(as_path) - 1),
            used_from_src=True,
        )

    # -- size accounting (for the Table 2 / Section 6.1 comparison) -----------

    def serialized_size_bytes(self) -> int:
        """Raw size of the path atlas (what iPlane would have to ship)."""
        total = 0
        row = struct.Struct("<IIH")
        for path in self._all_paths:
            total += row.size + 6 * len(path.clusters)
        return total

    @property
    def n_paths(self) -> int:
        return len(self._all_paths)
