"""RouteScope baseline [32]: AS-path inference from the AS-level graph.

RouteScope computes the set of shortest valley-free AS paths between the
source AS and the destination AS, using inferred relationships. iNano's
problem setting needs a single path to estimate performance, so — exactly
like the paper's evaluation — one member of the shortest set is chosen
uniformly at random (deterministically seeded per query, so results are
reproducible).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.atlas.model import Atlas
from repro.atlas.relationships import REL_CUSTOMER, REL_PEER, REL_PROVIDER, REL_SIBLING
from repro.util.rng import derive_rng


@dataclass
class RouteScopePredictor:
    """Shortest valley-free AS-path predictor over the inferred AS graph."""

    atlas: Atlas
    seed: int = 0
    max_paths: int = 64
    _up_neighbors: dict[int, list[int]] = field(default_factory=dict)
    _down_neighbors: dict[int, list[int]] = field(default_factory=dict)
    _peer_neighbors: dict[int, list[int]] = field(default_factory=dict)
    _built: bool = field(default=False)

    def _build(self) -> None:
        if self._built:
            return
        for (a, b), code in self.atlas.relationship_codes.items():
            if code == REL_CUSTOMER or code == REL_SIBLING:
                # a is b's customer (or sibling): a may climb to b
                self._up_neighbors.setdefault(a, []).append(b)
            if code == REL_PROVIDER or code == REL_SIBLING:
                self._down_neighbors.setdefault(a, []).append(b)
            if code == REL_PEER:
                self._peer_neighbors.setdefault(a, []).append(b)
        for adj in (self._up_neighbors, self._down_neighbors, self._peer_neighbors):
            for neighbors in adj.values():
                neighbors.sort()
        self._built = True

    def _downhill_distances(self, dst_as: int) -> dict[int, int]:
        """BFS over provider->customer edges reversed: hops of pure descent."""
        dist = {dst_as: 0}
        queue = deque([dst_as])
        while queue:
            node = queue.popleft()
            # x descends to node if node in down_neighbors[x]; reverse = ups
            for x in self._up_neighbors.get(node, ()):
                if x not in dist:
                    dist[x] = dist[node] + 1
                    queue.append(x)
        return dist

    def shortest_valley_free_paths(
        self, src_as: int, dst_as: int
    ) -> list[tuple[int, ...]]:
        """All shortest valley-free AS paths src -> dst (up to ``max_paths``).

        A valley-free path climbs (customer->provider), optionally crosses
        one peer edge, then descends. We search over states
        (AS, stage) with stage 0 = climbing, 1 = descending.
        """
        self._build()
        if src_as == dst_as:
            return [(src_as,)]
        # BFS over the two-stage state graph, collecting parents for paths.
        start = (src_as, 0)
        dist: dict[tuple[int, int], int] = {start: 0}
        parents: dict[tuple[int, int], list[tuple[int, int]]] = {}
        queue = deque([start])
        goals: list[tuple[int, int]] = []
        goal_dist: int | None = None
        while queue:
            state = queue.popleft()
            node, stage = state
            d = dist[state]
            if goal_dist is not None and d >= goal_dist:
                continue
            moves: list[tuple[int, int]] = []
            if stage == 0:
                moves += [(n, 0) for n in self._up_neighbors.get(node, ())]
                moves += [(n, 1) for n in self._peer_neighbors.get(node, ())]
            moves += [(n, 1) for n in self._down_neighbors.get(node, ())]
            for nxt in moves:
                nd = d + 1
                if nxt not in dist:
                    dist[nxt] = nd
                    parents[nxt] = [state]
                    queue.append(nxt)
                    if nxt[0] == dst_as and (goal_dist is None or nd <= goal_dist):
                        goal_dist = nd
                        goals.append(nxt)
                elif dist[nxt] == nd and state not in parents.get(nxt, ()):
                    parents.setdefault(nxt, []).append(state)
        goals = [g for g in goals if dist[g] == goal_dist]
        if not goals:
            return []

        paths: list[tuple[int, ...]] = []

        def backtrack(state: tuple[int, int], suffix: list[int]) -> None:
            if len(paths) >= self.max_paths:
                return
            suffix = [state[0]] + suffix if not suffix or suffix[0] != state[0] else suffix
            if state == start:
                paths.append(tuple(suffix))
                return
            for parent in parents.get(state, ()):
                backtrack(parent, list(suffix))

        for goal in goals:
            backtrack(goal, [])
        # De-duplicate (same AS path can arise via different stage states).
        unique = sorted(set(paths))
        return unique[: self.max_paths]

    def predict_as_path(
        self, src_prefix_index: int, dst_prefix_index: int
    ) -> tuple[int, ...] | None:
        """One shortest valley-free path, chosen at random as in Section 6.3.1."""
        src_as = self.atlas.prefix_to_as.get(src_prefix_index)
        dst_as = self.atlas.prefix_to_as.get(dst_prefix_index)
        if src_as is None or dst_as is None:
            return None
        candidates = self.shortest_valley_free_paths(src_as, dst_as)
        if not candidates:
            return None
        rng = derive_rng(self.seed, f"routescope.{src_prefix_index}.{dst_prefix_index}")
        return candidates[int(rng.integers(0, len(candidates)))]
