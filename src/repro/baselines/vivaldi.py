"""Vivaldi network coordinates [13].

The decentralized spring-relaxation algorithm, with the standard
2-dimensional + height model. Each node keeps a coordinate and a local
error estimate; on each sample (RTT to a neighbor) it nudges its
coordinate toward consistency with the measured latency, weighting by the
relative confidence of the two nodes.

Used as the latency-only baseline in Figures 6, 7 and 9 — by construction
it predicts symmetric latencies and cannot express loss or paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import derive_rng


@dataclass
class VivaldiConfig:
    """Standard Vivaldi constants (cc = ce = 0.25 in the paper)."""

    dimensions: int = 2
    cc: float = 0.25
    ce: float = 0.25
    initial_error: float = 1.0
    rounds: int = 60
    neighbors_per_node: int = 16
    min_height_ms: float = 0.1
    seed: int = 0


@dataclass
class _Coord:
    vector: np.ndarray
    height: float
    error: float


@dataclass
class VivaldiSystem:
    """A Vivaldi overlay over a set of node ids with measurable RTTs."""

    config: VivaldiConfig = field(default_factory=VivaldiConfig)
    _coords: dict[int, _Coord] = field(default_factory=dict)

    def _coord(self, node: int) -> _Coord:
        if node not in self._coords:
            rng = derive_rng(self.config.seed, f"vivaldi.init.{node}")
            self._coords[node] = _Coord(
                vector=rng.normal(0.0, 1.0, self.config.dimensions),
                height=self.config.min_height_ms,
                error=self.config.initial_error,
            )
        return self._coords[node]

    def distance_ms(self, a: int, b: int) -> float:
        """Predicted RTT between two nodes (coordinate distance)."""
        ca, cb = self._coord(a), self._coord(b)
        return float(np.linalg.norm(ca.vector - cb.vector)) + ca.height + cb.height

    def observe(self, a: int, b: int, rtt_ms: float) -> None:
        """Update node ``a``'s coordinate from a measured RTT to ``b``."""
        if rtt_ms <= 0:
            return
        cfg = self.config
        ca, cb = self._coord(a), self._coord(b)
        predicted = self.distance_ms(a, b)
        sample_error = abs(predicted - rtt_ms) / rtt_ms
        weight = ca.error / max(1e-9, ca.error + cb.error)
        ca.error = max(
            0.05, sample_error * cfg.ce * weight + ca.error * (1 - cfg.ce * weight)
        )
        delta = cfg.cc * weight
        direction = ca.vector - cb.vector
        norm = float(np.linalg.norm(direction))
        if norm < 1e-9:
            rng = derive_rng(cfg.seed, f"vivaldi.dir.{a}.{b}")
            direction = rng.normal(0.0, 1.0, cfg.dimensions)
            norm = float(np.linalg.norm(direction))
        unit = direction / norm
        force = rtt_ms - predicted
        ca.vector = ca.vector + delta * force * unit
        ca.height = max(cfg.min_height_ms, ca.height + delta * force * 0.5)

    def train(self, nodes: list[int], rtt_fn, rng_label: str = "train") -> None:
        """Run the standard gossip schedule over ``nodes``.

        ``rtt_fn(a, b)`` returns a measured RTT in ms (or None if the pair
        is unmeasurable this round). Each node maintains a random neighbor
        set, as in the deployed system.
        """
        cfg = self.config
        rng = derive_rng(cfg.seed, f"vivaldi.{rng_label}")
        neighbor_sets: dict[int, list[int]] = {}
        for node in nodes:
            others = [n for n in nodes if n != node]
            k = min(cfg.neighbors_per_node, len(others))
            idx = rng.choice(len(others), size=k, replace=False)
            neighbor_sets[node] = [others[int(i)] for i in idx]
        for _ in range(cfg.rounds):
            order = rng.permutation(len(nodes))
            for i in order:
                node = nodes[int(i)]
                neighbors = neighbor_sets[node]
                peer = neighbors[int(rng.integers(0, len(neighbors)))]
                rtt = rtt_fn(node, peer)
                if rtt is not None:
                    self.observe(node, peer, rtt)

    def mean_error(self, nodes: list[int]) -> float:
        """Average node confidence (diagnostics)."""
        return float(np.mean([self._coord(n).error for n in nodes]))
