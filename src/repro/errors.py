"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class. Sub-classes mark the layer a
failure originated in (topology construction, measurement, atlas handling,
prediction, or the client library).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(ReproError):
    """Raised when a topology is malformed or a generator constraint fails."""


class RoutingError(ReproError):
    """Raised when ground-truth route computation fails."""


class NoRouteError(RoutingError):
    """Raised when no policy-compliant route exists between two end points."""

    def __init__(self, src: object, dst: object) -> None:
        super().__init__(f"no route from {src!r} to {dst!r}")
        self.src = src
        self.dst = dst


class MeasurementError(ReproError):
    """Raised for invalid probe specifications or vantage-point misuse."""


class AtlasError(ReproError):
    """Raised when an atlas dataset is inconsistent or cannot be decoded."""


class AtlasFormatError(AtlasError):
    """Raised when serialized atlas bytes fail validation."""


class CodecError(AtlasFormatError):
    """Raised when an encoded atlas or delta frame is structurally
    unsound — truncated mid-section, a declared length running past the
    payload, an oversized section, or corrupt compressed bytes.

    A typed subclass (instead of the raw ``struct.error`` / ``zlib.error``
    / ``IndexError`` the decoders used to leak) so transport layers like
    the network gateway can catch decode failures of untrusted bytes and
    answer with a clean protocol-level ERROR frame."""


class DeltaMismatchError(AtlasError):
    """Raised when a daily delta is applied to the wrong base atlas."""

    def __init__(self, expected_day: int, actual_day: int) -> None:
        super().__init__(
            f"delta expects base atlas for day {expected_day}, got day {actual_day}"
        )
        self.expected_day = expected_day
        self.actual_day = actual_day


class PredictionError(ReproError):
    """Raised when the prediction engine is queried with invalid input."""


class NoPredictedRouteError(PredictionError):
    """Raised when the prediction search finds no policy-compliant route."""

    def __init__(self, src: object, dst: object) -> None:
        super().__init__(f"no route predicted from {src!r} to {dst!r}")
        self.src = src
        self.dst = dst


class UnknownEndpointError(PredictionError):
    """Raised when an endpoint IP cannot be mapped to a known prefix."""

    def __init__(self, ip: object) -> None:
        super().__init__(f"endpoint {ip!r} is not covered by any known prefix")
        self.ip = ip


class ClientError(ReproError):
    """Raised by the client library for lifecycle misuse (e.g. query before fetch)."""


class ServiceError(ReproError):
    """Raised by the sharded prediction service for lifecycle misuse
    (e.g. querying a closed service, registering a duplicate client)."""


class ShardStateError(ServiceError):
    """Raised when shard workers diverge (unequal post-broadcast graph
    state, a worker-side failure, or a dead worker process)."""


class NetworkError(ReproError):
    """Base class for the network gateway / remote client layer
    (:mod:`repro.net`): transport failures, protocol violations, and
    server-reported request errors."""


class ProtocolError(NetworkError):
    """Raised when wire bytes violate the gateway protocol: bad frame
    magic, an unsupported version, an oversized or truncated frame, an
    out-of-order reply, or a payload that does not parse."""


class RemoteError(NetworkError):
    """Raised client-side when the gateway answered a request with an
    ERROR frame; carries the wire error ``code`` and the server's
    message."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"remote error {code}: {message}")
        self.code = code
        self.remote_message = message
