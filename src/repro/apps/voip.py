"""VoIP relay selection (Section 7.2, Figure 10).

NATed callers relay their streams through a third host. The paper's
strategy: use iNano to shortlist the 10 relays minimizing predicted
round-trip loss over the relayed path, then pick the one minimizing
end-to-end latency. Compared against closest-to-source, closest-to-
destination (both by *measured* latency) and random relays, on the
ground-truth loss of the chosen relay path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.mos import mos_score
from repro.core.predictor import INanoPredictor
from repro.errors import NoRouteError, RoutingError
from repro.routing.forwarding import ForwardingEngine
from repro.util.rng import derive_rng


@dataclass
class VoipResult:
    """Per-strategy quality of the chosen relays, aligned by call."""

    #: strategy -> per-call loss rate of the relayed path
    loss_rates: dict[str, list[float]] = field(default_factory=dict)
    #: strategy -> per-call one-way latency (ms) of the relayed path
    latencies_ms: dict[str, list[float]] = field(default_factory=dict)
    #: strategy -> per-call MOS
    mos: dict[str, list[float]] = field(default_factory=dict)

    def median_loss(self, strategy: str) -> float:
        return float(np.median(self.loss_rates[strategy]))

    def mean_mos(self, strategy: str) -> float:
        return float(np.mean(self.mos[strategy]))


@dataclass
class VoipExperiment:
    """Relay selection over one ground-truth snapshot."""

    engine: ForwardingEngine
    hosts: list[int]  # prefix indices of participating end-hosts
    shortlist_size: int = 10
    seed: int = 0
    _truth_cache: dict[tuple[int, int], tuple[float, float]] = field(
        default_factory=dict, repr=False
    )

    def _leg_truth(self, a: int, b: int) -> tuple[float, float]:
        """(one-way latency ms, one-way loss) for the leg a -> b."""
        key = (a, b)
        if key not in self._truth_cache:
            try:
                path = self.engine.pop_path(a, b)
                self._truth_cache[key] = (path.latency_ms, path.loss)
            except (NoRouteError, RoutingError):
                self._truth_cache[key] = (float("inf"), 1.0 - 1e-9)
        return self._truth_cache[key]

    def relay_truth(self, src: int, relay: int, dst: int) -> tuple[float, float]:
        """True (latency ms, loss) of the relayed one-way stream."""
        l1, p1 = self._leg_truth(src, relay)
        l2, p2 = self._leg_truth(relay, dst)
        return (l1 + l2, 1.0 - (1.0 - p1) * (1.0 - p2))

    def sample_calls(self, n_calls: int) -> list[tuple[int, int]]:
        """Random (src, dst) pairs, as the paper's 1200 emulated calls."""
        rng = derive_rng(self.seed, "voip.calls")
        calls = []
        for _ in range(n_calls):
            i, j = rng.choice(len(self.hosts), size=2, replace=False)
            calls.append((self.hosts[int(i)], self.hosts[int(j)]))
        return calls

    # -- strategies ---------------------------------------------------------------

    def choose_inano(
        self, predictor: INanoPredictor, src: int, dst: int, relays: list[int]
    ) -> int:
        """Shortlist by predicted loss, then minimize predicted latency."""
        scored: list[tuple[float, float, int]] = []
        for relay in relays:
            legs = [
                predictor.predict_or_none(src, relay),
                predictor.predict_or_none(relay, dst),
            ]
            if any(leg is None for leg in legs):
                continue
            loss = 1.0 - (1.0 - legs[0].loss) * (1.0 - legs[1].loss)
            latency = legs[0].latency_ms + legs[1].latency_ms
            scored.append((loss, latency, relay))
        if not scored:
            rng = derive_rng(self.seed, f"voip.fallback.{src}.{dst}")
            return relays[int(rng.integers(0, len(relays)))]
        scored.sort()
        shortlist = scored[: self.shortlist_size]
        return min(shortlist, key=lambda t: (t[1], t[2]))[2]

    def choose_closest_to(self, anchor: int, relays: list[int]) -> int:
        """Measured-latency nearest relay to ``anchor`` (src or dst)."""
        return min(relays, key=lambda r: (self._leg_truth(anchor, r)[0], r))

    def choose_random(self, src: int, dst: int, relays: list[int]) -> int:
        rng = derive_rng(self.seed, f"voip.random.{src}.{dst}")
        return relays[int(rng.integers(0, len(relays)))]

    # -- experiment -----------------------------------------------------------------

    def run(
        self,
        predictor: INanoPredictor,
        n_calls: int = 200,
        max_relays: int | None = None,
    ) -> VoipResult:
        """Emulate calls and compare relay-selection strategies."""
        result = VoipResult()
        strategies = ["inano", "closest_src", "closest_dst", "random"]
        for name in strategies:
            result.loss_rates[name] = []
            result.latencies_ms[name] = []
            result.mos[name] = []
        for src, dst in self.sample_calls(n_calls):
            relays = [h for h in self.hosts if h not in (src, dst)]
            if max_relays is not None and len(relays) > max_relays:
                rng = derive_rng(self.seed, f"voip.relayset.{src}.{dst}")
                idx = rng.choice(len(relays), size=max_relays, replace=False)
                relays = [relays[int(i)] for i in idx]
            chosen = {
                "inano": self.choose_inano(predictor, src, dst, relays),
                "closest_src": self.choose_closest_to(src, relays),
                "closest_dst": self.choose_closest_to(dst, relays),
                "random": self.choose_random(src, dst, relays),
            }
            for name, relay in chosen.items():
                latency, loss = self.relay_truth(src, relay, dst)
                if latency == float("inf"):
                    latency, loss = 1000.0, 1.0 - 1e-9
                result.loss_rates[name].append(loss)
                result.latencies_ms[name].append(latency)
                result.mos[name].append(mos_score(2 * latency, loss))
        return result
