"""The paper's three case-study applications (Section 7).

Each experiment takes the ground-truth engine (to score decisions the way
the real network would) and the prediction systems under comparison (to
*make* the decisions). Strategies only ever see what their information
source would really give them: iNano sees predictions, Vivaldi sees
coordinates, OASIS sees geolocation + stale probes, "measured" sees true
RTTs (the paper's upper-bound strategy), and "random" sees nothing.
"""

from repro.apps.cdn import CdnExperiment, CdnResult
from repro.apps.voip import VoipExperiment, VoipResult
from repro.apps.detour import DetourExperiment, DetourResult

__all__ = [
    "CdnExperiment",
    "CdnResult",
    "VoipExperiment",
    "VoipResult",
    "DetourExperiment",
    "DetourResult",
]
