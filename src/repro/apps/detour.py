"""Detouring around failures (Section 7.3, Figure 11).

When a source cannot reach a destination, it retries via detour hosts.
The paper's strategy ranks detours by *predicted path disjointness*: the
(k+1)-th detour minimizes first the number of PoPs (clusters) and second
the number of ASes shared with the direct path and the k already-chosen
detours. A recovery attempt with N detours tries the top N in that order.
Compared against SOSR's random-k detours [20] on ground-truth
reachability under injected failure scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.predictor import INanoPredictor, PredictedPath
from repro.routing.failures import FailureAwareReachability, FailureScenario
from repro.routing.forwarding import ForwardingEngine
from repro.util.rng import derive_rng


@dataclass
class DetourResult:
    """Unreachability counts per number of detours tried."""

    n_events: int = 0
    #: strategy -> {n_detours: number of (src, dst) events still unreachable}
    unreachable: dict[str, dict[int, int]] = field(default_factory=dict)

    def unreachable_fraction(self, strategy: str, n_detours: int) -> float:
        if self.n_events == 0:
            return 0.0
        return self.unreachable[strategy][n_detours] / self.n_events


@dataclass
class DetourExperiment:
    """Failure-recovery experiment over one topology snapshot."""

    engine: ForwardingEngine
    predictor: INanoPredictor
    max_detours: int = 8
    seed: int = 0

    # -- disjointness ranking ----------------------------------------------------

    @staticmethod
    def _path_elements(path: PredictedPath | None) -> tuple[set[int], set[int]]:
        if path is None:
            return set(), set()
        return set(path.clusters), set(path.as_path)

    def rank_detours(
        self, src: int, dst: int, detour_candidates: list[int]
    ) -> list[int]:
        """Order detours by predicted disjointness (Section 7.3).

        Greedy: each next detour minimizes (shared PoPs, shared ASes) with
        the direct path plus all previously selected detour paths.
        """
        direct_fwd = self.predictor.predict_or_none(src, dst)
        direct_rev = self.predictor.predict_or_none(dst, src)
        covered_pops, covered_ases = self._path_elements(direct_fwd)
        rev_pops, rev_ases = self._path_elements(direct_rev)
        covered_pops |= rev_pops
        covered_ases |= rev_ases

        detour_paths: dict[int, tuple[set[int], set[int]]] = {}
        for relay in detour_candidates:
            leg1 = self.predictor.predict_or_none(src, relay)
            leg2 = self.predictor.predict_or_none(relay, dst)
            pops = set()
            ases = set()
            for leg in (leg1, leg2):
                p, a = self._path_elements(leg)
                pops |= p
                ases |= a
            detour_paths[relay] = (pops, ases)

        ranked: list[int] = []
        remaining = list(detour_candidates)
        while remaining:
            def overlap_key(relay: int) -> tuple[int, int, int]:
                pops, ases = detour_paths[relay]
                return (
                    len(pops & covered_pops),
                    len(ases & covered_ases),
                    relay,
                )

            chosen = min(remaining, key=overlap_key)
            ranked.append(chosen)
            remaining.remove(chosen)
            pops, ases = detour_paths[chosen]
            covered_pops |= pops
            covered_ases |= ases
        return ranked

    # -- experiment ------------------------------------------------------------------

    def run(
        self,
        events: list[tuple[FailureScenario, int, int, list[int]]],
    ) -> DetourResult:
        """Evaluate recovery on failure events.

        Each event is (scenario, src_prefix, dst_prefix, detour_candidates):
        the source cannot reach the destination directly under the
        scenario; we test how many of the first N detours (per strategy)
        restore connectivity, for N = 1..max_detours.
        """
        result = DetourResult()
        strategies = ["inano_disjoint", "random"]
        for name in strategies:
            result.unreachable[name] = {n: 0 for n in range(1, self.max_detours + 1)}

        for scenario, src, dst, candidates in events:
            result.n_events += 1
            oracle = FailureAwareReachability(self.engine, scenario)
            rankings = {
                "inano_disjoint": self.rank_detours(src, dst, candidates),
                "random": self._random_order(src, dst, candidates),
            }
            for name, ranking in rankings.items():
                works_at: int | None = None
                for i, relay in enumerate(ranking[: self.max_detours]):
                    if oracle.detour_works(src, relay, dst):
                        works_at = i + 1
                        break
                for n in range(1, self.max_detours + 1):
                    if works_at is None or works_at > n:
                        result.unreachable[name][n] += 1
        return result

    def _random_order(self, src: int, dst: int, candidates: list[int]) -> list[int]:
        rng = derive_rng(self.seed, f"detour.random.{src}.{dst}")
        order = list(candidates)
        rng.shuffle(order)
        return order
