"""P2P CDN replica selection (Section 7.1, Figure 9).

Every client is associated with 5 randomly chosen replicas; each strategy
picks one replica per client using only its own information source; the
download then happens over the *true* network (RTT and loss from the
ground-truth engine, fed through the TCP transfer-time model). "Optimal"
is the per-client minimum over all candidate replicas.

For 30KB files iNano uses latency alone (short TCP transfers are
latency-dominated [8]); for 1.5MB files it combines latency and loss via
the PFTK model [37], which is where it beats measured-latency selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.baselines.oasis import OasisSelector
from repro.baselines.vivaldi import VivaldiSystem
from repro.core.predictor import INanoPredictor
from repro.core.tcp import download_time_seconds, pftk_throughput_bps
from repro.routing.forwarding import ForwardingEngine
from repro.errors import NoRouteError, RoutingError
from repro.util.rng import derive_rng

SMALL_FILE_BYTES = 30_000
LARGE_FILE_BYTES = 1_500_000

#: A strategy maps (client_prefix, candidate_replica_prefixes) -> chosen prefix.
Strategy = Callable[[int, list[int]], int]


@dataclass
class CdnResult:
    """Per-strategy download times, aligned by client."""

    file_bytes: int
    #: strategy name -> list of download seconds (one per client)
    download_seconds: dict[str, list[float]] = field(default_factory=dict)
    optimal_seconds: list[float] = field(default_factory=list)

    def slowdown_vs_optimal(self, strategy: str) -> list[float]:
        """Per-client ratio of achieved to optimal download time."""
        achieved = self.download_seconds[strategy]
        return [
            a / o if o > 0 else 1.0
            for a, o in zip(achieved, self.optimal_seconds)
        ]

    def median_seconds(self, strategy: str) -> float:
        return float(np.median(self.download_seconds[strategy]))


@dataclass
class CdnExperiment:
    """Replica-selection experiment over one ground-truth snapshot."""

    engine: ForwardingEngine
    clients: list[int]            # client prefix indices
    replicas: list[int]           # replica prefix indices
    replicas_per_client: int = 5
    seed: int = 0
    _truth_cache: dict[tuple[int, int], tuple[float, float]] = field(
        default_factory=dict, repr=False
    )

    def _truth(self, client: int, replica: int) -> tuple[float, float]:
        """(true RTT seconds, true forward loss) between client and replica."""
        key = (client, replica)
        if key not in self._truth_cache:
            try:
                e2e = self.engine.end_to_end(replica, client)  # download direction
                self._truth_cache[key] = (e2e.rtt_ms / 1000.0, e2e.loss_forward)
            except (NoRouteError, RoutingError):
                self._truth_cache[key] = (float("inf"), 1.0 - 1e-9)
        return self._truth_cache[key]

    def candidate_sets(self) -> dict[int, list[int]]:
        """5 random replicas per client (independent per client, as in 7.1)."""
        out: dict[int, list[int]] = {}
        for client in self.clients:
            rng = derive_rng(self.seed, f"cdn.candidates.{client}")
            k = min(self.replicas_per_client, len(self.replicas))
            idx = rng.choice(len(self.replicas), size=k, replace=False)
            out[client] = [self.replicas[int(i)] for i in idx]
        return out

    def download_time(self, client: int, replica: int, file_bytes: int) -> float:
        rtt_s, loss = self._truth(client, replica)
        if rtt_s == float("inf"):
            return float("inf")
        return download_time_seconds(file_bytes, rtt_s, loss)

    def run(
        self, strategies: dict[str, Strategy], file_bytes: int
    ) -> CdnResult:
        """Evaluate every strategy on every client for one file size."""
        result = CdnResult(file_bytes=file_bytes)
        candidates = self.candidate_sets()
        for name in strategies:
            result.download_seconds[name] = []
        for client in self.clients:
            replicas = candidates[client]
            times = {r: self.download_time(client, r, file_bytes) for r in replicas}
            result.optimal_seconds.append(min(times.values()))
            for name, strategy in strategies.items():
                chosen = strategy(client, list(replicas))
                result.download_seconds[name].append(times[chosen])
        return result

    # -- strategy factories -----------------------------------------------------

    def strategy_random(self) -> Strategy:
        def pick(client: int, replicas: list[int]) -> int:
            rng = derive_rng(self.seed, f"cdn.random.{client}")
            return replicas[int(rng.integers(0, len(replicas)))]

        return pick

    def strategy_measured_latency(self) -> Strategy:
        """The paper's 'measured latencies' strategy (ping each replica)."""

        def pick(client: int, replicas: list[int]) -> int:
            return min(replicas, key=lambda r: (self._truth(client, r)[0], r))

        return pick

    def strategy_inano(
        self, predictor: INanoPredictor, file_bytes: int
    ) -> Strategy:
        """iNano: latency for small files, PFTK(latency, loss) for large."""

        def pick(client: int, replicas: list[int]) -> int:
            scored: list[tuple[float, int]] = []
            for replica in replicas:
                fwd = predictor.predict_or_none(replica, client)
                rev = predictor.predict_or_none(client, replica)
                if fwd is None or rev is None:
                    scored.append((float("inf"), replica))
                    continue
                rtt_s = (fwd.latency_ms + rev.latency_ms) / 1000.0
                if rtt_s <= 0:
                    rtt_s = 1e-3
                if file_bytes <= SMALL_FILE_BYTES:
                    scored.append((rtt_s, replica))
                else:
                    rate = pftk_throughput_bps(rtt_s, min(0.99, fwd.loss))
                    scored.append((-rate, replica))
            scored.sort()
            return scored[0][1]

        return pick

    def strategy_vivaldi(self, vivaldi: VivaldiSystem) -> Strategy:
        def pick(client: int, replicas: list[int]) -> int:
            return min(replicas, key=lambda r: (vivaldi.distance_ms(client, r), r))

        return pick

    def strategy_oasis(self, oasis: OasisSelector) -> Strategy:
        def pick(client: int, replicas: list[int]) -> int:
            return oasis.select(client, replicas)

        return pick
