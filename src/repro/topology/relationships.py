"""Ground-truth business relationships between ASes.

Relationships drive both route export (valley-free) and local preference
(customer < peer < provider). Sibling ASes (same organization, e.g. the
Bell South pair the paper cites) additionally use *late-exit* routing
between each other.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import TopologyError


class Relationship(enum.Enum):
    """Relationship of AS ``a`` towards AS ``b`` for ``rel(a, b)``."""

    PROVIDER = "provider"  # a is b's provider (a sells transit to b)
    CUSTOMER = "customer"  # a is b's customer
    PEER = "peer"          # settlement-free peers
    SIBLING = "sibling"    # same organization

    def inverse(self) -> "Relationship":
        if self is Relationship.PROVIDER:
            return Relationship.CUSTOMER
        if self is Relationship.CUSTOMER:
            return Relationship.PROVIDER
        return self


@dataclass
class RelationshipMap:
    """Directed relationship table over AS pairs.

    Stores ``rel(a, b)``: the role *a plays towards b*. Always kept
    symmetric-consistent (``rel(b, a) == rel(a, b).inverse()``).
    """

    _table: dict[tuple[int, int], Relationship] = field(default_factory=dict)

    def set(self, a: int, b: int, rel: Relationship) -> None:
        """Record that ``a`` is ``rel`` of ``b`` (and the inverse view)."""
        if a == b:
            raise TopologyError(f"self-relationship for AS {a}")
        existing = self._table.get((a, b))
        if existing is not None and existing is not rel:
            raise TopologyError(
                f"conflicting relationship for AS pair ({a}, {b}): "
                f"{existing.value} vs {rel.value}"
            )
        self._table[(a, b)] = rel
        self._table[(b, a)] = rel.inverse()

    def get(self, a: int, b: int) -> Relationship | None:
        """Relationship of ``a`` towards ``b``, or None if not adjacent."""
        return self._table.get((a, b))

    def are_adjacent(self, a: int, b: int) -> bool:
        return (a, b) in self._table

    def neighbors(self, a: int) -> list[int]:
        """All ASes adjacent to ``a``."""
        return sorted({b for (x, b) in self._table if x == a})

    def customers_of(self, a: int) -> list[int]:
        """ASes that buy transit from ``a``."""
        return sorted(
            b for (x, b), rel in self._table.items()
            if x == a and rel is Relationship.PROVIDER
        )

    def providers_of(self, a: int) -> list[int]:
        """ASes that ``a`` buys transit from."""
        return sorted(
            b for (x, b), rel in self._table.items()
            if x == a and rel is Relationship.CUSTOMER
        )

    def peers_of(self, a: int) -> list[int]:
        return sorted(
            b for (x, b), rel in self._table.items()
            if x == a and rel is Relationship.PEER
        )

    def siblings_of(self, a: int) -> list[int]:
        return sorted(
            b for (x, b), rel in self._table.items()
            if x == a and rel is Relationship.SIBLING
        )

    def edges(self) -> list[tuple[int, int, Relationship]]:
        """Each adjacency once, as ``(a, b, rel(a, b))`` with ``a < b``."""
        return sorted(
            (a, b, rel) for (a, b), rel in self._table.items() if a < b
        )

    def __len__(self) -> int:
        return len(self._table) // 2

    def is_valley_free(self, as_path: list[int]) -> bool:
        """Check the valley-free property of an AS-level path.

        A path may climb customer->provider / sibling edges, cross at most
        one peer edge, and then descend provider->customer / sibling edges.
        Unknown adjacencies make the path invalid.
        """
        # state 0: climbing, state 1: after peak (peer crossed or descending)
        state = 0
        peer_used = False
        for a, b in zip(as_path, as_path[1:]):
            rel = self.get(a, b)
            if rel is None:
                return False
            if rel is Relationship.SIBLING:
                continue
            if rel is Relationship.CUSTOMER:  # a -> its provider: climbing
                if state == 1:
                    return False
            elif rel is Relationship.PEER:
                if state == 1 or peer_used:
                    return False
                peer_used = True
                state = 1
            else:  # PROVIDER: a -> its customer: descending
                state = 1
        return True
