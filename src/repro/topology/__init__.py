"""Synthetic Internet topology substrate.

The paper measures the real Internet from PlanetLab; offline, we generate a
structurally faithful stand-in: a tiered AS graph with
customer/provider/peer/sibling relationships, PoPs placed in a geometric
plane, routers and numbered interfaces inside each PoP, inter- and
intra-domain links annotated with propagation latency and loss, and edge
prefixes originated by ASes.

The ground truth generated here is *hidden* from the predictor; only the
measurement layer (`repro.measurement`) may read it, and the atlas/predictor
see nothing but simulated traceroutes, probes and BGP feed snapshots.
"""

from repro.topology.relationships import Relationship, RelationshipMap
from repro.topology.model import (
    AutonomousSystem,
    Interface,
    Link,
    Pop,
    PrefixInfo,
    Router,
    Topology,
)
from repro.topology.generator import TopologyConfig, generate_topology

__all__ = [
    "Relationship",
    "RelationshipMap",
    "AutonomousSystem",
    "Interface",
    "Link",
    "Pop",
    "PrefixInfo",
    "Router",
    "Topology",
    "TopologyConfig",
    "generate_topology",
]
