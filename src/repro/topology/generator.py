"""Synthetic Internet generator.

Produces a tiered AS topology with the structural features the paper's
prediction problem depends on:

* a clique of tier-1 ASes peering with each other,
* multi-homed transit (tier-2) ASes with selective peering,
* stub (tier-3) ASes, some multi-homed,
* sibling AS pairs running late-exit routing between themselves,
* per-AS stable neighbor preference ranks (learnable by Section 4.3.3),
* local-preference deviations from customer<peer<provider (Section 4.3's
  "incorrect local preferences" error source),
* traffic-engineered prefix announcements where an AS's provider set is a
  proper subset of its upstream neighbors (Section 4.3.4),
* PoPs embedded in a geometric plane so propagation latency, early-exit and
  late-exit are all meaningful.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TopologyError
from repro.topology.model import (
    AutonomousSystem,
    Link,
    Pop,
    PrefixInfo,
    Router,
    Topology,
)
from repro.topology.relationships import Relationship, RelationshipMap
from repro.util.ids import PREFIX_SIZE, PrefixId
from repro.util.rng import derive_rng

#: Interface IPs are allocated from this base upward, far above any edge
#: prefix the generator allocates, so the two address blocks never collide.
INFRASTRUCTURE_IP_BASE = 0x80000000  # 128.0.0.0
#: Edge prefixes start here (prefix index), i.e. at 0.0.4.0/24.
EDGE_PREFIX_BASE_INDEX = 4


@dataclass
class TopologyConfig:
    """Knobs for the synthetic Internet. Defaults give a mid-size network."""

    seed: int = 0
    n_tier1: int = 8
    n_tier2: int = 60
    n_tier3: int = 240
    # provider multi-homing: probability distribution over 1, 2, 3 providers
    multihoming_probs: tuple[float, float, float] = (0.35, 0.45, 0.20)
    tier2_peering_prob: float = 0.20
    tier3_peering_prob: float = 0.012
    n_sibling_pairs: int = 6
    pops_tier1: tuple[int, int] = (6, 12)
    pops_tier2: tuple[int, int] = (2, 6)
    pops_tier3: tuple[int, int] = (1, 2)
    routers_per_pop: tuple[int, int] = (1, 3)
    # geometry: unit square; latency = distance * latency_scale + jitter
    latency_scale_ms: float = 55.0
    min_link_latency_ms: float = 0.3
    region_spread: float = 0.08
    interconnects_tier1: int = 3
    interconnects_default: int = 1
    extra_interconnect_prob: float = 0.35
    # loss model
    lossy_link_fraction: float = 0.08
    lossy_access_fraction: float = 0.12
    loss_rate_range: tuple[float, float] = (0.005, 0.15)
    # prefixes per AS by tier
    prefixes_tier1: tuple[int, int] = (2, 5)
    prefixes_tier2: tuple[int, int] = (2, 8)
    prefixes_tier3: tuple[int, int] = (1, 5)
    access_latency_range_ms: tuple[float, float] = (0.3, 3.0)
    # routing-behaviour realism: fractions of ASes departing from textbook
    # customer<peer<provider routing. These are deliberately substantial —
    # the paper attributes most of GRAPH's 31%-accuracy failures to exactly
    # these behaviours (Section 4.3), so the synthetic Internet must
    # exhibit them at a rate that separates GRAPH from full iNano.
    pref_deviation_fraction: float = 0.20
    traffic_engineering_fraction: float = 0.40
    per_prefix_te_fraction: float = 0.3

    def validate(self) -> None:
        if self.n_tier1 < 2:
            raise TopologyError("need at least 2 tier-1 ASes")
        if abs(sum(self.multihoming_probs) - 1.0) > 1e-9:
            raise TopologyError("multihoming_probs must sum to 1")
        if self.n_sibling_pairs * 2 > self.n_tier2:
            raise TopologyError("too many sibling pairs for tier-2 population")


@dataclass
class _Builder:
    """Mutable state threaded through the generation passes."""

    config: TopologyConfig
    rng: np.random.Generator
    ases: dict[int, AutonomousSystem] = field(default_factory=dict)
    pops: dict[int, Pop] = field(default_factory=dict)
    links: dict[tuple[int, int], Link] = field(default_factory=dict)
    prefixes: dict[PrefixId, PrefixInfo] = field(default_factory=dict)
    relationships: RelationshipMap = field(default_factory=RelationshipMap)
    late_exit_pairs: set[frozenset[int]] = field(default_factory=set)
    link_ifaces: dict[tuple[int, int], int] = field(default_factory=dict)
    regions: dict[int, tuple[float, float]] = field(default_factory=dict)
    next_pop_id: int = 0
    next_router_id: int = 0
    next_iface_ip: int = INFRASTRUCTURE_IP_BASE
    next_prefix_index: int = EDGE_PREFIX_BASE_INDEX


def generate_topology(config: TopologyConfig | None = None) -> Topology:
    """Generate a full ground-truth topology from ``config``.

    Deterministic for a given ``config.seed``.
    """
    config = config or TopologyConfig()
    config.validate()
    b = _Builder(config=config, rng=derive_rng(config.seed, "topology"))
    _create_ases(b)
    _create_relationships(b)
    _create_pops(b)
    _create_intra_as_links(b)
    _create_inter_as_links(b)
    _create_routers_and_interfaces(b)
    _allocate_prefixes(b)
    _assign_behaviour(b)
    topo = Topology(
        ases=b.ases,
        pops=b.pops,
        links=b.links,
        prefixes=b.prefixes,
        relationships=b.relationships,
        late_exit_pairs=b.late_exit_pairs,
        link_ifaces=b.link_ifaces,
    )
    topo.validate()
    return topo


# ---------------------------------------------------------------------------
# generation passes


def _create_ases(b: _Builder) -> None:
    cfg = b.config
    asn = 1
    for tier, count in ((1, cfg.n_tier1), (2, cfg.n_tier2), (3, cfg.n_tier3)):
        for _ in range(count):
            b.ases[asn] = AutonomousSystem(asn=asn, tier=tier)
            asn += 1


def _tier_asns(b: _Builder, tier: int) -> list[int]:
    return [a.asn for a in b.ases.values() if a.tier == tier]


def _create_relationships(b: _Builder) -> None:
    cfg, rng = b.config, b.rng
    tier1 = _tier_asns(b, 1)
    tier2 = _tier_asns(b, 2)
    tier3 = _tier_asns(b, 3)

    # Tier-1 clique: all pairs peer.
    for a, c in itertools.combinations(tier1, 2):
        b.relationships.set(a, c, Relationship.PEER)

    def pick_providers(candidates: list[int]) -> list[int]:
        k = 1 + int(rng.choice(3, p=list(cfg.multihoming_probs)))
        k = min(k, len(candidates))
        return list(rng.choice(candidates, size=k, replace=False))

    # Tier-2: providers from tier-1 (and occasionally an earlier tier-2).
    for asn in tier2:
        candidates = list(tier1)
        earlier = [x for x in tier2 if x < asn]
        if earlier and rng.random() < 0.3:
            candidates = candidates + list(rng.choice(earlier, size=1))
        for provider in pick_providers(candidates):
            if not b.relationships.are_adjacent(provider, asn):
                b.relationships.set(provider, asn, Relationship.PROVIDER)

    # Tier-2 selective peering.
    for a, c in itertools.combinations(tier2, 2):
        if b.relationships.are_adjacent(a, c):
            continue
        if rng.random() < cfg.tier2_peering_prob:
            b.relationships.set(a, c, Relationship.PEER)

    # Sibling pairs among tier-2 (same organization; late-exit).
    unpaired = [a for a in tier2 if not b.relationships.siblings_of(a)]
    rng.shuffle(unpaired)
    for i in range(cfg.n_sibling_pairs):
        a, c = unpaired[2 * i], unpaired[2 * i + 1]
        if b.relationships.are_adjacent(a, c):
            continue
        b.relationships.set(a, c, Relationship.SIBLING)
        b.late_exit_pairs.add(frozenset((a, c)))

    # Tier-3 stubs: providers mostly from tier-2, sometimes tier-1.
    for asn in tier3:
        pool = tier2 if rng.random() < 0.85 else tier1
        for provider in pick_providers(pool):
            if not b.relationships.are_adjacent(provider, asn):
                b.relationships.set(provider, asn, Relationship.PROVIDER)

    # Sparse tier-3 regional peering.
    n_pairs = int(cfg.tier3_peering_prob * len(tier3) * len(tier3) / 2)
    for _ in range(n_pairs):
        a, c = rng.choice(tier3, size=2, replace=False)
        if not b.relationships.are_adjacent(int(a), int(c)):
            b.relationships.set(int(a), int(c), Relationship.PEER)


def _create_pops(b: _Builder) -> None:
    cfg, rng = b.config, b.rng
    for as_obj in b.ases.values():
        center = (float(rng.random()), float(rng.random()))
        b.regions[as_obj.asn] = center
        lo, hi = {
            1: cfg.pops_tier1,
            2: cfg.pops_tier2,
            3: cfg.pops_tier3,
        }[as_obj.tier]
        n_pops = int(rng.integers(lo, hi + 1))
        for _ in range(n_pops):
            if as_obj.tier == 1:
                # Tier-1 backbones span the whole plane.
                loc = (float(rng.random()), float(rng.random()))
            else:
                loc = (
                    float(np.clip(center[0] + rng.normal(0, cfg.region_spread), 0, 1)),
                    float(np.clip(center[1] + rng.normal(0, cfg.region_spread), 0, 1)),
                )
            pop = Pop(pop_id=b.next_pop_id, asn=as_obj.asn, location=loc)
            b.pops[pop.pop_id] = pop
            as_obj.pop_ids.append(pop.pop_id)
            b.next_pop_id += 1


def _distance(b: _Builder, p: int, q: int) -> float:
    (x1, y1), (x2, y2) = b.pops[p].location, b.pops[q].location
    return math.hypot(x1 - x2, y1 - y2)


def _link_latency(b: _Builder, p: int, q: int) -> float:
    cfg = b.config
    jitter = float(b.rng.uniform(0.0, 0.5))
    return max(
        cfg.min_link_latency_ms,
        _distance(b, p, q) * cfg.latency_scale_ms + jitter,
    )


def _draw_loss(b: _Builder, lossy_prob: float) -> float:
    cfg = b.config
    if b.rng.random() >= lossy_prob:
        return 0.0
    lo, hi = cfg.loss_rate_range
    # Log-uniform: most lossy links mildly lossy, a few very lossy.
    return float(np.exp(b.rng.uniform(np.log(lo), np.log(hi))))


def _add_link_pair(b: _Builder, p: int, q: int, intra: bool) -> None:
    if p == q or (p, q) in b.links:
        return
    latency = _link_latency(b, p, q)
    lossy_prob = b.config.lossy_link_fraction * (0.5 if intra else 1.0)
    b.links[(p, q)] = Link(p, q, latency, _draw_loss(b, lossy_prob), intra)
    b.links[(q, p)] = Link(q, p, latency, _draw_loss(b, lossy_prob), intra)


def _create_intra_as_links(b: _Builder) -> None:
    """Connect each AS's PoPs: geometric MST plus a few chords."""
    for as_obj in b.ases.values():
        pids = as_obj.pop_ids
        if len(pids) == 1:
            continue
        # Prim's MST over geometric distance.
        in_tree = {pids[0]}
        remaining = set(pids[1:])
        while remaining:
            best = min(
                ((p, q) for p in in_tree for q in remaining),
                key=lambda pq: _distance(b, *pq),
            )
            _add_link_pair(b, best[0], best[1], intra=True)
            in_tree.add(best[1])
            remaining.discard(best[1])
        # Chords for redundancy (ring-like closure for larger ASes).
        if len(pids) >= 4:
            n_chords = max(1, len(pids) // 3)
            for _ in range(n_chords):
                p, q = b.rng.choice(pids, size=2, replace=False)
                _add_link_pair(b, int(p), int(q), intra=True)


def _create_inter_as_links(b: _Builder) -> None:
    """Pick interconnection PoP pairs for each AS adjacency (closest-first)."""
    cfg = b.config
    for a, c, rel in b.relationships.edges():
        pops_a, pops_c = b.ases[a].pop_ids, b.ases[c].pop_ids
        pairs = sorted(
            ((p, q) for p in pops_a for q in pops_c),
            key=lambda pq: _distance(b, *pq),
        )
        both_tier1 = b.ases[a].tier == 1 and b.ases[c].tier == 1
        n = cfg.interconnects_tier1 if both_tier1 else cfg.interconnects_default
        if rel is Relationship.SIBLING:
            n = max(n, 2)  # siblings interconnect richly (late-exit needs choice)
        if b.rng.random() < cfg.extra_interconnect_prob:
            n += 1
        used_pops_a: set[int] = set()
        added = 0
        for p, q in pairs:
            if added >= n:
                break
            if p in used_pops_a and len(pops_a) > added:
                continue  # spread interconnects across distinct PoPs
            _add_link_pair(b, p, q, intra=False)
            used_pops_a.add(p)
            added += 1
        if added == 0:  # degenerate geometry fallback
            p, q = pairs[0]
            _add_link_pair(b, p, q, intra=False)


def _create_routers_and_interfaces(b: _Builder) -> None:
    """Create routers per PoP and one interface per incident link direction.

    Interfaces model what traceroute sees: the ingress interface of the
    router terminating each link. Every PoP also gets one loopback-style
    interface so destinations inside infrastructure are addressable.
    """
    cfg = b.config
    incident: dict[int, list[tuple[int, int]]] = {pid: [] for pid in b.pops}
    for (src, dst) in b.links:
        incident[dst].append((src, dst))  # interface lives at link's far end

    # Interface IPs are allocated from a per-AS /16-style block so every
    # infrastructure /24 belongs to exactly one AS — route collectors can
    # then announce an origin for infrastructure space, which is how real
    # systems map router interfaces to ASes.
    next_ip_in_as: dict[int, int] = {}

    def alloc_ip(asn: int) -> int:
        offset = next_ip_in_as.get(asn, 0)
        next_ip_in_as[asn] = offset + 1
        if offset >= 0xFFFF:
            raise TopologyError(f"AS {asn} exhausted its interface block")
        return INFRASTRUCTURE_IP_BASE + (asn << 16) + offset

    b.link_ifaces = {}
    for pop in b.pops.values():
        n_routers = int(b.rng.integers(cfg.routers_per_pop[0], cfg.routers_per_pop[1] + 1))
        routers = []
        for _ in range(n_routers):
            router = Router(router_id=b.next_router_id, pop_id=pop.pop_id)
            b.next_router_id += 1
            routers.append(router)
            pop.routers.append(router)
        # Loopback interface on the first router.
        routers[0].add_interface(alloc_ip(pop.asn))
        # One ingress interface per incident link, spread over routers.
        for idx, directed_link in enumerate(sorted(incident[pop.pop_id])):
            router = routers[idx % n_routers]
            iface = router.add_interface(alloc_ip(pop.asn))
            b.link_ifaces[directed_link] = iface.ip


def _allocate_prefixes(b: _Builder) -> None:
    cfg = b.config
    for as_obj in b.ases.values():
        lo, hi = {
            1: cfg.prefixes_tier1,
            2: cfg.prefixes_tier2,
            3: cfg.prefixes_tier3,
        }[as_obj.tier]
        n_prefixes = int(b.rng.integers(lo, hi + 1))
        for _ in range(n_prefixes):
            prefix = PrefixId(b.next_prefix_index)
            b.next_prefix_index += 1
            pop_id = int(b.rng.choice(as_obj.pop_ids))
            access_lat = float(b.rng.uniform(*cfg.access_latency_range_ms))
            access_loss = _draw_loss(b, cfg.lossy_access_fraction)
            b.prefixes[prefix] = PrefixInfo(
                prefix=prefix,
                origin_asn=as_obj.asn,
                attachment_pop=pop_id,
                access_latency_ms=access_lat,
                access_loss=access_loss,
            )
    if b.next_prefix_index * PREFIX_SIZE >= INFRASTRUCTURE_IP_BASE:
        raise TopologyError("edge prefix space collided with infrastructure IPs")


def _assign_behaviour(b: _Builder) -> None:
    """Attach routing-behaviour knobs to each AS."""
    cfg, rng = b.config, b.rng
    for as_obj in b.ases.values():
        neighbors = b.relationships.neighbors(as_obj.asn)
        order = list(neighbors)
        rng.shuffle(order)
        as_obj.neighbor_rank = {asn: rank for rank, asn in enumerate(order)}

        # Local-preference deviations: promote a random non-customer
        # neighbor to top preference (class 0), modelling regional or
        # performance-driven departures from customer<peer<provider.
        non_customers = [
            n for n in neighbors
            if b.relationships.get(as_obj.asn, n)
            in (Relationship.CUSTOMER, Relationship.PEER)
        ]
        if non_customers and rng.random() < cfg.pref_deviation_fraction:
            favored = int(rng.choice(non_customers))
            as_obj.pref_deviations[favored] = 0

        # Traffic engineering: announce own prefixes through a proper
        # subset of providers (Section 4.3.4's provider-vs-upstream gap).
        providers = b.relationships.providers_of(as_obj.asn)
        if len(providers) >= 2 and rng.random() < cfg.traffic_engineering_fraction:
            k = int(rng.integers(1, len(providers)))
            subset = frozenset(int(x) for x in rng.choice(providers, size=k, replace=False))
            as_obj.announce_providers = subset
            # Some of those ASes additionally engineer per-prefix.
            if rng.random() < cfg.per_prefix_te_fraction:
                own = [p for p in b.prefixes.values() if p.origin_asn == as_obj.asn]
                if len(own) >= 2:
                    victim = own[int(rng.integers(0, len(own)))]
                    other = frozenset(
                        {int(rng.choice([x for x in providers]))}
                    )
                    as_obj.prefix_announce_overrides[victim.prefix.index] = other
