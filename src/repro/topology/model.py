"""Core topology data model: ASes, PoPs, routers, interfaces, links, prefixes.

Identifiers
-----------
* ASes are integers (``asn``), allocated densely from 1.
* PoPs are integers (``pop_id``), globally unique across ASes.
* Routers are integers (``router_id``), globally unique.
* Interfaces are 32-bit IP integers drawn from a reserved infrastructure
  block, distinct from the edge-prefix block that hosts live in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.topology.relationships import Relationship, RelationshipMap
from repro.util.ids import PrefixId


@dataclass(frozen=True, slots=True)
class Interface:
    """A numbered router interface."""

    ip: int
    router_id: int
    pop_id: int


@dataclass
class Router:
    """A router inside a PoP, owning one or more interfaces."""

    router_id: int
    pop_id: int
    interfaces: list[Interface] = field(default_factory=list)

    def add_interface(self, ip: int) -> Interface:
        iface = Interface(ip=ip, router_id=self.router_id, pop_id=self.pop_id)
        self.interfaces.append(iface)
        return iface


@dataclass
class Pop:
    """A Point of Presence: co-located routers of one AS at one location."""

    pop_id: int
    asn: int
    location: tuple[float, float]
    routers: list[Router] = field(default_factory=list)

    @property
    def interfaces(self) -> list[Interface]:
        return [iface for router in self.routers for iface in router.interfaces]


@dataclass(frozen=True, slots=True)
class Link:
    """A directed PoP-level adjacency with performance annotations.

    Links are stored once per direction; ``latency_ms`` is propagation-only
    (symmetric in practice, but the two directions may carry different loss
    rates). ``intra_as`` marks links whose endpoints share an AS.
    """

    src_pop: int
    dst_pop: int
    latency_ms: float
    loss_rate: float
    intra_as: bool


@dataclass(frozen=True, slots=True)
class PrefixInfo:
    """An edge /24: who originates it, where it attaches, and its access link.

    ``access_latency_ms``/``access_loss`` describe the last-mile hop between
    the attachment PoP and hosts in the prefix; probes to hosts traverse it.
    """

    prefix: PrefixId
    origin_asn: int
    attachment_pop: int
    access_latency_ms: float = 1.0
    access_loss: float = 0.0


@dataclass
class AutonomousSystem:
    """An AS: tier, its PoPs, and routing-behaviour knobs.

    ``neighbor_rank`` is a strict preference order over neighbor ASes used
    to break ties among equally-preferred routes; it is *stable*, which is
    what makes the paper's AS-preference inference (Section 4.3.3) learnable.
    ``pref_deviations`` maps a neighbor ASN to an overridden preference
    class (0=best), modelling the "incorrect local preferences" the paper
    blames for part of GRAPH's error. ``announce_providers`` restricts which
    providers this AS announces *its own prefixes* through (the Section
    4.3.4 traffic-engineering case); ``None`` means all providers.
    """

    asn: int
    tier: int
    pop_ids: list[int] = field(default_factory=list)
    neighbor_rank: dict[int, int] = field(default_factory=dict)
    pref_deviations: dict[int, int] = field(default_factory=dict)
    announce_providers: frozenset[int] | None = None
    prefix_announce_overrides: dict[int, frozenset[int]] = field(default_factory=dict)


@dataclass
class Topology:
    """The complete ground-truth Internet, with lookup indices."""

    ases: dict[int, AutonomousSystem]
    pops: dict[int, Pop]
    links: dict[tuple[int, int], Link]
    prefixes: dict[PrefixId, PrefixInfo]
    relationships: RelationshipMap
    late_exit_pairs: set[frozenset[int]] = field(default_factory=set)
    #: Directed link (src_pop, dst_pop) -> ingress interface IP at dst_pop.
    #: Links created after generation (day churn) fall back to the PoP's
    #: loopback interface, mimicking routers reusing an existing address.
    link_ifaces: dict[tuple[int, int], int] = field(default_factory=dict)
    _iface_index: dict[int, Interface] = field(default_factory=dict, repr=False)
    _pop_neighbors: dict[int, list[int]] = field(default_factory=dict, repr=False)
    _as_adjacency_links: dict[tuple[int, int], list[tuple[int, int]]] = field(
        default_factory=dict, repr=False
    )
    _prefixes_by_as: dict[int, list[PrefixInfo]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.reindex()

    def reindex(self) -> None:
        """Rebuild derived lookup tables after mutation (e.g. day evolution)."""
        self._iface_index = {}
        for pop in self.pops.values():
            for iface in pop.interfaces:
                if iface.ip in self._iface_index:
                    raise TopologyError(f"duplicate interface IP {iface.ip}")
                self._iface_index[iface.ip] = iface
        self._pop_neighbors = {pop_id: [] for pop_id in self.pops}
        self._as_adjacency_links = {}
        for (src, dst) in self.links:
            self._pop_neighbors[src].append(dst)
            a = self.pops[src].asn
            b = self.pops[dst].asn
            if a != b:
                self._as_adjacency_links.setdefault((a, b), []).append((src, dst))
        for neighbors in self._pop_neighbors.values():
            neighbors.sort()
        self._prefixes_by_as = {}
        for info in self.prefixes.values():
            self._prefixes_by_as.setdefault(info.origin_asn, []).append(info)

    # -- lookups ---------------------------------------------------------

    def interface(self, ip: int) -> Interface:
        try:
            return self._iface_index[ip]
        except KeyError:
            raise TopologyError(f"unknown interface IP {ip}") from None

    def has_interface(self, ip: int) -> bool:
        return ip in self._iface_index

    def pop_of_interface(self, ip: int) -> Pop:
        return self.pops[self.interface(ip).pop_id]

    def loopback_ip(self, pop_id: int) -> int:
        """The PoP's loopback-style interface (first interface created)."""
        pop = self.pops[pop_id]
        return pop.routers[0].interfaces[0].ip

    def ingress_interface_ip(self, src_pop: int, dst_pop: int) -> int:
        """Interface a traceroute sees when entering ``dst_pop`` from ``src_pop``."""
        return self.link_ifaces.get((src_pop, dst_pop), self.loopback_ip(dst_pop))

    def infra_prefix_origins(self) -> dict[int, int]:
        """Origin AS of every /24 that contains router interfaces.

        Mirrors what BGP collectors see for infrastructure address space.
        """
        from repro.util.ids import PREFIX_SIZE

        origins: dict[int, int] = {}
        for pop in self.pops.values():
            for iface in pop.interfaces:
                origins[iface.ip // PREFIX_SIZE] = pop.asn
        return origins

    def asn_of_pop(self, pop_id: int) -> int:
        return self.pops[pop_id].asn

    def pop_neighbors(self, pop_id: int) -> list[int]:
        return self._pop_neighbors.get(pop_id, [])

    def link(self, src_pop: int, dst_pop: int) -> Link:
        try:
            return self.links[(src_pop, dst_pop)]
        except KeyError:
            raise TopologyError(f"no link {src_pop}->{dst_pop}") from None

    def interconnections(self, a: int, b: int) -> list[tuple[int, int]]:
        """PoP-level links from AS ``a`` to AS ``b``."""
        return self._as_adjacency_links.get((a, b), [])

    def prefixes_of_as(self, asn: int) -> list[PrefixInfo]:
        return self._prefixes_by_as.get(asn, [])

    def uses_late_exit(self, a: int, b: int) -> bool:
        """True if ASes ``a`` and ``b`` jointly run late-exit routing."""
        return frozenset((a, b)) in self.late_exit_pairs

    # -- statistics ------------------------------------------------------

    @property
    def n_ases(self) -> int:
        return len(self.ases)

    @property
    def n_pops(self) -> int:
        return len(self.pops)

    @property
    def n_links(self) -> int:
        """Number of undirected PoP-level adjacencies."""
        return sum(1 for (s, d) in self.links if s < d)

    def as_degree(self, asn: int) -> int:
        return len(self.relationships.neighbors(asn))

    def validate(self) -> None:
        """Internal consistency checks; raises TopologyError on violation."""
        for (src, dst), link in self.links.items():
            if (dst, src) not in self.links:
                raise TopologyError(f"link {src}->{dst} missing reverse direction")
            if link.latency_ms <= 0:
                raise TopologyError(f"non-positive latency on {src}->{dst}")
            if not 0.0 <= link.loss_rate < 1.0:
                raise TopologyError(f"loss rate out of range on {src}->{dst}")
            same_as = self.pops[src].asn == self.pops[dst].asn
            if link.intra_as != same_as:
                raise TopologyError(f"intra_as flag wrong on {src}->{dst}")
        for asn, as_obj in self.ases.items():
            if not as_obj.pop_ids:
                raise TopologyError(f"AS {asn} has no PoPs")
            for pop_id in as_obj.pop_ids:
                if self.pops[pop_id].asn != asn:
                    raise TopologyError(f"PoP {pop_id} not owned by AS {asn}")
        for info in self.prefixes.values():
            if self.pops[info.attachment_pop].asn != info.origin_asn:
                raise TopologyError(
                    f"prefix {info.prefix} attached outside its origin AS"
                )
        for a, b, rel in self.relationships.edges():
            if rel is Relationship.SIBLING and not self.interconnections(a, b):
                raise TopologyError(f"sibling ASes {a},{b} share no link")
