"""Interface -> PoP clustering.

The paper clusters interfaces into PoPs using alias resolution, DNS-name
location hints, and reverse-path-length similarity. We simulate the *output
quality* of that pipeline: most interfaces land in their true PoP's
cluster, a configurable fraction fail the location step and become
singleton clusters. The resulting :class:`ClusterMap` is the only
identifier space the atlas and the predictor ever see — cluster ids are
opaque and merely *correlate* with true PoPs.

Prefix-to-cluster mapping comes from the traceroutes themselves: a prefix
maps to the cluster of the last responsive infrastructure hop seen on
traces that reached it (its attachment PoP, when measurement noise allows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.measurement.aliases import AliasResolution
from repro.measurement.traceroute import Traceroute
from repro.topology.model import Topology
from repro.util.rng import derive_rng

#: Cluster ids for interfaces that failed clustering start here.
SINGLETON_CLUSTER_BASE = 1 << 20
#: Client-side clusters (never serialized into the shared atlas) start here.
CLIENT_CLUSTER_BASE = 1 << 34


@dataclass
class ClusterMap:
    """Opaque cluster ids for interfaces, plus cluster-level metadata."""

    interface_cluster: dict[int, int] = field(default_factory=dict)
    cluster_asn: dict[int, int] = field(default_factory=dict)
    prefix_cluster: dict[int, int] = field(default_factory=dict)

    def cluster_of_ip(self, ip: int) -> int | None:
        return self.interface_cluster.get(ip)

    def asn_of_cluster(self, cluster: int) -> int | None:
        return self.cluster_asn.get(cluster)

    def cluster_of_prefix(self, prefix_index: int) -> int | None:
        return self.prefix_cluster.get(prefix_index)

    @property
    def n_clusters(self) -> int:
        return len(set(self.interface_cluster.values()))

    def cluster_path(self, trace: Traceroute) -> list[int]:
        """Map a traceroute to its cluster-level path.

        Anonymous and unclustered hops are skipped; consecutive duplicates
        (multiple interfaces in one PoP) are collapsed. The destination
        host hop is excluded — it is an end host, not infrastructure.
        """
        clusters: list[int] = []
        for hop in trace.hops:
            if hop.ip is None:
                continue
            cluster = self.interface_cluster.get(hop.ip)
            if cluster is None:
                continue
            if not clusters or clusters[-1] != cluster:
                clusters.append(cluster)
        return clusters

    def clone(self) -> "ClusterMap":
        """Independent copy (clients extend their own copy, never the atlas's)."""
        return ClusterMap(
            interface_cluster=dict(self.interface_cluster),
            cluster_asn=dict(self.cluster_asn),
            prefix_cluster=dict(self.prefix_cluster),
        )

    def extend_with_client_traces(
        self, traces: list[Traceroute], prefix_to_as: dict[int, int]
    ) -> int:
        """Cluster interfaces only the client has seen (Section 5).

        A client's own traceroutes traverse links in the outbound direction
        and see ingress interfaces the central atlas never probed. Each
        unknown interface becomes a fresh singleton cluster whose AS comes
        from the prefix-to-AS table (which covers infrastructure space).
        Returns the number of new clusters created.
        """
        created = 0
        for trace in traces:
            for hop in trace.hops:
                ip = hop.ip
                if ip is None or ip == trace.dst_ip:
                    continue
                if ip in self.interface_cluster:
                    continue
                asn = prefix_to_as.get(ip // 256)
                if asn is None:
                    continue
                cluster = CLIENT_CLUSTER_BASE + ip
                self.interface_cluster[ip] = cluster
                self.cluster_asn[cluster] = asn
                created += 1
        return created

    def cluster_path_with_rtts(self, trace: Traceroute) -> list[tuple[int, float]]:
        """Cluster path keeping the first measured RTT per cluster."""
        out: list[tuple[int, float]] = []
        for hop in trace.hops:
            if hop.ip is None:
                continue
            cluster = self.interface_cluster.get(hop.ip)
            if cluster is None:
                continue
            if not out or out[-1][0] != cluster:
                out.append((cluster, hop.rtt_ms))
        return out

    def cluster_segments_with_rtts(
        self, trace: Traceroute
    ) -> list[list[tuple[int, float]]]:
        """Cluster path split at anonymous/unmapped hops.

        A gap means we do not know what sits between the clusters on either
        side, so stitching across it would fabricate a link (and, worse, an
        AS adjacency) that may not exist. Consumers that extract links or
        AS paths should work per segment. The destination host hop ends the
        final segment without contributing a cluster.
        """
        segments: list[list[tuple[int, float]]] = []
        current: list[tuple[int, float]] = []
        for hop in trace.hops:
            if hop.ip is None or hop.ip == trace.dst_ip:
                if current:
                    segments.append(current)
                    current = []
                continue
            cluster = self.interface_cluster.get(hop.ip)
            if cluster is None:
                if current:
                    segments.append(current)
                    current = []
                continue
            if not current or current[-1][0] != cluster:
                current.append((cluster, hop.rtt_ms))
        if current:
            segments.append(current)
        return segments


def build_cluster_map(
    topo: Topology,
    aliases: AliasResolution,
    traceroutes: list[Traceroute],
    clustering_accuracy: float = 0.93,
    seed: int = 0,
) -> ClusterMap:
    """Cluster observed interfaces into PoP-like clusters.

    An interface whose alias resolution succeeded joins its router's PoP
    cluster with probability ``clustering_accuracy``; otherwise it becomes
    a singleton. Interfaces that alias resolution already made singleton
    routers also become singleton clusters (no DNS hints for them either).
    """
    rng = derive_rng(seed, "clustering")
    cmap = ClusterMap()
    next_singleton = SINGLETON_CLUSTER_BASE
    # Deterministic per-router decision: all aliases of a router cluster
    # together (alias resolution already merged them).
    router_cluster: dict[int, int] = {}
    for ip in sorted(aliases.inferred_router):
        inferred_router = aliases.inferred_router[ip]
        if not topo.has_interface(ip):
            continue
        iface = topo.interface(ip)
        asn = topo.pops[iface.pop_id].asn
        if inferred_router not in router_cluster:
            if inferred_router >= (1 << 30) or rng.random() > clustering_accuracy:
                router_cluster[inferred_router] = next_singleton
                next_singleton += 1
            else:
                router_cluster[inferred_router] = iface.pop_id
        cluster = router_cluster[inferred_router]
        cmap.interface_cluster[ip] = cluster
        cmap.cluster_asn[cluster] = asn

    # Prefix -> cluster from observed traceroutes (last responsive
    # infrastructure hop on traces that reached the destination).
    votes: dict[int, dict[int, int]] = {}
    for trace in traceroutes:
        if not trace.reached or len(trace.hops) < 2:
            continue
        infra_hops = [
            hop.ip
            for hop in trace.hops[:-1]
            if hop.ip is not None and hop.ip in cmap.interface_cluster
        ]
        if not infra_hops:
            continue
        cluster = cmap.interface_cluster[infra_hops[-1]]
        votes.setdefault(trace.dst_prefix_index, {})
        votes[trace.dst_prefix_index][cluster] = (
            votes[trace.dst_prefix_index].get(cluster, 0) + 1
        )
    for prefix_index, counts in votes.items():
        best = max(sorted(counts), key=lambda c: counts[c])
        cmap.prefix_cluster[prefix_index] = best
    return cmap


def cluster_pop_map(topo: Topology, cmap: ClusterMap) -> dict[int, int]:
    """Majority ground-truth PoP per cluster (measurement-layer helper).

    The loss prober needs to turn an atlas-space cluster link back into a
    concrete PoP link to know what to probe; this inversion lives in the
    measurement layer, which is allowed to read the topology.
    """
    votes: dict[int, dict[int, int]] = {}
    for ip, cluster in cmap.interface_cluster.items():
        if not topo.has_interface(ip):
            continue
        pop_id = topo.interface(ip).pop_id
        votes.setdefault(cluster, {})
        votes[cluster][pop_id] = votes[cluster].get(pop_id, 0) + 1
    return {
        cluster: max(sorted(counts), key=lambda p: counts[p])
        for cluster, counts in votes.items()
    }
