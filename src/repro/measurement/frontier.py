"""Frontier-search assignment of link measurements to vantage points.

iPlane partitions the set of atlas links across vantage points so that
every link's performance is measured by a small number of VPs (with some
redundancy against noise), and each VP only probes links that appear on
its own traceroute paths. We reproduce that as a greedy balanced set-cover
over the observed cluster-level paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LinkAssignment:
    """Which VP measures which cluster-level link, and over which path."""

    #: link -> list of (vp_index, path, position of the link on that path)
    assignments: dict[tuple[int, int], list[tuple[int, tuple[int, ...], int]]] = field(
        default_factory=dict
    )
    #: vp_index -> number of links assigned to it
    load: dict[int, int] = field(default_factory=dict)

    @property
    def n_links(self) -> int:
        return len(self.assignments)

    def measurers_of(self, link: tuple[int, int]) -> list[int]:
        return [vp for vp, _, _ in self.assignments.get(link, [])]


def assign_links_to_vantage_points(
    paths_per_vp: dict[int, list[tuple[int, ...]]],
    redundancy: int = 2,
) -> LinkAssignment:
    """Assign every observed link to up to ``redundancy`` vantage points.

    ``paths_per_vp`` maps a VP index to its observed cluster-level paths.
    Greedy: process links in a deterministic order; for each link choose
    the least-loaded VPs that observed it, remembering the concrete path
    (and hop position) the VP should reuse to probe the link.
    """
    if redundancy < 1:
        raise ValueError("redundancy must be >= 1")
    # Gather, per link, every (vp, path, position) observation.
    observations: dict[tuple[int, int], list[tuple[int, tuple[int, ...], int]]] = {}
    for vp_index in sorted(paths_per_vp):
        for path in paths_per_vp[vp_index]:
            for pos in range(len(path) - 1):
                link = (path[pos], path[pos + 1])
                observations.setdefault(link, []).append((vp_index, path, pos))

    result = LinkAssignment()
    result.load = {vp: 0 for vp in paths_per_vp}
    for link in sorted(observations):
        obs = observations[link]
        seen_vps: set[int] = set()
        # Distinct VPs observing this link, cheapest-loaded first.
        candidates = []
        for vp_index, path, pos in obs:
            if vp_index not in seen_vps:
                seen_vps.add(vp_index)
                candidates.append((vp_index, path, pos))
        candidates.sort(key=lambda c: (result.load[c[0]], c[0]))
        chosen = candidates[:redundancy]
        result.assignments[link] = chosen
        for vp_index, _, _ in chosen:
            result.load[vp_index] += 1
    return result
