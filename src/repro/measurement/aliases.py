"""Alias resolution simulation.

Real alias resolution (Ally/Mercator-style, [53]) groups interface IPs that
belong to the same router. It is imperfect: some aliases are missed
(splitting a router into several inferred "routers") and, rarely, two
distinct routers are merged. We reproduce those two error modes with
controlled probabilities, seeded deterministically per interface so
resolution is stable across atlas builds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.model import Topology
from repro.util.rng import derive_rng


@dataclass(frozen=True, slots=True)
class AliasResolution:
    """Result of alias resolution: inferred router id per interface IP."""

    inferred_router: dict[int, int]

    def same_router(self, ip_a: int, ip_b: int) -> bool:
        ra = self.inferred_router.get(ip_a)
        rb = self.inferred_router.get(ip_b)
        return ra is not None and ra == rb

    @property
    def n_inferred_routers(self) -> int:
        return len(set(self.inferred_router.values()))


def resolve_aliases(
    topo: Topology,
    observed_ips: set[int],
    miss_prob: float = 0.05,
    false_merge_prob: float = 0.002,
    seed: int = 0,
) -> AliasResolution:
    """Run simulated alias resolution over ``observed_ips``.

    * With probability ``miss_prob`` an interface fails resolution and is
      assigned a fresh singleton router id.
    * With probability ``false_merge_prob`` an interface is merged into an
      unrelated router of the same AS (the classic Ally false positive).
    """
    rng = derive_rng(seed, "aliases")
    inferred: dict[int, int] = {}
    # Stable ids: true routers keep their ids; singletons get offset ids.
    singleton_base = 1 << 30
    next_singleton = singleton_base
    routers_by_as: dict[int, list[int]] = {}
    for ip in sorted(observed_ips):
        if not topo.has_interface(ip):
            continue
        iface = topo.interface(ip)
        asn = topo.pops[iface.pop_id].asn
        routers_by_as.setdefault(asn, []).append(iface.router_id)

    for ip in sorted(observed_ips):
        if not topo.has_interface(ip):
            continue
        iface = topo.interface(ip)
        roll = rng.random()
        if roll < false_merge_prob:
            asn = topo.pops[iface.pop_id].asn
            candidates = [r for r in routers_by_as.get(asn, []) if r != iface.router_id]
            if candidates:
                inferred[ip] = candidates[int(rng.integers(0, len(candidates)))]
                continue
        if roll < false_merge_prob + miss_prob:
            inferred[ip] = next_singleton
            next_singleton += 1
            continue
        inferred[ip] = iface.router_id
    return AliasResolution(inferred_router=inferred)
