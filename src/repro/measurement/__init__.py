"""Measurement substrate: everything the atlas is allowed to learn from.

This package is the only layer that reads the ground-truth topology, and it
exposes that truth exclusively through noisy instruments: traceroutes with
per-hop RTTs (which embed reverse-path asymmetry), loss probes with
binomial sampling error, alias resolution and PoP clustering with
controlled error rates, and BGP feed snapshots from a handful of collector
peers. The atlas builder and predictors consume only these outputs.
"""

from repro.measurement.vantage import VantagePoint, select_vantage_points
from repro.measurement.traceroute import (
    Traceroute,
    TracerouteHop,
    TracerouteSimulator,
)
from repro.measurement.ping import PingProber
from repro.measurement.aliases import resolve_aliases
from repro.measurement.clustering import ClusterMap, build_cluster_map
from repro.measurement.bgp_feed import BgpFeedSnapshot, collect_bgp_feed
from repro.measurement.frontier import assign_links_to_vantage_points
from repro.measurement.linklatency import LinkLatencyEstimator

__all__ = [
    "VantagePoint",
    "select_vantage_points",
    "Traceroute",
    "TracerouteHop",
    "TracerouteSimulator",
    "PingProber",
    "resolve_aliases",
    "ClusterMap",
    "build_cluster_map",
    "BgpFeedSnapshot",
    "collect_bgp_feed",
    "assign_links_to_vantage_points",
    "LinkLatencyEstimator",
]
