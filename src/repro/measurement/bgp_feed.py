"""Simulated BGP route collectors (RouteViews / RIPE RIS stand-in).

A feed snapshot contains, for each (peer AS, prefix), the AS path the peer
selected. The atlas uses feeds for three things the paper lists: the
prefix -> origin-AS mapping, additional AS 3-tuples beyond what traceroutes
observe, and provider sets for origin ASes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.routing.bgp import RouteOracle
from repro.topology.model import Topology
from repro.util.rng import derive_rng


@dataclass
class BgpFeedSnapshot:
    """AS paths observed at the collectors on one day."""

    peer_asns: list[int]
    #: (peer_asn, prefix_index) -> AS path from peer to origin, inclusive.
    paths: dict[tuple[int, int], tuple[int, ...]] = field(default_factory=dict)
    #: origin AS of infrastructure /24s (router interface space)
    infra_origins: dict[int, int] = field(default_factory=dict)
    day: int = 0

    def origin_of_prefix(self, prefix_index: int) -> int | None:
        """Origin AS as seen in the feed (last AS on any path)."""
        for peer in self.peer_asns:
            path = self.paths.get((peer, prefix_index))
            if path:
                return path[-1]
        return None

    def prefix_to_as(self) -> dict[int, int]:
        """Full prefix -> origin mapping derivable from this snapshot.

        Covers both probed edge prefixes and infrastructure space — the
        paper's prefix-to-AS table (287K entries) likewise exceeds the set
        of probed prefixes (140K).
        """
        mapping: dict[int, int] = dict(self.infra_origins)
        for (_, prefix_index), path in self.paths.items():
            if path and prefix_index not in mapping:
                mapping[prefix_index] = path[-1]
        return mapping

    def as_paths(self) -> list[tuple[int, ...]]:
        return [path for path in self.paths.values() if len(path) >= 2]


def collect_bgp_feed(
    topo: Topology,
    oracle: RouteOracle,
    n_peers: int = 20,
    seed: int = 0,
    day: int = 0,
) -> BgpFeedSnapshot:
    """Snapshot the routes ``n_peers`` collector peers selected.

    Peers are drawn with a bias toward tier-1/tier-2 ASes (real collectors
    peer with large networks), plus some edge ASes for route diversity.
    """
    rng = derive_rng(seed, f"bgp_feed.day{day}")
    big = sorted(asn for asn, a in topo.ases.items() if a.tier <= 2)
    small = sorted(asn for asn, a in topo.ases.items() if a.tier == 3)
    n_big = min(len(big), max(1, int(n_peers * 0.7)))
    n_small = min(len(small), n_peers - n_big)
    peers = sorted(
        int(x) for x in list(rng.choice(big, size=n_big, replace=False))
        + list(rng.choice(small, size=n_small, replace=False))
    )

    snapshot = BgpFeedSnapshot(
        peer_asns=peers, infra_origins=topo.infra_prefix_origins(), day=day
    )
    for info in topo.prefixes.values():
        prefix_index = info.prefix.index
        table = oracle.table_for_prefix(prefix_index)
        for peer in peers:
            if peer == info.origin_asn:
                snapshot.paths[(peer, prefix_index)] = (peer,)
            elif table.reaches(peer):
                snapshot.paths[(peer, prefix_index)] = table.as_path(peer)
    return snapshot
