"""Vantage point selection.

Two populations mirror the paper's measurement platforms: a
"PlanetLab-like" set of well-connected vantage points used to build the
TO_DST atlas, and a "DIMES-like" population of ordinary edge hosts used
for the atlas-scaling study (Section 6.1.2) and for FROM_SRC client
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError
from repro.topology.model import Topology
from repro.util.ids import PrefixId, random_ip_in_prefix
from repro.util.rng import derive_rng


@dataclass(frozen=True, slots=True)
class VantagePoint:
    """A measurement host: a stable IP inside an edge prefix."""

    name: str
    host_ip: int
    prefix_index: int
    asn: int


def select_vantage_points(
    topo: Topology,
    count: int,
    kind: str = "planetlab",
    seed: int = 0,
    exclude_prefixes: set[int] | None = None,
) -> list[VantagePoint]:
    """Choose ``count`` vantage points spread over distinct ASes.

    ``kind`` labels the population ("planetlab" or "dimes") and seeds an
    independent stream, so adding DIMES agents never perturbs the PlanetLab
    set. PlanetLab-like VPs prefer transit/multi-PoP ASes (universities and
    research networks are well connected); DIMES-like VPs are uniform over
    edge prefixes.
    """
    if count <= 0:
        raise MeasurementError("vantage point count must be positive")
    exclude = exclude_prefixes or set()
    rng = derive_rng(seed, f"vantage.{kind}")
    candidates = [
        info for info in topo.prefixes.values() if info.prefix.index not in exclude
    ]
    if not candidates:
        raise MeasurementError("no candidate prefixes for vantage points")
    if kind == "planetlab":
        # Weight toward ASes with more PoPs (well-connected institutions).
        weights = np.array(
            [len(topo.ases[info.origin_asn].pop_ids) for info in candidates],
            dtype=float,
        )
    else:
        weights = np.ones(len(candidates))
    weights /= weights.sum()

    chosen: list[VantagePoint] = []
    used_ases: set[int] = set()
    order = rng.choice(len(candidates), size=len(candidates), replace=False, p=weights)
    # First pass: one VP per AS; second pass fills up if we run out of ASes.
    for pass_allow_repeat in (False, True):
        for i in order:
            if len(chosen) >= count:
                break
            info = candidates[int(i)]
            if not pass_allow_repeat and info.origin_asn in used_ases:
                continue
            if any(vp.prefix_index == info.prefix.index for vp in chosen):
                continue
            host_ip = random_ip_in_prefix(info.prefix, rng)
            chosen.append(
                VantagePoint(
                    name=f"{kind}-{len(chosen):03d}",
                    host_ip=host_ip,
                    prefix_index=info.prefix.index,
                    asn=info.origin_asn,
                )
            )
            used_ases.add(info.origin_asn)
        if len(chosen) >= count:
            break
    if len(chosen) < count:
        raise MeasurementError(
            f"only {len(chosen)} prefixes available for {count} vantage points"
        )
    return chosen


def probe_targets(
    topo: Topology,
    per_vp: int | None = None,
    seed: int = 0,
) -> list[int]:
    """The prefix indices a vantage point probes (all, or a random sample).

    The paper probes one destination in each of 140K prefixes from every
    PlanetLab node; with our smaller synthetic prefix table we default to
    probing all prefixes, and DIMES-like agents sample ``per_vp`` of them.
    """
    all_prefixes = sorted(info.prefix.index for info in topo.prefixes.values())
    if per_vp is None or per_vp >= len(all_prefixes):
        return all_prefixes
    rng = derive_rng(seed, "vantage.targets")
    picked = rng.choice(all_prefixes, size=per_vp, replace=False)
    return sorted(int(p) for p in picked)
