"""Traceroute simulation.

A traceroute from a vantage host to a destination IP walks the ground-truth
forward PoP path and reports, per hop, the ingress interface of the PoP and
a round-trip time. Crucially, each hop's RTT is *forward latency to the hop
plus the latency of that hop's own reverse path back to the source* — the
same asymmetry that makes real link-latency inference hard (Section 3,
[28]) — plus multiplicative and additive measurement noise.

Hops can be anonymous (no response) and probes can be lost on lossy links;
a traceroute that loses its probe at the destination still reports the
intermediate hops, exactly like real incomplete traceroutes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError, NoRouteError, RoutingError
from repro.measurement.vantage import VantagePoint
from repro.routing.forwarding import ForwardingEngine
from repro.topology.model import Topology
from repro.util.ids import PrefixId, prefix_of_ip


@dataclass(frozen=True, slots=True)
class TracerouteHop:
    """One hop: interface IP (None if anonymous) and measured RTT in ms."""

    ip: int | None
    rtt_ms: float


@dataclass(frozen=True, slots=True)
class Traceroute:
    """A completed traceroute measurement."""

    src_ip: int
    src_prefix_index: int
    dst_ip: int
    dst_prefix_index: int
    hops: tuple[TracerouteHop, ...]
    reached: bool
    day: int = 0

    @property
    def responsive_ips(self) -> list[int]:
        return [hop.ip for hop in self.hops if hop.ip is not None]


@dataclass
class TracerouteNoise:
    """Measurement-noise knobs for the simulator."""

    rtt_multiplicative_sigma: float = 0.01
    rtt_additive_ms: float = 0.15
    anonymous_hop_prob: float = 0.03
    probe_giveup_prob: float = 0.005


class TracerouteSimulator:
    """Issues simulated traceroutes over one topology snapshot."""

    def __init__(
        self,
        topo: Topology,
        engine: ForwardingEngine,
        rng: np.random.Generator,
        noise: TracerouteNoise | None = None,
        day: int = 0,
    ) -> None:
        self.topo = topo
        self.engine = engine
        self.rng = rng
        self.noise = noise or TracerouteNoise()
        self.day = day
        # Reverse-latency cache: (pop, src_prefix) -> one-way latency ms.
        self._reverse_cache: dict[tuple[int, int], float | None] = {}

    def _reverse_latency(self, pop: int, src_prefix_index: int) -> float | None:
        key = (pop, src_prefix_index)
        if key not in self._reverse_cache:
            try:
                path = self.engine.pop_path_from_pop(pop, src_prefix_index)
                self._reverse_cache[key] = path.latency_ms
            except (NoRouteError, RoutingError):
                self._reverse_cache[key] = None
        return self._reverse_cache[key]

    def _noisy_rtt(self, true_rtt: float) -> float:
        n = self.noise
        scale = float(np.exp(self.rng.normal(0.0, n.rtt_multiplicative_sigma)))
        return max(0.05, true_rtt * scale + float(self.rng.exponential(n.rtt_additive_ms)))

    def trace(self, vp: VantagePoint, dst_ip: int) -> Traceroute:
        """Simulate one traceroute from ``vp`` to ``dst_ip``."""
        dst_prefix = prefix_of_ip(dst_ip)
        if dst_prefix not in self.topo.prefixes:
            raise MeasurementError(f"destination {dst_ip} not in any known prefix")
        src_info = self.topo.prefixes[PrefixId(vp.prefix_index)]
        try:
            path = self.engine.pop_path(vp.prefix_index, dst_prefix.index)
        except (NoRouteError, RoutingError):
            return Traceroute(
                src_ip=vp.host_ip,
                src_prefix_index=vp.prefix_index,
                dst_ip=dst_ip,
                dst_prefix_index=dst_prefix.index,
                hops=(),
                reached=False,
                day=self.day,
            )

        hops: list[TracerouteHop] = []
        forward_latency = src_info.access_latency_ms
        reached = True
        pops = path.pops
        for i, pop in enumerate(pops):
            if i > 0:
                link = self.topo.links[(pops[i - 1], pop)]
                forward_latency += link.latency_ms
                # A very lossy link can swallow all retries for this hop.
                if self.rng.random() < link.loss_rate**3:
                    hops.append(TracerouteHop(ip=None, rtt_ms=0.0))
                    continue
            if self.rng.random() < self.noise.probe_giveup_prob:
                reached = False
                break
            if self.rng.random() < self.noise.anonymous_hop_prob:
                hops.append(TracerouteHop(ip=None, rtt_ms=0.0))
                continue
            reverse = self._reverse_latency(pop, vp.prefix_index)
            if reverse is None:
                hops.append(TracerouteHop(ip=None, rtt_ms=0.0))
                continue
            if i == 0:
                iface_ip = self.topo.loopback_ip(pop)
            else:
                iface_ip = self.topo.ingress_interface_ip(pops[i - 1], pop)
            true_rtt = forward_latency + reverse + src_info.access_latency_ms
            hops.append(TracerouteHop(ip=iface_ip, rtt_ms=self._noisy_rtt(true_rtt)))

        # Destination host hop (replies from inside the prefix).
        if reached:
            dst_info = self.topo.prefixes[dst_prefix]
            if self.rng.random() < dst_info.access_loss:
                reached = False
            else:
                true_rtt = (
                    forward_latency
                    + dst_info.access_latency_ms
                    + path_reverse_latency(self, dst_prefix.index, vp.prefix_index)
                    + src_info.access_latency_ms
                )
                hops.append(TracerouteHop(ip=dst_ip, rtt_ms=self._noisy_rtt(true_rtt)))

        return Traceroute(
            src_ip=vp.host_ip,
            src_prefix_index=vp.prefix_index,
            dst_ip=dst_ip,
            dst_prefix_index=dst_prefix.index,
            hops=tuple(hops),
            reached=reached,
            day=self.day,
        )

    def trace_to_prefix(self, vp: VantagePoint, prefix_index: int) -> Traceroute:
        """Traceroute to a random-but-deterministic host in ``prefix_index``."""
        base = PrefixId(prefix_index).base_ip
        return self.trace(vp, base + 1)

    def campaign(
        self, vps: list[VantagePoint], prefix_indices: list[int]
    ) -> list[Traceroute]:
        """All-pairs campaign: every VP traceroutes every target prefix."""
        results = []
        for vp in vps:
            for prefix_index in prefix_indices:
                if prefix_index == vp.prefix_index:
                    continue
                results.append(self.trace_to_prefix(vp, prefix_index))
        return results


def path_reverse_latency(
    sim: TracerouteSimulator, dst_prefix_index: int, src_prefix_index: int
) -> float:
    """One-way reverse latency from the destination prefix back to the source."""
    dst_info = sim.topo.prefixes[PrefixId(dst_prefix_index)]
    reverse = sim._reverse_latency(dst_info.attachment_pop, src_prefix_index)
    if reverse is None:
        return 0.0
    return reverse
