"""Link latency inference from traceroute RTT differences.

The naive per-link latency estimate, ``(rtt[k+1] - rtt[k]) / 2``, is biased
whenever the reverse paths from hop k and hop k+1 differ — the dominant
error source the paper's companion work [28] addresses by preferring
measurements taken over *symmetric* traversals. We implement that spirit:

* every traceroute contributes a difference sample per consecutive
  cluster pair;
* per link, samples from many (vantage point, destination) contexts are
  pooled; contexts where the reverse paths agree produce consistent
  samples, asymmetric contexts produce outliers;
* the estimator takes the *mode-like* robust center (median of the
  tightest half of samples, a.k.a. a shorth), which latches onto the
  consistent symmetric subpopulation when one exists.

Negative differences (reverse-path shrinkage) are kept during aggregation
and only clipped at the end, so they still help identify the center.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Latency floor for any estimated link (ms).
MIN_LINK_LATENCY_MS = 0.05


@dataclass
class LinkLatencyEstimator:
    """Accumulates RTT-difference samples and produces per-link estimates."""

    samples: dict[tuple[int, int], list[float]] = field(default_factory=dict)

    def add_traceroute_samples(self, cluster_rtts: list[tuple[int, float]]) -> None:
        """Add difference samples from one traceroute's cluster path.

        ``cluster_rtts`` is the (cluster, rtt) list produced by
        :meth:`repro.measurement.clustering.ClusterMap.cluster_path_with_rtts`.
        """
        for (c1, r1), (c2, r2) in zip(cluster_rtts, cluster_rtts[1:]):
            if c1 == c2:
                continue
            self.samples.setdefault((c1, c2), []).append((r2 - r1) / 2.0)

    def n_samples(self, link: tuple[int, int]) -> int:
        return len(self.samples.get(link, []))

    @staticmethod
    def _shorth(values: np.ndarray) -> float:
        """Median of the shortest half-interval: robust to asymmetry outliers."""
        values = np.sort(values)
        n = values.size
        if n == 1:
            return float(values[0])
        half = max(2, (n + 1) // 2)
        if half >= n:
            return float(np.median(values))
        widths = values[half - 1 :] - values[: n - half + 1]
        start = int(np.argmin(widths))
        return float(np.median(values[start : start + half]))

    def estimate(self, link: tuple[int, int]) -> float | None:
        """Latency estimate for one directed cluster link (ms), or None."""
        values = self.samples.get(link)
        if not values:
            return None
        center = self._shorth(np.asarray(values, dtype=float))
        return max(MIN_LINK_LATENCY_MS, center)

    def estimates(self, min_samples: int = 1) -> dict[tuple[int, int], float]:
        """All link estimates with at least ``min_samples`` samples.

        Estimates for the two directions of a link are reconciled by
        averaging when both are available (propagation is symmetric; the
        probing noise is not).
        """
        raw: dict[tuple[int, int], float] = {}
        for link, values in self.samples.items():
            if len(values) >= min_samples:
                est = self.estimate(link)
                if est is not None:
                    raw[link] = est
        out: dict[tuple[int, int], float] = {}
        for (a, b), value in raw.items():
            back = raw.get((b, a))
            if back is not None:
                merged = max(MIN_LINK_LATENCY_MS, (value + back) / 2.0)
                out[(a, b)] = merged
            else:
                out[(a, b)] = value
        return out
