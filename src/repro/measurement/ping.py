"""Latency and loss probing.

Loss-rate measurement follows the paper's methodology (Section 6.2.2):
100 ICMP probes, 2 seconds apart, to a destination; the observed loss rate
is the fraction of probes without a response. We sample that binomially
from the ground-truth round-trip loss, so estimates carry exactly the
n=100 sampling error a real campaign has.

Per-link loss is measured the iPlane way: probe the near and the far
endpoint of the link over the same route and attribute the extra loss to
the link (with both endpoint measurements binomially noisy).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import MeasurementError, NoRouteError, RoutingError
from repro.routing.forwarding import ForwardingEngine
from repro.topology.model import Topology
from repro.util.ids import PrefixId


@dataclass(frozen=True, slots=True)
class LossMeasurement:
    """Observed loss toward a destination."""

    src_prefix_index: int
    dst_prefix_index: int
    n_probes: int
    observed_loss: float
    true_loss: float


class PingProber:
    """Issues RTT and loss probes over one topology snapshot."""

    def __init__(
        self,
        topo: Topology,
        engine: ForwardingEngine,
        rng: np.random.Generator,
        n_probes: int = 100,
    ) -> None:
        if n_probes <= 0:
            raise MeasurementError("n_probes must be positive")
        self.topo = topo
        self.engine = engine
        self.rng = rng
        self.n_probes = n_probes

    def measure_rtt(self, src_prefix_index: int, dst_prefix_index: int) -> float:
        """Minimum-of-probes RTT estimate in ms (small positive noise only)."""
        e2e = self.engine.end_to_end(src_prefix_index, dst_prefix_index)
        # min over several probes approaches true propagation RTT from above
        extra = float(self.rng.exponential(0.2))
        return e2e.rtt_ms + extra

    def measure_loss(
        self, src_prefix_index: int, dst_prefix_index: int, n_probes: int | None = None
    ) -> LossMeasurement:
        """Probe a destination and report the observed loss fraction."""
        n = n_probes or self.n_probes
        try:
            e2e = self.engine.end_to_end(src_prefix_index, dst_prefix_index)
            true_loss = e2e.loss_round_trip
        except (NoRouteError, RoutingError):
            true_loss = 1.0
        lost = int(self.rng.binomial(n, true_loss))
        return LossMeasurement(
            src_prefix_index=src_prefix_index,
            dst_prefix_index=dst_prefix_index,
            n_probes=n,
            observed_loss=lost / n,
            true_loss=true_loss,
        )

    # -- per-link loss (iPlane-style differencing) -------------------------

    def _upstream_loss(
        self, src_prefix_index: int, pops: tuple[int, ...], upto: int
    ) -> float:
        """Round-trip loss of probes to ``pops[upto]`` along a measured path."""
        src_info = self.topo.prefixes[PrefixId(src_prefix_index)]
        success = (1.0 - src_info.access_loss) ** 2
        for i in range(upto):
            link = self.topo.links.get((pops[i], pops[i + 1]))
            if link is not None:  # clustering noise can fabricate hops
                success *= 1.0 - link.loss_rate
        # Replies return over the hop's own reverse path; approximate its
        # loss with the forward loss of that reverse route.
        try:
            reverse = self.engine.pop_path_from_pop(pops[upto], src_prefix_index)
            success *= 1.0 - reverse.loss
        except (NoRouteError, RoutingError):
            pass
        return 1.0 - success

    def measure_link_loss(
        self,
        src_prefix_index: int,
        pops: tuple[int, ...],
        link_position: int,
        n_probes: int | None = None,
    ) -> float | None:
        """Estimate the loss of ``pops[link_position] -> pops[link_position+1]``.

        Probes the near endpoint and the far endpoint ``n`` times each and
        differences the observed loss rates. Returns None when the near
        endpoint lost every probe (no estimate possible).
        """
        if not 0 <= link_position < len(pops) - 1:
            raise MeasurementError("link_position out of range")
        n = n_probes or self.n_probes
        p_near = self._upstream_loss(src_prefix_index, pops, link_position)
        link = self.topo.links[(pops[link_position], pops[link_position + 1])]
        p_far = 1.0 - (1.0 - p_near) * (1.0 - link.loss_rate)
        obs_near = int(self.rng.binomial(n, p_near)) / n
        obs_far = int(self.rng.binomial(n, p_far)) / n
        if obs_near >= 1.0:
            return None
        est = 1.0 - (1.0 - obs_far) / (1.0 - obs_near)
        return float(min(1.0, max(0.0, est)))

    def measure_cluster_link_loss(
        self,
        src_prefix_index: int,
        cluster_path: tuple[int, ...],
        link_position: int,
        cluster_pop: dict[int, int],
        n_probes: int | None = None,
    ) -> float | None:
        """Loss of a *cluster-level* link, via near/far endpoint differencing.

        ``cluster_pop`` maps atlas clusters back to ground-truth PoPs (see
        :func:`repro.measurement.clustering.cluster_pop_map`). Clusters that
        don't resolve, or consecutive clusters without a real link between
        their PoPs (clustering noise), yield None.
        """
        pops: list[int] = []
        for cluster in cluster_path:
            pop = cluster_pop.get(cluster)
            if pop is None:
                return None
            if not pops or pops[-1] != pop:
                pops.append(pop)
        if link_position >= len(cluster_path) - 1:
            return None
        near = cluster_pop.get(cluster_path[link_position])
        far = cluster_pop.get(cluster_path[link_position + 1])
        if near is None or far is None or near == far:
            return None
        try:
            pos = pops.index(near)
        except ValueError:
            return None
        if pos + 1 >= len(pops) or pops[pos + 1] != far:
            return None
        if (pops[pos], pops[pos + 1]) not in self.topo.links:
            return None
        return self.measure_link_loss(src_prefix_index, tuple(pops), pos, n_probes)
