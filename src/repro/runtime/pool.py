"""Shared predictor pool, keyed by atlas version and client identity.

The seed design gave every :class:`~repro.client.library.INanoClient`,
remote agent and server path its own ``INanoPredictor`` — and therefore
its own compiled graph and LRU search cache. The pool inverts that: a
predictor is resolved per ``(config, client)`` key against the owning
:class:`~repro.runtime.runtime.AtlasRuntime`, so

* all callers without a private FROM_SRC plane share **one** predictor
  (one compiled graph, one search cache) per config;
* a client with its own measured FROM_SRC plane gets a dedicated entry
  whose primary graph is the incrementally merged view — but still
  shares the runtime's closed fallback graph;
* after a daily update, entries refresh in place: the graphs were
  patched under the predictor, the atlas mutated in place, and the
  bumped graph versions retire stale search-cache keys without any
  rebuild;
* the update hook (:meth:`PredictorPool.after_update`) carries cached
  per-destination searches *across* the version bump: entries the patch
  provably could not affect migrate to the new version (warm-start
  repair, :mod:`repro.runtime.warmstart`), and the hottest dirty
  destinations re-run through the vectorized search kernel immediately
  (pool prewarming), so the first post-delta query hits a warm cache.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.predictor import INanoPredictor, PredictorConfig
from repro.runtime import warmstart


@dataclass
class _PoolEntry:
    predictor: INanoPredictor
    version: int
    rev: int


#: default per-(predictor, graph) cap on post-delta prewarm searches
_PREWARM_MAX = 4

#: per-entry cap on remembered hot destinations (warm-start records)
_WARM_RECORDS_MAX = 32


class PredictorPool:
    """Resolves shared predictors for one :class:`AtlasRuntime`."""

    def __init__(self, runtime) -> None:
        self._runtime = runtime
        self._entries: dict[tuple, _PoolEntry] = {}
        #: per-entry warm-start records: recently hot ``(graph name,
        #: destination, provider gate)`` searches, recency-ordered.
        #: They outlive the LRU search cache, so a destination whose
        #: cached search aged out (or went dirty past the prewarm
        #: budget on a recompile day) is still re-seeded by the next
        #: update's prewarm pass. Dropped with the entry on release —
        #: a released client must not pin prewarm work.
        self._warm: dict[tuple, OrderedDict] = {}
        self.hits = 0
        self.refreshes = 0
        #: hottest (most recently used) dirty destinations re-searched
        #: per predictor per patched graph after each update; 0 disables
        self.prewarm_max = _PREWARM_MAX
        #: repair-class counts of the most recent :meth:`after_update`
        #: (what the serving layer reports per request as the backend's
        #: current repair posture)
        self.last_repair = {
            "reused": 0,
            "repaired": 0,
            "replayed": 0,
            "dirty": 0,
            "prewarmed": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def predictor(
        self,
        config: PredictorConfig | None = None,
        *,
        client_key: object = None,
        from_src_links: dict | None = None,
        from_src_prefixes: set[int] | None = None,
        client_cluster_as: dict[int, int] | None = None,
        from_src_rev: int = 0,
    ) -> INanoPredictor:
        """The shared predictor for ``config`` (and, if ``client_key``
        names a client with FROM_SRC measurements, that client's merged
        view). Never compiles when a fresh entry exists.
        """
        config = config or PredictorConfig.inano()
        runtime = self._runtime
        key = (config, client_key)
        entry = self._entries.get(key)
        if (
            entry is not None
            and entry.version == runtime.version
            and entry.rev == from_src_rev
        ):
            self.hits += 1
            return entry.predictor
        if config.use_from_src and from_src_links:
            primary = runtime.merged_graph(
                client_key, from_src_links, client_cluster_as, from_src_rev
            )
        elif config.use_from_src:
            primary = runtime.directed_graph()
        else:
            primary = runtime.closed_graph()
        if entry is None:
            entry = _PoolEntry(
                predictor=INanoPredictor(
                    runtime.atlas,
                    config,
                    from_src_prefixes=from_src_prefixes,
                    client_cluster_as=client_cluster_as,
                    primary_graph=primary,
                    fallback_factory=runtime.closed_graph,
                    # pooled predictors ride the runtime's delta chain:
                    # record replay journals so value-only days repair
                    # touched cached searches in place
                    record_journal=True,
                ),
                version=runtime.version,
                rev=from_src_rev,
            )
            self._entries[key] = entry
        else:
            # Refresh in place: graph objects were patched/adopted under
            # us and the atlas mutated in place, so only the bindings
            # and freshness markers need updating.
            self.refreshes += 1
            pred = entry.predictor
            pred.graph = primary
            pred.atlas = runtime.atlas
            pred.from_src_prefixes = from_src_prefixes
            entry.version = runtime.version
            entry.rev = from_src_rev
        return entry.predictor

    def after_update(self, updates: list[tuple], delta) -> dict:
        """Carry pooled search caches across one applied delta.

        ``updates`` holds ``(name, graph, old_version, new_version,
        touch)`` per materialized base graph (``touch`` None when that
        graph was recompiled). For every pooled predictor: migrate the
        cached searches the patch provably could not affect
        (reusable/repairable), then re-run the hottest dirty
        destinations through the kernel so the first post-delta query
        is a cache hit. Client-merged primary graphs re-derive lazily
        and are not repaired; their shared closed fallback is.
        """
        stats = {
            "reused": 0,
            "repaired": 0,
            "replayed": 0,
            "dirty": 0,
            "prewarmed": 0,
        }
        if not self._entries:
            self.last_repair = dict(stats)
            return stats
        churn_ctx: dict[str, tuple] = {}
        graphs_by_old_version = {
            old_version: graph
            for _, graph, old_version, new_version, _ in updates
            if old_version != new_version
        }
        name_of_version = {
            old_version: name
            for name, _, old_version, new_version, _ in updates
            if old_version != new_version
        }
        graph_of_name = {name: graph for name, graph, _, _, _ in updates}
        for pool_key, entry in self._entries.items():
            predictor = entry.predictor
            self._record_warm(pool_key, predictor, name_of_version)
            for name, graph, old_version, new_version, touch in updates:
                if old_version == new_version:
                    continue
                if touch is not None and delta is not None:
                    churn = churn_ctx.get(name)
                    if churn is None:
                        churn = warmstart.tuple_churn_edges(graph, delta)
                        churn_ctx[name] = churn
                else:
                    churn = ()
                repaired = warmstart.repair_cache(
                    predictor, graph, old_version, new_version, touch, churn
                )
                for key in ("reused", "repaired", "replayed", "dirty"):
                    stats[key] += repaired[key]
            ran = warmstart.prewarm(
                predictor, graphs_by_old_version, self.prewarm_max
            )
            ran += self._prewarm_from_records(
                pool_key, predictor, graph_of_name, self.prewarm_max - ran
            )
            stats["prewarmed"] += ran
        self.last_repair = dict(stats)
        return stats

    def kernel_stats(self) -> dict:
        """Pooled search-kernel counters, summed over every entry:
        ``searches`` (cold kernel runs), ``hits`` (search-cache hits)
        and ``search_us`` (cumulative cold-search microseconds). The
        serving layer samples this before/after a request to attribute
        kernel work per query."""
        totals = {"searches": 0, "hits": 0, "search_us": 0.0}
        for entry in self._entries.values():
            counters = entry.predictor.kernel_stats
            totals["searches"] += counters["searches"]
            totals["hits"] += counters["hits"]
            totals["search_us"] += counters["search_us"]
        return totals

    def export_metrics(self, registry, prefix: str = "runtime.pool") -> None:
        """Publish the pool's counters into an obs
        :class:`~repro.obs.registry.MetricsRegistry` as ``prefix.*``
        gauges — the shard worker calls this on every stats export so
        the fleet snapshot carries pool/kernel/repair state without a
        second bookkeeping path."""
        registry.get_gauge(f"{prefix}.entries").set(len(self._entries))
        registry.get_gauge(f"{prefix}.hits").set(self.hits)
        registry.get_gauge(f"{prefix}.refreshes").set(self.refreshes)
        registry.get_gauge(f"{prefix}.prewarm_max").set(self.prewarm_max)
        for key, value in self.kernel_stats().items():
            registry.get_gauge(f"{prefix}.kernel.{key}").set(value)
        for key, value in self.last_repair.items():
            registry.get_gauge(f"{prefix}.repair.{key}").set(value)

    def _record_warm(
        self, pool_key: tuple, predictor, name_of_version: dict
    ) -> None:
        """Note the entry's hot destinations on the graphs this update
        touched, before repair/prewarm churn the LRU. Cache iteration is
        oldest-first, so the hottest record lands last."""
        records = self._warm.setdefault(pool_key, OrderedDict())
        for version, dst, providers in predictor._search_cache:
            name = name_of_version.get(version)
            if name is not None:
                rec = (name, dst, providers)
                records[rec] = None
                records.move_to_end(rec)
        while len(records) > _WARM_RECORDS_MAX:
            records.popitem(last=False)

    def _prewarm_from_records(
        self, pool_key: tuple, predictor, graph_of_name: dict, budget: int
    ) -> int:
        """Top up the prewarm budget from warm-start records: hot
        destinations whose cached search aged out of the LRU before
        this update (so the stale-key prewarmer can't see them)."""
        records = self._warm.get(pool_key)
        if not records or budget <= 0:
            return 0
        cache = predictor._search_cache
        ran = 0
        for name, dst, providers in reversed(records):  # hottest first
            if ran >= budget:
                break
            graph = graph_of_name.get(name)
            if graph is None or (graph.version, dst, providers) in cache:
                continue
            predictor.search_for(graph, dst, providers)
            ran += 1
        return ran

    def release(self, client_key: object) -> None:
        """Drop every entry belonging to one client — including its
        warm-start records, so a released client's destinations stop
        drawing prewarm searches on every subsequent update — and free
        each dropped predictor's search-state arrays, journals, and
        pooled state bundles (the state-pool lifecycle contract: a
        released client must not pin per-search memory)."""
        for key in [k for k in self._entries if k[1] == client_key]:
            entry = self._entries.pop(key)
            entry.predictor.release_search_state()
        for key in [k for k in self._warm if k[1] == client_key]:
            del self._warm[key]
