"""The shared atlas runtime (delta-aware compiled core + predictor pool).

``repro.runtime`` is the subsystem between the atlas layer and the
query layer: an :class:`AtlasRuntime` owns one compiled query core per
atlas lineage, applies daily deltas to the CSR arrays **in place**
(bit-for-bit equal to a full recompile), incrementally merges client
FROM_SRC planes onto the shared base, carries cached per-destination
searches across patches (warm-start repair + pool prewarming, see
:mod:`repro.runtime.warmstart`), and hands out predictors through a
:class:`PredictorPool` so server, remote agents and co-located clients
share compiled graphs and search caches instead of each rebuilding
their own.
"""

from repro.runtime.patch import (
    CompiledGraphPatcher,
    PatchConsistencyError,
    PatchTouch,
)
from repro.runtime.pool import PredictorPool
from repro.runtime.runtime import AtlasRuntime, RuntimeUpdateReport

__all__ = [
    "AtlasRuntime",
    "CompiledGraphPatcher",
    "PatchConsistencyError",
    "PatchTouch",
    "PredictorPool",
    "RuntimeUpdateReport",
]
