"""Warm-start repair of per-destination search caches across deltas.

Before this module, a patched graph's version bump silently retired
every cached per-destination search: the first post-delta query paid a
full cold search even when the delta could not possibly have changed
its outcome. The repair layer instead classifies each cached search
against the patch's touched-edge export
(:class:`~repro.runtime.patch.PatchTouch`):

* **reusable** — no touched edge is *relevant* to the search (below);
  the entry migrates to the new graph version unchanged (the memoized
  path cache is flushed only if a loss-changed edge sits on a cached
  parent chain).
* **repairable** — a structural splice moved edge ids but no touched
  edge is relevant and node ids survived (no renumber); the cached
  parent edge ids are remapped through the patch's monotonic
  ``old2new`` map, state arrays extend over appended nodes (provably
  unreached), and the entry migrates.
* **replayed** — a value-only patch touched a relevant edge, but the
  cached search carries a replay journal: the bucket engine re-runs
  from the earliest bucket any touched edge could have been read in
  (:func:`repro.core.search.repair_kernel` — bounded re-relaxation),
  producing states bit-for-bit equal to a cold re-search on the
  patched graph at a fraction of the cost.
* **dirty** — some touched edge is relevant and replay doesn't apply
  (no journal, structural splice, renumbering, or an outright
  recompile); the entry is left under its stale version (the pool's
  prewarmer re-runs the hottest ones through the vectorized kernel
  immediately, everything else ages out of the LRU).

Relevance is the exact criterion the kernel's equivalence argument
provides: a changed/added/removed edge can alter a finished search only
if its settled endpoint was reached **and** its candidate ``(phase,
hops)`` — composed from that endpoint's final state — does not
lexicographically exceed the target's final key. Candidates above the
target's key can at most improve it transiently, and every transient is
erased before the target settles; candidates from unreached endpoints
are never composed at all. Edges whose *validity* may flip (added
edges, three-tuple churn under ``use_three_tuples``) additionally count
as relevant when their target is unreached, since they may newly reach
it. Daily deltas never carry preference/provider/degree changes (those
are monthly, and monthly refreshes recompile), so no other input of a
search can drift under a patch.
"""

from __future__ import annotations

import numpy as np

from repro.core.compiled import OP_INTER, OP_INTRA

__all__ = ["repair_cache", "prewarm", "tuple_churn_edges"]

#: classification is a scalar walk over the touched edges per cached
#: entry; a delta touching more than this many edges (not the paper's
#: ~1MB daily churn — more like a content swap) marks everything dirty
#: outright instead of burning the walk on entries that are doomed
_REPAIR_MAX_TOUCHED = 1024


def tuple_churn_edges(graph, delta) -> tuple | None:
    """Edges whose three-tuple check could flip under ``delta``.

    Returns ``((edge_id, required_next_asn), ...)``: the graph's
    crossing edges whose ``(src_asn, dst_asn)`` matches a churned tuple
    ``(a, b, c)`` with ``b != c`` — the check only consults the tuple
    when the settled endpoint's next ASN equals ``c`` (and differs from
    ``b``), which :func:`repair_cache` evaluates per cached search.
    Returns None (meaning: assume everything relevant) when the churn is
    far beyond a daily delta's — the edge scan would cost more than the
    cold searches it could save.
    """
    churned = delta.tuples_added | delta.tuples_removed
    if not churned:
        return ()
    if len(churned) > _REPAIR_MAX_TOUCHED:
        return None
    pairs: dict[tuple[int, int], set[int]] = {}
    for a, b, c in churned:
        if b != c:
            pairs.setdefault((a, b), set()).add(c)
    if not pairs:
        return ()
    sa = np.array(graph.e_src_asn, dtype=np.int64)
    da = np.array(graph.e_dst_asn, dtype=np.int64)
    radix = int(max(sa.max(), da.max())) + 1 if len(sa) else 1
    keys = np.array(
        sorted(
            a * radix + b
            for (a, b) in pairs
            if 0 <= a < radix and 0 <= b < radix
        ),
        dtype=np.int64,
    )
    if not len(keys):
        return ()
    packed = sa * radix + da
    hit = np.flatnonzero(np.isin(packed, keys))
    out = []
    for eid in hit.tolist():
        for c in pairs[(graph.e_src_asn[eid], graph.e_dst_asn[eid])]:
            out.append((eid, c))
    return tuple(out)


def _key2_relevant(pu, eu, op, e_ph_val, pv, ev) -> bool:
    """True when a candidate composed from a reached endpoint state
    ``(pu, eu)`` could touch a target whose final key is ``(pv, ev)``."""
    np_ = e_ph_val if op == OP_INTER else pu
    ne = eu if op == OP_INTRA else eu + 1
    return not (np_ > pv or (np_ == pv and ne > ev))


def _classify(states, graph, prepared, churn, config) -> bool:
    """True when the cached search provably survives the patch.

    ``prepared`` holds the patch's touched-edge arrays pre-converted to
    python lists once per patch (not per cached entry).
    """
    lat_changed, added, rs, rd, ro, rp = prepared
    phase = states.phase
    eff = states.eff
    nxt = states.nxt
    n_states = len(phase)
    e_src = graph.e_src
    e_dst = graph.e_dst
    e_op = graph.e_op
    e_ph = graph.e_phase

    def reached(node: int) -> int:
        return phase[node] if node < n_states else 0

    # latency rewrites: relevant only between two reached endpoints
    for eid in lat_changed:
        u = e_dst[eid]
        pu = reached(u)
        if not pu:
            continue
        v = e_src[eid]
        pv = reached(v)
        if pv and _key2_relevant(
            pu, eff[u], e_op[eid], e_ph[eid], pv, eff[v]
        ):
            return False
    # added edges: may also newly reach an unreached target
    for eid in added:
        u = e_dst[eid]
        pu = reached(u)
        if not pu:
            continue
        v = e_src[eid]
        pv = reached(v)
        if not pv or _key2_relevant(
            pu, eff[u], e_op[eid], e_ph[eid], pv, eff[v]
        ):
            return False
    # removed edges (old numbering, valid for the cached states): a
    # never-valid candidate (unreached target) cannot have mattered
    if rs:
        for i in range(len(rs)):
            u = rd[i]
            pu = reached(u)
            if not pu:
                continue
            v = rs[i]
            pv = reached(v)
            if pv and _key2_relevant(
                pu, eff[u], ro[i], rp[i], pv, eff[v]
            ):
                return False
    # three-tuple churn: validity flips gated by the settled endpoint's
    # next ASN and the tuple-degree threshold
    if churn and config.use_three_tuples:
        dget = graph.atlas.as_degrees.get
        thresh = config.tuple_degree_threshold
        e_da = graph.e_dst_asn
        for eid, c_req in churn:
            u = e_dst[eid]
            pu = reached(u)
            if not pu or nxt[u] != c_req:
                continue
            if dget(e_da[eid], 0) <= thresh:
                continue
            v = e_src[eid]
            pv = reached(v)
            if not pv or _key2_relevant(
                pu, eff[u], e_op[eid], e_ph[eid], pv, eff[v]
            ):
                return False
    return True


def _really_changed_lat(touch) -> np.ndarray:
    """Latency-rewritten edge ids whose value actually moved.

    The patcher rewrites whole spans per changed link; links whose new
    latency equals the old produce no-op writes that neither relevance
    nor replay needs to consider."""
    ids = touch.lat_changed
    if len(touch.lat_old) == len(ids) and len(ids):
        return ids[touch.lat_old != touch.lat_new]
    return ids


def _replay_touched_eids(states, graph, lat_eids, churn, config) -> list:
    """The replay frontier's seed edges for one cached search: the
    genuinely changed latencies plus the tuple-churn edges whose
    validity flip is live for this search (settled next ASN matches the
    churned tuple and the degree gate passes)."""
    eids = list(lat_eids)
    if churn and config.use_three_tuples:
        dget = graph.atlas.as_degrees.get
        thresh = config.tuple_degree_threshold
        e_dst = graph.e_dst
        e_da = graph.e_dst_asn
        phase = states.phase
        nxt = states.nxt
        n_states = len(phase)
        for eid, c_req in churn:
            u = e_dst[eid]
            if u >= n_states or not phase[u] or nxt[u] != c_req:
                continue
            if dget(e_da[eid], 0) > thresh:
                eids.append(eid)
    return eids


def _replay(predictor, graph, states, providers, lat_eids, churn):
    """Bounded re-relaxation of one journaled cached search; returns
    the repaired states object or None (caller falls back to dirty)."""
    from repro.core import search as _search
    from repro.core.predictor import _CompiledStates

    config = predictor.config
    eids = _replay_touched_eids(states, graph, lat_eids, churn, config)
    if not eids:
        return None
    pool = graph.search_pool()
    result = _search.repair_kernel(
        graph,
        graph.atlas,
        config,
        providers,
        states,
        eids,
        pool=pool,
        record=predictor.record_journal,
    )
    if result is None:
        return None
    phase, eff, exitc, parent, nxt, journal = result
    return _CompiledStates(
        states.root_id,
        phase,
        eff,
        exitc,
        parent,
        nxt,
        {},
        journal=journal,
        pool=pool,
    )


def repair_cache(
    predictor, graph, old_version: int, new_version: int, touch, churn
) -> dict:
    """Migrate every cached search of ``predictor`` keyed on
    ``old_version`` that provably survives the patch — and repair, via
    journal replay, the value-only-touched ones that don't; returns
    ``{"reused": n, "repaired": n, "replayed": n, "dirty": n}``."""
    counts = {"reused": 0, "repaired": 0, "replayed": 0, "dirty": 0}
    cache = predictor._search_cache
    stale = [key for key in cache if key[0] == old_version]
    if not stale:
        return counts
    if touch is None or touch.renumbered or churn is None:
        counts["dirty"] = len(stale)
        return counts
    lat_really = _really_changed_lat(touch)
    touched = (
        len(lat_really)
        + len(touch.added)
        + len(touch.removed_src)
        + len(churn)
    )
    if touched > _REPAIR_MAX_TOUCHED:
        counts["dirty"] = len(stale)
        return counts
    prepared = (
        lat_really.tolist(),
        touch.added.tolist(),
        touch.removed_src.tolist(),
        touch.removed_dst.tolist(),
        touch.removed_op.tolist(),
        touch.removed_ph.tolist(),
    )
    from repro.core.graph import DOWN, TO_DST

    config = predictor.config
    structural = touch.old2new is not None
    for key in stale:
        states = cache[key]
        if states.root_id is None:
            # destination absent: survives unless the patch could have
            # introduced its node
            if structural and graph.node_id(TO_DST, DOWN, key[1]) is not None:
                counts["dirty"] += 1
                continue
            ok = True
        else:
            ok = _classify(states, graph, prepared, churn, config)
        if not ok:
            replayed = (
                None
                if structural
                else _replay(
                    predictor, graph, states, key[2], prepared[0], churn
                )
            )
            if replayed is None:
                counts["dirty"] += 1
                continue
            del cache[key]
            cache[(new_version, key[1], key[2])] = replayed
            states.recycle()
            counts["replayed"] += 1
            continue
        if structural and states.root_id is not None:
            if not _remap_states(states, graph, touch):
                counts["dirty"] += 1
                continue
            counts["repaired"] += 1
        else:
            if states.paths and len(touch.loss_changed):
                # loss rewrites don't move states, but memoized paths
                # bake losses in: flush when one sits on a parent chain
                if np.isin(touch.loss_changed, states.parent_np()).any():
                    states.paths = {}
            counts["reused"] += 1
        del cache[key]
        cache[(new_version, key[1], key[2])] = states
    if counts["replayed"]:
        predictor._trim_journals()
    return counts


def _remap_states(states, graph, touch) -> bool:
    """Shift a cached search's edge ids through a structural splice."""
    pnp = np.asarray(states.parent_np())
    mask = pnp >= 0
    remapped = np.where(mask, touch.old2new[np.maximum(pnp, 0)], np.int64(-1))
    if (remapped[mask] < 0).any():
        # a cached parent edge was deleted — the relevance check should
        # have caught it (defensive)
        return False
    grow = graph.n_nodes - len(states.phase)
    if grow > 0:
        # appended nodes are provably unreached (any edge that could
        # reach them would have been a relevant added edge); the grown
        # arrays no longer match their pool's size, so drop the pool
        # ref — recycling would reject them anyway
        zi = np.zeros(grow, np.int64)
        mi = np.full(grow, -1, np.int64)
        states.phase = np.concatenate((np.asarray(states.phase), zi))
        states.eff = np.concatenate((np.asarray(states.eff), zi))
        states.exitc = np.concatenate(
            (np.asarray(states.exitc), np.zeros(grow, np.float64))
        )
        remapped = np.concatenate((remapped, mi))
        states.nxt = np.concatenate((np.asarray(states.nxt), mi))
        states.pool = None
    states.parent = remapped
    # edge ids (and latencies) moved under the recorded rows: the
    # replay journal is stale for any future value-only repair
    states.journal = None
    states.paths = {}
    return True


def prewarm(predictor, graphs_by_old_version: dict, limit: int) -> int:
    """Re-run the hottest still-stale searches through the kernel so the
    first post-delta query hits a warm cache; returns how many ran.

    ``graphs_by_old_version`` maps each patched graph's pre-patch
    version to the (now current) graph object. The budget is per
    predictor across all its graphs: the LRU's recency order decides
    which destinations count as hot, so a rarely-queried fallback plane
    cannot starve the primary's hot set.
    """
    if not graphs_by_old_version:
        return 0
    cache = predictor._search_cache
    stale = [key for key in cache if key[0] in graphs_by_old_version]
    ran = 0
    for key in reversed(stale):  # most recently used first
        # every stale key leaves the LRU here: the hottest re-run warm,
        # the rest are unreachable under their retired version and
        # would only crowd live entries toward eviction; their state
        # arrays recycle into the pool for the re-runs to reuse
        evicted = cache.pop(key)
        if hasattr(evicted, "recycle"):
            evicted.recycle()
        if ran < limit:
            predictor.search_for(
                graphs_by_old_version[key[0]], key[1], key[2]
            )
            ran += 1
    return ran
