"""The shared atlas runtime: one compiled query core per atlas lineage.

An :class:`AtlasRuntime` owns a (mutable) :class:`~repro.atlas.model.Atlas`
and every compiled graph derived from it:

* the **directed** graph (Section 4.3.1 planes, ``closed=False``) — the
  primary graph for ``use_from_src`` configs and the base that client
  FROM_SRC planes merge onto;
* the **closed** graph (Section 4.2, ``closed=True``) — primary for
  GRAPH-style configs and the shared lazy fallback for everything else;
* per-client **merged** views — the directed base plus one client's
  FROM_SRC traceroute plane, derived incrementally
  (:meth:`~repro.core.compiled.CompiledGraph.from_base_with_from_src`)
  rather than recompiled.

:meth:`AtlasRuntime.apply_delta` advances the whole lineage one day:
the atlas mutates in place (``apply_delta_inplace``), each materialized
base graph is patched in place by its
:class:`~repro.runtime.patch.CompiledGraphPatcher` (bit-for-bit equal
to a full recompile), merged views re-derive lazily, and every graph
draws a fresh version so version-keyed search caches retire stale
entries automatically. Monthly-refresh deltas (which replace the
classification datasets) recompile instead — the paper's own
daily-delta / monthly-refresh split.

Predictors are resolved through the runtime's
:class:`~repro.runtime.pool.PredictorPool`, so N co-located clients,
remote query agents, and the server-side query path all share one
compiled graph and one LRU search cache per (config, client) key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.atlas.delta import AtlasDelta, apply_delta_inplace
from repro.atlas.model import Atlas
from repro.core.compiled import CompiledGraph
from repro.core.versioning import next_graph_version
from repro.runtime.patch import (
    CompiledGraphPatcher,
    PatchConsistencyError,
    shared_delta_context,
)
from repro.runtime.pool import PredictorPool


@dataclass
class RuntimeUpdateReport:
    """What one :meth:`AtlasRuntime.apply_delta` did."""

    day: int
    mode: str  # "patch" | "recompile"
    #: per-graph patch stats (graph name -> stats dict)
    graphs: dict[str, dict] = field(default_factory=dict)
    #: pooled search-cache outcome: entries reused / repaired across
    #: the patch, left dirty, and prewarmed (see repro.runtime.warmstart)
    cache: dict[str, int] = field(default_factory=dict)


@dataclass
class _MergedView:
    graph: CompiledGraph
    rev: int
    version: int


class AtlasRuntime:
    """Owns the compiled query core for one atlas lineage.

    The runtime takes ownership of ``atlas`` and mutates it in place on
    updates — pass a private copy (e.g. a freshly decoded download), not
    a shared reference.
    """

    def __init__(self, atlas: Atlas) -> None:
        self.atlas = atlas
        #: bumped on every update; pool entries and PathInfo provenance
        #: key on it
        self.version = next_graph_version()
        self._graphs: dict[str, CompiledGraph] = {}
        self._patchers: dict[str, CompiledGraphPatcher] = {}
        self._merged: dict[object, _MergedView] = {}
        self.pool = PredictorPool(self)
        self.updates_applied = 0
        self.updates_patched = 0
        self.updates_recompiled = 0

    @property
    def day(self) -> int:
        return self.atlas.day

    # -- compiled graphs ---------------------------------------------------

    def directed_graph(self) -> CompiledGraph:
        """The directed-planes graph (primary for from_src configs)."""
        return self._base_graph("directed", closed=False)

    def closed_graph(self) -> CompiledGraph:
        """The closed Section 4.2 graph (GRAPH primary / shared fallback)."""
        return self._base_graph("closed", closed=True)

    def _base_graph(self, name: str, closed: bool) -> CompiledGraph:
        cg = self._graphs.get(name)
        if cg is None:
            cg = CompiledGraph.from_atlas(self.atlas, closed=closed)
            self._graphs[name] = cg
            self._patchers[name] = CompiledGraphPatcher(cg, closed=closed)
        return cg

    def install_graph(
        self, name: str, graph: CompiledGraph, closed: bool
    ) -> CompiledGraph:
        """Adopt an externally compiled graph as a materialized base.

        The shard-worker path (:mod:`repro.serve`): a worker maps the
        service's compiled CSR from shared memory
        (:meth:`~repro.core.compiled.CompiledGraph.from_shared`) and
        installs it under the canonical name (``"directed"`` /
        ``"closed"``) instead of paying a private ``from_atlas``
        compile. ``graph.atlas`` must be this runtime's atlas (same
        links order as the exporter's); the patcher attached here keeps
        the installed graph rolling through ``apply_delta`` like any
        locally built base.
        """
        if graph.atlas is not self.atlas:
            raise ValueError("installed graph must be compiled over the runtime's atlas")
        self._graphs[name] = graph
        self._patchers[name] = CompiledGraphPatcher(graph, closed=closed)
        return graph

    def merged_graph(
        self,
        token: object,
        from_src_links: dict,
        extra_cluster_as: dict[int, int] | None,
        rev: int,
    ) -> CompiledGraph:
        """A client's FROM_SRC-merged view, re-derived from the patched
        base when stale (atlas updated, or the client re-measured).

        The returned object keeps its identity across refreshes (arrays
        are adopted in place), so held references never go stale.
        """
        view = self._merged.get(token)
        if view is not None and view.rev == rev and view.version == self.version:
            return view.graph
        fresh = CompiledGraph.from_base_with_from_src(
            self.directed_graph(), from_src_links, extra_cluster_as
        )
        if view is None:
            view = _MergedView(graph=fresh, rev=rev, version=self.version)
            self._merged[token] = view
        else:
            view.graph.adopt(fresh)
            view.rev = rev
            view.version = self.version
        return view.graph

    def release(self, token: object) -> None:
        """Drop a client's merged view and pooled predictors."""
        self._merged.pop(token, None)
        self.pool.release(token)

    # -- updates -----------------------------------------------------------

    def apply_delta(self, delta: AtlasDelta, mode: str = "patch") -> RuntimeUpdateReport:
        """Advance the lineage one day; returns what was done per graph.

        ``mode="patch"`` (default) edits compiled arrays in place;
        ``mode="recompile"`` rebuilds every materialized graph from the
        updated atlas — the executable specification the equivalence
        suite and the update benchmark compare the patch path against.
        Monthly-refresh deltas always recompile.
        """
        if mode not in ("patch", "recompile"):
            raise ValueError(f"unknown update mode {mode!r}")
        apply_delta_inplace(self.atlas, delta)
        self.version = next_graph_version()
        self.updates_applied += 1
        patch = mode == "patch" and not delta.monthly_refresh
        report = RuntimeUpdateReport(
            day=self.atlas.day, mode="patch" if patch else "recompile"
        )
        context = (
            shared_delta_context(
                self.atlas, delta, self.atlas.cluster_to_as.get
            )
            if patch and self._graphs
            else None
        )
        updates: list[tuple] = []
        for name, cg in self._graphs.items():
            closed = name == "closed"
            old_version = cg.version
            if patch:
                try:
                    stats = self._patchers[name].apply(delta, context)
                    report.graphs[name] = stats
                    updates.append(
                        (name, cg, old_version, cg.version, stats.get("touch"))
                    )
                    continue
                except PatchConsistencyError:
                    report.mode = "recompile"
            self._recompile(name, cg, closed)
            report.graphs[name] = {"mode": "recompile"}
            updates.append((name, cg, old_version, cg.version, None))
        if patch and report.mode == "patch":
            self.updates_patched += 1
        else:
            self.updates_recompiled += 1
        # Merged views go stale via the version check and re-derive
        # lazily from the (now current) directed base on next access.
        # Pooled search caches migrate across the patch (warm-start
        # repair) and the hottest leftovers re-run through the kernel.
        report.cache = self.pool.after_update(updates, delta if patch else None)
        return report

    def reset(self, atlas: Atlas) -> None:
        """Replace the lineage wholesale (e.g. after a gap in the delta
        chain): adopt the new atlas and recompile every materialized
        graph **in place**, so consumers holding this runtime — or any
        of its graphs or pooled predictors — stay current instead of
        being silently orphaned on a stale object.
        """
        self.atlas = atlas
        self.version = next_graph_version()
        self.updates_recompiled += 1
        for name, cg in self._graphs.items():
            self._recompile(name, cg, name == "closed")
        # Merged views and pool entries refresh lazily via the version
        # check on next access (predictors re-bind runtime.atlas there).

    def _recompile(self, name: str, cg: CompiledGraph, closed: bool) -> None:
        cg.adopt(CompiledGraph.from_atlas(self.atlas, closed=closed))
        self._patchers[name] = CompiledGraphPatcher(cg, closed=closed)
