"""In-place delta patching of a compiled graph's CSR arrays.

A daily :class:`~repro.atlas.delta.AtlasDelta` touches a small slice of
the atlas — some links appear or vanish, many links change latency or
loss, tuples churn — yet the seed design recompiled every
:class:`~repro.core.compiled.CompiledGraph` from scratch after every
update. :class:`CompiledGraphPatcher` instead edits the arrays in place
so that after a patch they are **bit-for-bit identical** to what
``CompiledGraph.from_atlas`` would produce for the post-delta atlas
(the equivalence suite asserts exactly that, over multi-day chains).

The patch exploits the compiled emission-order contract:

* The edge array is a sequence of per-link spans in compiled link
  order: the atlas ``links`` dict order (the **main** section),
  followed — for closed graphs — by the synthesized reverse links in
  forward-link order, followed by the self-edge block in cluster-set
  iteration order. ``apply_delta_inplace`` preserves survivors'
  relative dict order and appends new links at the tail, so the main
  section's edit script is fully determined by the delta: span
  deletions at known positions, appends at the end, and in-place value
  writes — all resolved through vectorized position arithmetic, no
  per-link walk. The (much smaller) synth and self sections go through
  a generic two-pointer splice.
* **Value-only days** (latency/loss changes, tuple churn) rewrite
  floats inside existing spans; node ids, edge ids and both CSR
  indexes are untouched.
* **Structural days** splice the edge arrays from large copied runs
  plus freshly classified edges for added links, then repair the CSR
  indexes *locally*: surviving entries are shifted by a vectorized
  old-to-new edge-id map (monotonic, so per-node ordering is
  preserved), deleted entries are compacted out, and added edges are
  inserted into just their endpoint nodes' lists.
* Node interning is append-only in the common case. When an edit
  changes the first-appearance order of nodes (or orphans one), the
  patcher detects it with a vectorized first-appearance scan and
  renumbers — rebuilding both CSR indexes with a stable argsort (the
  vectorized equivalent of the compiler's counting sort) for that day.

Monthly refreshes replace the relationship/clustering datasets that
edge classification depends on, so the runtime recompiles on those
boundaries instead of patching — mirroring the paper's own
daily-delta / monthly-full-refresh split.

The patcher assumes the atlas is mutated only through
``apply_delta_inplace`` between patches; cheap structural invariants
(section lengths, tail order, spot-checked survivor alignment, full
splices of the synth/self sections) raise
:class:`PatchConsistencyError` when the assumption breaks, and the
runtime falls back to a full recompile for that day.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.atlas.delta import AtlasDelta
from repro.core.compiled import (
    _KIND_TO_OP,
    _KIND_TO_PHASE,
    CompiledGraph,
    csr_numpy,
)
from repro.core.graph import DOWN, TO_DST, UP, EdgeKind, link_edge_specs

_SELF_KIND = int(EdgeKind.SELF_DOWN)
_SELF_OP = _KIND_TO_OP[EdgeKind.SELF_DOWN]
_SELF_PHASE = _KIND_TO_PHASE.get(EdgeKind.SELF_DOWN, 0)


class DeltaContext:
    """Per-delta work shared by every base graph of one runtime.

    Both the directed and the closed graph share the atlas ``links``
    dict, the self-edge cluster order, and the changed-value map — so
    the runtime computes them once per update instead of per graph.
    """

    __slots__ = ("new_main", "new_selfe", "changed")

    def __init__(self, new_main, new_selfe, changed):
        self.new_main = new_main
        self.new_selfe = new_selfe
        self.changed = changed


def shared_delta_context(atlas, delta: AtlasDelta, asn_of) -> DeltaContext:
    """Build the :class:`DeltaContext` for one applied delta."""
    links = atlas.links
    new_main = list(links)
    clusters = {c for (a, b) in links for c in (a, b)}
    new_selfe = [c for c in clusters if asn_of(c) is not None]
    changed: dict[tuple[int, int], tuple[float | None, float | None]] = {}
    for link, rec in delta.links_updated.items():
        changed[link] = (rec.latency_ms, None)
    for link in delta.loss_removed:
        pair = changed.get(link)
        changed[link] = (pair[0] if pair else None, 0.0)
    for link, loss in delta.loss_updated.items():
        pair = changed.get(link)
        changed[link] = (pair[0] if pair else None, loss)
    return DeltaContext(new_main, new_selfe, changed)


@dataclass
class PatchTouch:
    """The touched-edge summary one patch exports for warm-start repair.

    Everything the cache-repair layer (:mod:`repro.runtime.warmstart`)
    needs to decide, per cached per-destination search, whether the
    patch could have changed its outcome:

    * ``lat_changed`` / ``loss_changed`` — **new** edge ids whose
      latency/loss floats were rewritten, with the per-edge old/new
      values alongside (``lat_old``/``lat_new``, ``loss_old``/
      ``loss_new``) so the repair layer can drop no-op rewrites and
      seed bounded re-relaxation from the genuinely changed edges;
    * ``added`` — new edge ids that did not exist before the patch;
    * ``removed_*`` — the deleted edges' endpoints and op/phase, in the
      **old** node numbering (which the no-renumber splice preserves);
    * ``old2new`` — monotonic old-edge-id -> new-edge-id map (``-1``
      for deleted), None for value-only patches (identity);
    * ``renumbered`` — node ids changed (first-appearance shift): every
      cached search against the old version is unrepairable.
    """

    renumbered: bool = False
    lat_changed: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64), repr=False
    )
    lat_old: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.float64), repr=False
    )
    lat_new: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.float64), repr=False
    )
    loss_changed: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64), repr=False
    )
    loss_old: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.float64), repr=False
    )
    loss_new: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.float64), repr=False
    )
    added: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64), repr=False
    )
    removed_src: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64), repr=False
    )
    removed_dst: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64), repr=False
    )
    removed_op: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64), repr=False
    )
    removed_ph: np.ndarray = field(
        default_factory=lambda: np.empty(0, np.int64), repr=False
    )
    old2new: np.ndarray | None = field(default=None, repr=False)


class PatchConsistencyError(RuntimeError):
    """The cached compiled-order bookkeeping disagrees with the atlas.

    Raised when the splice cannot reconcile the old and new compiled
    link orders (survivors reordered — something outside the delta
    mutated the atlas, or a set resize shuffled the self-edge order).
    The runtime responds by falling back to a full recompile, which
    re-attaches the patcher.
    """


class CompiledGraphPatcher:
    """Applies daily deltas to one base compiled graph, in place.

    Only base graphs (no FROM_SRC plane) are patchable; client-merged
    graphs are cheaply re-derived from their patched base instead
    (:meth:`CompiledGraph.from_base_with_from_src`).
    """

    def __init__(self, cg: CompiledGraph, closed: bool) -> None:
        if cg.has_from_src:
            raise ValueError("patch base graphs; re-merge FROM_SRC views instead")
        self.cg = cg
        self.closed = closed
        self._attach()

    # -- bookkeeping -------------------------------------------------------

    def _attach(self) -> None:
        """(Re)build the compiled-order bookkeeping from the current atlas."""
        links = self.cg.atlas.links
        self._main = list(links)
        self._main_pos = dict(zip(self._main, range(len(self._main))))
        self._nedges_main = np.array(
            [self._count_edges(l) for l in self._main], dtype=np.int64
        )
        self._starts_main = np.concatenate(
            ([0], np.cumsum(self._nedges_main, dtype=np.int64))
        )
        self._synth = self._synth_links(links) if self.closed else []
        self._nedges_synth = [self._count_edges(l) for l in self._synth]
        self._selfe = self._emitted_self_clusters(links)
        expected = (
            int(self._starts_main[-1])
            + sum(self._nedges_synth)
            + len(self._selfe)
        )
        if expected != self.cg.n_edges:
            raise PatchConsistencyError(
                f"compiled order accounts for {expected} edges, "
                f"graph holds {self.cg.n_edges}"
            )

    @staticmethod
    def _synth_links(links: dict) -> list[tuple[int, int]]:
        """Synthesized reverse links, in ``_closed_adjacency`` emission
        order (forward-link order; each reverse has a unique source)."""
        out = []
        for (i, j) in links:
            if (j, i) not in links:
                out.append((j, i))
        return out

    def _asn_of(self, cluster: int) -> int | None:
        asn = self.cg.atlas.cluster_to_as.get(cluster)
        if asn is None:
            asn = self.cg.extra_cluster_as.get(cluster)
        return asn

    def _emitted_self_clusters(self, links: dict) -> list[int]:
        # Build the cluster set with the same expression (over the same
        # dict) as the compiler, so the set iterates identically.
        clusters = {c for (a, b) in links for c in (a, b)}
        return [c for c in clusters if self._asn_of(c) is not None]

    def _count_edges(self, link: tuple[int, int]) -> int:
        """Edge count the compiler would emit for ``link`` (0 if skipped)."""
        spec = self._classify(link)
        return 0 if spec is None else len(spec[2])

    def _classify(self, link: tuple[int, int]):
        """``(as_i, as_j, specs)`` for a link, or None when skipped."""
        atlas = self.cg.atlas
        c2a = atlas.cluster_to_as
        extra = self.cg.extra_cluster_as
        ci, cj = link
        as_i = c2a.get(ci)
        if as_i is None:
            as_i = extra.get(ci)
            if as_i is None:
                return None
        as_j = c2a.get(cj)
        if as_j is None:
            as_j = extra.get(cj)
            if as_j is None:
                return None
        same_as = as_i == as_j
        specs = link_edge_specs(
            same_as,
            None if same_as else atlas.relationship_codes.get((as_i, as_j)),
            not same_as and frozenset((as_i, as_j)) in atlas.late_exit_pairs,
        )
        return as_i, as_j, specs

    # -- applying a delta --------------------------------------------------

    def apply(self, delta: AtlasDelta, context: DeltaContext | None = None) -> dict:
        """Patch the arrays for an already-applied (in-place) delta.

        Call after ``apply_delta_inplace`` has mutated ``cg.atlas``.
        ``context`` (see :func:`shared_delta_context`) carries the
        per-delta work both base graphs share, so the runtime computes
        it once. Returns a stats dict (structural/value counts, CSR
        repair mode).
        """
        if delta.monthly_refresh:
            raise PatchConsistencyError(
                "monthly refresh changes classification inputs; recompile"
            )
        cg = self.cg
        # Shared-memory mapped graphs (repro.serve workers) serve off
        # read-only views; the first patch materializes plain lists.
        cg.ensure_mutable()
        links = cg.atlas.links
        if context is None or cg.extra_cluster_as:
            context = shared_delta_context(cg.atlas, delta, self._asn_of)
        new_main = context.new_main
        new_selfe = context.new_selfe
        if self.closed:
            new_synth = self._synth_links(links)
            # A synthesized reverse mirrors its forward link's latency;
            # augment a copy of the shared changed map with the mirrors.
            changed = dict(context.changed)
            for link, rec in delta.links_updated.items():
                reverse = (link[1], link[0])
                if reverse not in links:
                    changed[reverse] = (rec.latency_ms, None)
        else:
            new_synth = []
            changed = context.changed

        structural = (
            len(new_main) != len(self._main)
            or delta.links_removed
            or new_synth != self._synth
            or new_selfe != self._selfe
            or any(l not in self._main_pos for l in delta.links_updated)
        )
        if not structural:
            n_values, touched = self._patch_values(changed)
            cached_views = cg._kernel_views
            cg.touch()
            if cached_views is not None:
                # values moved but no structure: refresh the kernel
                # views in place instead of an O(E) rebuild next search
                from repro.core.search import refresh_views_after_values

                refresh_views_after_values(cg, cached_views)
            return {
                "mode": "values",
                "value_spans": n_values,
                "csr": "kept",
                "touch": touched,
            }
        stats = self._patch_structural(
            delta, new_main, new_synth, new_selfe, changed
        )
        cg.touch()
        return stats

    # -- value application (vectorized over the main section) ---------------

    def _collect_main_values(self, changed: dict, skip: set | None):
        """Positions + values of changed surviving main links, split by
        field. Returns ``(lat_pos, lat_val, loss_pos, loss_val)`` lists
        of (main position, value)."""
        main_pos_get = self._main_pos.get
        lat_pos: list[int] = []
        lat_val: list[float] = []
        loss_pos: list[int] = []
        loss_val: list[float] = []
        for link, (lat, loss) in changed.items():
            pos = main_pos_get(link)
            if pos is None or (skip is not None and link in skip):
                continue
            if lat is not None:
                lat_pos.append(pos)
                lat_val.append(lat)
            if loss is not None:
                loss_pos.append(pos)
                loss_val.append(loss)
        return lat_pos, lat_val, loss_pos, loss_val

    @staticmethod
    def _span_ids(offs, counts) -> np.ndarray:
        """Edge ids covered by aligned ``(span start, span length)``."""
        counts = np.asarray(counts, dtype=np.int64)
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64)
        starts = np.repeat(np.asarray(offs, dtype=np.int64), counts)
        group = np.repeat(
            np.concatenate(([0], np.cumsum(counts)[:-1])), counts
        )
        return starts + (np.arange(total, dtype=np.int64) - group)

    @classmethod
    def _write_spans(cls, target: list, offs, counts, values) -> tuple:
        """Scatter per-span values into ``target`` via a numpy mirror.

        ``offs``/``counts``/``values`` are aligned arrays (span start,
        span length, value). Returns ``(new list, touched edge ids,
        old values, new values)`` — the value arrays aligned with the
        ids.
        """
        idx = cls._span_ids(offs, counts)
        if len(idx) == 0:
            empty = np.empty(0, dtype=np.float64)
            return target, idx, empty, empty
        counts = np.asarray(counts, dtype=np.int64)
        mirror = np.array(target, dtype=np.float64)
        old = mirror[idx]
        new = np.repeat(np.asarray(values, dtype=np.float64), counts)
        mirror[idx] = new
        return mirror.tolist(), idx, old, new

    def _patch_values(self, changed: dict) -> tuple[int, PatchTouch]:
        """Rewrite latency/loss floats inside existing spans; no CSR work."""
        touch = PatchTouch()
        if not changed:
            return 0, touch
        cg = self.cg
        lat_pos, lat_val, loss_pos, loss_val = self._collect_main_values(
            changed, skip=None
        )
        starts = self._starts_main
        nedges = self._nedges_main
        touched = 0
        lat_ids = [touch.lat_changed]
        lat_olds = [touch.lat_old]
        lat_news = [touch.lat_new]
        loss_ids = [touch.loss_changed]
        loss_olds = [touch.loss_old]
        loss_news = [touch.loss_new]
        if lat_pos:
            pos = np.array(lat_pos, dtype=np.int64)
            cg.e_lat, ids, old, new = self._write_spans(
                cg.e_lat, starts[pos], nedges[pos], lat_val
            )
            lat_ids.append(ids)
            lat_olds.append(old)
            lat_news.append(new)
            touched += len(lat_pos)
        if loss_pos:
            pos = np.array(loss_pos, dtype=np.int64)
            cg.e_loss, ids, old, new = self._write_spans(
                cg.e_loss, starts[pos], nedges[pos], loss_val
            )
            loss_ids.append(ids)
            loss_olds.append(old)
            loss_news.append(new)
            touched += len(loss_pos)
        # Synth spans (closed graphs): small section, scalar writes.
        if self._synth:
            changed_get = changed.get
            e_lat = cg.e_lat
            e_loss = cg.e_loss
            synth_lat: list[int] = []
            synth_lat_old: list[float] = []
            synth_lat_new: list[float] = []
            synth_loss: list[int] = []
            synth_loss_old: list[float] = []
            synth_loss_new: list[float] = []
            off = int(starts[-1])
            for link, n in zip(self._synth, self._nedges_synth):
                if n:
                    pair = changed_get(link)
                    if pair is not None:
                        lat, loss = pair
                        for k in range(off, off + n):
                            if lat is not None:
                                synth_lat.append(k)
                                synth_lat_old.append(e_lat[k])
                                synth_lat_new.append(lat)
                                e_lat[k] = lat
                            if loss is not None:
                                synth_loss.append(k)
                                synth_loss_old.append(e_loss[k])
                                synth_loss_new.append(loss)
                                e_loss[k] = loss
                        touched += 1
                off += n
            if synth_lat:
                lat_ids.append(np.array(synth_lat, dtype=np.int64))
                lat_olds.append(np.array(synth_lat_old, dtype=np.float64))
                lat_news.append(np.array(synth_lat_new, dtype=np.float64))
            if synth_loss:
                loss_ids.append(np.array(synth_loss, dtype=np.int64))
                loss_olds.append(np.array(synth_loss_old, dtype=np.float64))
                loss_news.append(np.array(synth_loss_new, dtype=np.float64))
        touch.lat_changed = np.concatenate(lat_ids)
        touch.lat_old = np.concatenate(lat_olds)
        touch.lat_new = np.concatenate(lat_news)
        touch.loss_changed = np.concatenate(loss_ids)
        touch.loss_old = np.concatenate(loss_olds)
        touch.loss_new = np.concatenate(loss_news)
        return touched, touch

    # -- structural splice ---------------------------------------------------

    def _patch_structural(
        self,
        delta: AtlasDelta,
        new_main: list,
        new_synth: list,
        new_selfe: list,
        changed: dict,
    ) -> dict:
        cg = self.cg
        atlas = cg.atlas
        links = atlas.links
        loss_map = atlas.link_loss

        old_arrays = (
            cg.e_src,
            cg.e_dst,
            cg.e_kind,
            cg.e_lat,
            cg.e_loss,
            cg.e_src_asn,
            cg.e_dst_asn,
            cg.e_op,
            cg.e_phase,
        )
        staged = tuple([] for _ in range(9))
        copy_runs: list[tuple[int, int, int]] = []  # (old_lo, old_hi, new_lo)
        removed_spans: list[tuple[int, int]] = []  # (old_lo, old_hi)
        added_edges: list[tuple[int, int, int]] = []  # (new_id, src, dst)
        value_writes: list[tuple[int, int, float | None, float | None]] = []

        s_src, s_dst = staged[0], staged[1]

        def emit(link: tuple[int, int], latency: float, loss: float) -> int:
            spec = self._classify(link)
            if spec is None:
                return 0
            as_i, as_j, specs = spec
            ci, cj = link
            intern = cg._intern
            kind_op = _KIND_TO_OP
            kind_phase = _KIND_TO_PHASE
            for side_i, side_j, kind in specs:
                src = intern(TO_DST, side_i, ci, as_i)
                dst = intern(TO_DST, side_j, cj, as_j)
                added_edges.append((len(s_src), src, dst))
                s_src.append(src)
                s_dst.append(dst)
                staged[2].append(int(kind))
                staged[3].append(latency)
                staged[4].append(loss)
                staged[5].append(as_i)
                staged[6].append(as_j)
                staged[7].append(kind_op[kind])
                staged[8].append(kind_phase.get(kind, 0))
            return len(specs)

        # ---- main section: vectorized splice ----
        # apply_delta_inplace guarantees survivors keep their relative
        # dict order and new links append at the tail; verify the
        # contract cheaply before relying on it.
        main_pos = self._main_pos
        old_main = self._main
        n_old = len(old_main)
        nedges = self._nedges_main
        starts = self._starts_main

        removed_links = [l for l in delta.links_removed if l in main_pos]
        added_links = [l for l in delta.links_updated if l not in main_pos]
        if len(new_main) != n_old - len(removed_links) + len(added_links):
            raise PatchConsistencyError("main section length drift")
        if added_links and new_main[-len(added_links) :] != added_links:
            raise PatchConsistencyError("appended links out of order")
        removed_set = set(removed_links)
        removed_pos = np.array(
            sorted(main_pos[l] for l in removed_links), dtype=np.int64
        )
        if n_old:
            step = max(1, n_old // 8)
            for old_idx in range(0, n_old, step):
                link = old_main[old_idx]
                if link in removed_set:
                    continue
                new_idx = old_idx - int(np.searchsorted(removed_pos, old_idx))
                if new_main[new_idx] != link:
                    raise PatchConsistencyError(
                        f"survivor {link!r} misaligned in main section"
                    )

        new_off = 0
        prev = 0
        for pos in removed_pos.tolist():
            lo = int(starts[prev])
            hi = int(starts[pos])
            if hi > lo:
                copy_runs.append((lo, hi, new_off))
                for old_list, new_list in zip(old_arrays, staged):
                    new_list.extend(old_list[lo:hi])
                new_off += hi - lo
            span_hi = int(starts[pos + 1])
            if span_hi > hi:
                removed_spans.append((hi, span_hi))
            prev = pos + 1
        lo = int(starts[prev])
        hi = int(starts[-1])
        if hi > lo:
            copy_runs.append((lo, hi, new_off))
            for old_list, new_list in zip(old_arrays, staged):
                new_list.extend(old_list[lo:hi])

        added_nedges = [
            emit(link, links[link].latency_ms, loss_map.get(link, 0.0))
            for link in added_links
        ]
        new_nedges_main = np.concatenate(
            (
                np.delete(nedges, removed_pos) if len(removed_pos) else nedges,
                np.array(added_nedges, dtype=np.int64),
            )
        )
        new_starts_main = np.concatenate(
            ([0], np.cumsum(new_nedges_main, dtype=np.int64))
        )

        # Main value updates: positions resolve against the *old* layout,
        # offsets shift left past removed spans; writes are deferred
        # until the arrays are final (the main section stays a prefix).
        lat_pos, lat_val, loss_pos, loss_val = self._collect_main_values(
            changed, skip=removed_set
        )
        rem_edge_prefix = np.concatenate(
            ([0], np.cumsum(nedges[removed_pos], dtype=np.int64))
        )

        def _main_offsets(positions):
            pos = np.array(positions, dtype=np.int64)
            offs = starts[pos] - rem_edge_prefix[
                np.searchsorted(removed_pos, pos)
            ]
            return offs, nedges[pos]

        # ---- synth + self sections: generic two-pointer splice ----
        state = {"old_off": int(starts[-1]), "run_lo": None, "run_new_lo": 0}

        def close_run() -> None:
            run_lo = state["run_lo"]
            if run_lo is None:
                return
            run_hi = state["old_off"]
            if run_hi > run_lo:
                copy_runs.append((run_lo, run_hi, state["run_new_lo"]))
                for old_list, new_list in zip(old_arrays, staged):
                    new_list.extend(old_list[run_lo:run_hi])
            state["run_lo"] = None

        changed_get = changed.get

        def splice_section(
            old_list: list,
            old_nedges: list[int],
            new_list: list,
            latency_of,
        ) -> list[int]:
            old_set = set(old_list)
            removed = old_set - set(new_list)
            i = 0
            section_n_old = len(old_list)
            new_nedges: list[int] = []
            for link in new_list:
                while i < section_n_old and old_list[i] in removed:
                    close_run()
                    n = old_nedges[i]
                    if n:
                        removed_spans.append(
                            (state["old_off"], state["old_off"] + n)
                        )
                    state["old_off"] += n
                    i += 1
                if i < section_n_old and old_list[i] == link:
                    n = old_nedges[i]
                    if n:
                        if state["run_lo"] is None:
                            state["run_lo"] = state["old_off"]
                            state["run_new_lo"] = len(s_src)
                        pair = changed_get(link)
                        if pair is not None:
                            value_writes.append(
                                (
                                    state["run_new_lo"]
                                    + state["old_off"]
                                    - state["run_lo"],
                                    n,
                                    pair[0],
                                    pair[1],
                                )
                            )
                    state["old_off"] += n
                    i += 1
                elif link not in old_set:
                    close_run()
                    n = emit(link, latency_of(link), loss_map.get(link, 0.0))
                else:
                    raise PatchConsistencyError(
                        f"survivor {link!r} out of order in compiled links"
                    )
                new_nedges.append(n)
            while i < section_n_old:
                if old_list[i] not in removed:
                    raise PatchConsistencyError(
                        f"trailing survivor {old_list[i]!r} unmatched"
                    )
                close_run()
                n = old_nedges[i]
                if n:
                    removed_spans.append(
                        (state["old_off"], state["old_off"] + n)
                    )
                state["old_off"] += n
                i += 1
            return new_nedges

        new_nedges_synth = splice_section(
            self._synth,
            self._nedges_synth,
            new_synth,
            lambda l: links[(l[1], l[0])].latency_ms,
        )

        # Self-edge block: spliced the same way when set iteration kept
        # the surviving clusters' relative order (the common case for
        # small membership churn under open addressing). When the new
        # set's layout shuffled survivors wholesale, drop the old block
        # and re-emit the (cheap) new one instead of recompiling the
        # whole graph — the first-appearance scan then renumbers.
        def emit_self(cluster: int) -> int:
            asn = self._asn_of(cluster)
            src = intern_self(TO_DST, UP, cluster, asn)
            dst = intern_self(TO_DST, DOWN, cluster, asn)
            added_edges.append((len(s_src), src, dst))
            s_src.append(src)
            s_dst.append(dst)
            staged[2].append(_SELF_KIND)
            staged[3].append(0.0)
            staged[4].append(0.0)
            staged[5].append(asn)
            staged[6].append(asn)
            staged[7].append(_SELF_OP)
            staged[8].append(_SELF_PHASE)
            return 1

        intern_self = cg._intern
        old_set_self = set(self._selfe)
        new_set_self = set(new_selfe)
        ordered = [c for c in self._selfe if c in new_set_self] == [
            c for c in new_selfe if c in old_set_self
        ]
        if ordered:
            removed_self = old_set_self - new_set_self
            i = 0
            n_old_self = len(self._selfe)
            for cluster in new_selfe:
                while i < n_old_self and self._selfe[i] in removed_self:
                    close_run()
                    removed_spans.append(
                        (state["old_off"], state["old_off"] + 1)
                    )
                    state["old_off"] += 1
                    i += 1
                if i < n_old_self and self._selfe[i] == cluster:
                    if state["run_lo"] is None:
                        state["run_lo"] = state["old_off"]
                        state["run_new_lo"] = len(s_src)
                    state["old_off"] += 1
                    i += 1
                else:
                    close_run()
                    emit_self(cluster)
            while i < n_old_self:
                close_run()
                removed_spans.append((state["old_off"], state["old_off"] + 1))
                state["old_off"] += 1
                i += 1
            close_run()
        else:
            close_run()
            n_old_self = len(self._selfe)
            if n_old_self:
                removed_spans.append(
                    (state["old_off"], state["old_off"] + n_old_self)
                )
                state["old_off"] += n_old_self
            for cluster in new_selfe:
                emit_self(cluster)

        old_n_edges = len(old_arrays[0])
        if state["old_off"] != old_n_edges:
            raise PatchConsistencyError(
                f"splice consumed {state['old_off']} of {old_n_edges} old edges"
            )

        (
            cg.e_src,
            cg.e_dst,
            cg.e_kind,
            cg.e_lat,
            cg.e_loss,
            cg.e_src_asn,
            cg.e_dst_asn,
            cg.e_op,
            cg.e_phase,
        ) = staged

        # Apply the deferred value writes: vectorized for the main
        # section, scalar for the (small) synth spans.
        empty_f = np.empty(0, dtype=np.float64)
        lat_ids = [np.empty(0, dtype=np.int64)]
        lat_olds = [empty_f]
        lat_news = [empty_f]
        loss_ids = [np.empty(0, dtype=np.int64)]
        loss_olds = [empty_f]
        loss_news = [empty_f]
        if lat_pos:
            offs, counts = _main_offsets(lat_pos)
            cg.e_lat, ids, old, new = self._write_spans(
                cg.e_lat, offs, counts, lat_val
            )
            lat_ids.append(ids)
            lat_olds.append(old)
            lat_news.append(new)
        if loss_pos:
            offs, counts = _main_offsets(loss_pos)
            cg.e_loss, ids, old, new = self._write_spans(
                cg.e_loss, offs, counts, loss_val
            )
            loss_ids.append(ids)
            loss_olds.append(old)
            loss_news.append(new)
        e_lat = cg.e_lat
        e_loss = cg.e_loss
        synth_lat: list[int] = []
        synth_lat_old: list[float] = []
        synth_lat_new: list[float] = []
        synth_loss: list[int] = []
        synth_loss_old: list[float] = []
        synth_loss_new: list[float] = []
        for off, n, lat, loss in value_writes:
            for k in range(off, off + n):
                if lat is not None:
                    synth_lat.append(k)
                    synth_lat_old.append(e_lat[k])
                    synth_lat_new.append(lat)
                    e_lat[k] = lat
                if loss is not None:
                    synth_loss.append(k)
                    synth_loss_old.append(e_loss[k])
                    synth_loss_new.append(loss)
                    e_loss[k] = loss
        if synth_lat:
            lat_ids.append(np.array(synth_lat, dtype=np.int64))
            lat_olds.append(np.array(synth_lat_old, dtype=np.float64))
            lat_news.append(np.array(synth_lat_new, dtype=np.float64))
        if synth_loss:
            loss_ids.append(np.array(synth_loss, dtype=np.int64))
            loss_olds.append(np.array(synth_loss_old, dtype=np.float64))
            loss_news.append(np.array(synth_loss_new, dtype=np.float64))

        csr_mode, old2new, removed_ids = self._repair_ids_and_csr(
            old_arrays, copy_runs, removed_spans, added_edges
        )
        if csr_mode == "rebuilt":
            touch = PatchTouch(renumbered=True)
        else:
            rem = removed_ids.tolist()
            touch = PatchTouch(
                lat_changed=np.concatenate(lat_ids),
                lat_old=np.concatenate(lat_olds),
                lat_new=np.concatenate(lat_news),
                loss_changed=np.concatenate(loss_ids),
                loss_old=np.concatenate(loss_olds),
                loss_new=np.concatenate(loss_news),
                added=np.array(
                    [eid for eid, _, _ in added_edges], dtype=np.int64
                ),
                removed_src=np.fromiter(
                    (old_arrays[0][i] for i in rem), np.int64, len(rem)
                ),
                removed_dst=np.fromiter(
                    (old_arrays[1][i] for i in rem), np.int64, len(rem)
                ),
                removed_op=np.fromiter(
                    (old_arrays[7][i] for i in rem), np.int64, len(rem)
                ),
                removed_ph=np.fromiter(
                    (old_arrays[8][i] for i in rem), np.int64, len(rem)
                ),
                old2new=old2new,
            )

        self._main = new_main
        self._main_pos = dict(zip(new_main, range(len(new_main))))
        self._nedges_main = new_nedges_main
        self._starts_main = new_starts_main
        self._synth = new_synth
        self._nedges_synth = new_nedges_synth
        self._selfe = new_selfe
        return {
            "mode": "structural",
            "copied_runs": len(copy_runs),
            "removed_spans": len(removed_spans),
            "added_edges": len(added_edges),
            "value_spans": len(lat_pos) + len(loss_pos) + len(value_writes),
            "csr": csr_mode,
            "touch": touch,
        }

    # -- node numbering & CSR repair ----------------------------------------

    def _repair_ids_and_csr(
        self,
        old_arrays: tuple,
        copy_runs: list[tuple[int, int, int]],
        removed_spans: list[tuple[int, int]],
        added_edges: list[tuple[int, int, int]],
    ) -> str:
        cg = self.cg
        n_edges = len(cg.e_src)
        e_src_np = np.array(cg.e_src, dtype=np.int64)
        e_dst_np = np.array(cg.e_dst, dtype=np.int64)
        n_nodes = len(cg.node_cluster)

        # First-appearance scan: the full compiler interns nodes in
        # emission order (src before dst per edge); splicing keeps old
        # ids and appends new nodes, which matches iff the appearance
        # order is still the identity.
        combined = np.empty(2 * n_edges, dtype=np.int64)
        combined[0::2] = e_src_np
        combined[1::2] = e_dst_np
        uniq, first = np.unique(combined, return_index=True)
        order = uniq[np.argsort(first, kind="stable")]
        if len(order) != n_nodes or not np.array_equal(
            order, np.arange(n_nodes, dtype=np.int64)
        ):
            e_src_np, e_dst_np = self._renumber_nodes(order, e_src_np, e_dst_np)
            n_nodes = len(cg.node_cluster)
            cg.rev_off, cg.rev_lst = csr_numpy(n_nodes, e_dst_np)
            cg.fwd_off, cg.fwd_lst = csr_numpy(n_nodes, e_src_np)
            return "rebuilt", None, np.empty(0, dtype=np.int64)

        old_n_edges = len(old_arrays[0])
        old2new = np.full(old_n_edges, -1, dtype=np.int64)
        for lo, hi, new_lo in copy_runs:
            old2new[lo:hi] = np.arange(new_lo, new_lo + (hi - lo), dtype=np.int64)
        old_src_np = np.fromiter(old_arrays[0], np.int64, old_n_edges)
        old_dst_np = np.fromiter(old_arrays[1], np.int64, old_n_edges)
        removed_ids = (
            np.concatenate(
                [np.arange(lo, hi, dtype=np.int64) for lo, hi in removed_spans]
            )
            if removed_spans
            else np.empty(0, dtype=np.int64)
        )
        old_n_nodes = len(cg.rev_off) - 1
        cg.rev_off, cg.rev_lst = _patch_one_csr(
            cg.rev_off,
            cg.rev_lst,
            old2new,
            old_dst_np[removed_ids],
            [(eid, dst) for eid, _, dst in added_edges],
            old_n_nodes,
            n_nodes,
        )
        cg.fwd_off, cg.fwd_lst = _patch_one_csr(
            cg.fwd_off,
            cg.fwd_lst,
            old2new,
            old_src_np[removed_ids],
            [(eid, src) for eid, src, _ in added_edges],
            old_n_nodes,
            n_nodes,
        )
        return "patched", old2new, removed_ids

    def _renumber_nodes(self, order, e_src_np, e_dst_np):
        """Renumber nodes to first-appearance order (drops orphans).

        Returns the remapped ``(e_src, e_dst)`` numpy arrays so the
        caller can feed the CSR rebuild without another conversion.
        """
        cg = self.cg
        n_provisional = len(cg.node_cluster)
        remap = np.full(n_provisional, -1, dtype=np.int64)
        remap[order] = np.arange(len(order), dtype=np.int64)
        e_src_np = remap[e_src_np]
        e_dst_np = remap[e_dst_np]
        cg.e_src = e_src_np.tolist()
        cg.e_dst = e_dst_np.tolist()
        plane = np.array(cg.node_plane, dtype=np.int64)[order]
        side = np.array(cg.node_side, dtype=np.int64)[order]
        cluster = np.array(cg.node_cluster, dtype=np.int64)[order]
        cg.node_plane = plane.tolist()
        cg.node_side = side.tolist()
        cg.node_cluster = cluster.tolist()
        cg.node_asn = np.array(cg.node_asn, dtype=np.int64)[order].tolist()
        packed = (cluster << 2) | (plane << 1) | side
        cg._id_of = dict(zip(packed.tolist(), range(len(order))))
        return e_src_np, e_dst_np


def _patch_one_csr(
    off: list[int],
    lst: list[int],
    old2new,
    removed_buckets,
    added: list[tuple[int, int]],
    old_n_nodes: int,
    new_n_nodes: int,
) -> tuple[list[int], list[int]]:
    """Localized repair of one CSR index after an edge-array splice.

    Surviving entries keep their per-node order under the (monotonic)
    ``old2new`` id map; deleted entries compact out; added edges insert
    into just their bucket's slice. Offsets move by per-node count
    deltas — nodes the delta never touched keep their lists verbatim
    (modulo the id shift).
    """
    mapped = old2new[np.fromiter(lst, np.int64, len(lst))]
    kept = mapped[mapped >= 0]
    off_np = np.fromiter(off, np.int64, len(off))
    if len(removed_buckets):
        rem_counts = np.bincount(removed_buckets, minlength=old_n_nodes)
        off_np = off_np - np.concatenate(
            ([0], np.cumsum(rem_counts, dtype=np.int64))
        )
    if new_n_nodes > old_n_nodes:
        off_np = np.concatenate(
            (off_np, np.full(new_n_nodes - old_n_nodes, off_np[-1], np.int64))
        )
    if added:
        inserts = []
        for eid, bucket in added:
            lo = off_np[bucket]
            hi = off_np[bucket + 1]
            pos = lo + np.searchsorted(kept[lo:hi], eid)
            inserts.append((int(pos), eid))
        inserts.sort()
        kept = np.insert(
            kept, [p for p, _ in inserts], [e for _, e in inserts]
        )
        add_counts = np.bincount(
            [b for _, b in added], minlength=new_n_nodes
        )
        off_np = off_np + np.concatenate(
            ([0], np.cumsum(add_counts, dtype=np.int64))
        )
    return off_np.tolist(), kept.tolist()

