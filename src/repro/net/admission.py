"""Admission control for the network gateway: rate limits and shedding.

The gateway's structural backpressure (bounded per-connection send
queues, one-frame-at-a-time dispatch) protects *memory*, but nothing
protects *compute*: a single hammering client can keep the backend's
executor saturated and starve every other connection, and an operator
has no lever to cap a node's total load. This module is that lever —
a pure-policy layer with no asyncio and no sockets, driven by the
caller's clock so tests control time exactly:

* :class:`TokenBucket` — the classic refill-on-demand limiter. Each
  client identity gets ``rate`` requests/second with bursts up to
  ``burst``; a refused take returns precisely how long until the next
  token lands, which travels to the client as the RETRY frame's
  retry-after hint.
* :class:`AdmissionControl` — the gateway-facing policy object: per
  client token buckets, a node-wide queue-depth shed threshold (refuse
  new queries while the backlog of queued + in-flight requests is past
  the bound), and a connection cap. Every refusal is typed — the
  caller emits a RETRY frame with the hint, never a silent drop or a
  hung socket.

Shedding applies to *query* frames only (PREDICT / PREDICT_BATCH /
QUERY_INFO). Bootstrap and subscription traffic (ATLAS_FETCH,
SUBSCRIBE) is never shed: refusing those would strand a client with no
atlas at all, which is strictly worse for the fleet than one more
bootstrap transfer.
"""

from __future__ import annotations

__all__ = ["TokenBucket", "AdmissionControl"]

#: buckets tracked before idle ones are pruned (memory bound, not policy)
MAX_TRACKED_CLIENTS = 4096


class TokenBucket:
    """Refill-on-demand token bucket; time is supplied by the caller."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: float, now: float = 0.0) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be > 0")
        if burst < 1.0:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self.tokens = self.burst
        self.stamp = float(now)

    def _refill(self, now: float) -> None:
        if now > self.stamp:
            self.tokens = min(self.burst, self.tokens + (now - self.stamp) * self.rate)
        self.stamp = max(self.stamp, now)

    def take(self, now: float, n: float = 1.0) -> float | None:
        """Consume ``n`` tokens; ``None`` on success, else the seconds
        until enough tokens will have refilled (the retry-after hint).
        A refused take consumes nothing."""
        self._refill(now)
        if self.tokens >= n:
            self.tokens -= n
            return None
        return (n - self.tokens) / self.rate

    def idle_for(self, now: float) -> float:
        """Seconds since this bucket last saw a take (for pruning)."""
        return now - self.stamp


class AdmissionControl:
    """Gateway admission policy: rate limits, queue shed, connection cap.

    All limits default to *off* (``None``), so an
    ``AdmissionControl()`` with no arguments admits everything — the
    gateway constructs one unconditionally and the configuration
    decides how much teeth it has.
    """

    def __init__(
        self,
        *,
        rate: float | None = None,
        burst: float | None = None,
        max_queue_depth: int | None = None,
        max_connections: int | None = None,
    ) -> None:
        self.rate = float(rate) if rate is not None else None
        if self.rate is not None and self.rate <= 0.0:
            raise ValueError("rate must be > 0")
        # default burst: 2 seconds of rate, at least one request
        if burst is None and self.rate is not None:
            burst = max(1.0, 2.0 * self.rate)
        self.burst = float(burst) if burst is not None else None
        self.max_queue_depth = (
            int(max_queue_depth) if max_queue_depth is not None else None
        )
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_connections = (
            int(max_connections) if max_connections is not None else None
        )
        if self.max_connections is not None and self.max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        self._buckets: dict[str, TokenBucket] = {}
        self.stats = {
            "admitted": 0,
            "shed_rate": 0,
            "shed_queue": 0,
            "connections_rejected": 0,
        }

    @property
    def enabled(self) -> bool:
        return (
            self.rate is not None
            or self.max_queue_depth is not None
            or self.max_connections is not None
        )

    def admit_connection(self, open_count: int) -> bool:
        """May a new connection join, given ``open_count`` already open?"""
        if self.max_connections is not None and open_count >= self.max_connections:
            self.stats["connections_rejected"] += 1
            return False
        return True

    def admit_request(
        self, client: str, now: float, queue_depth: int = 0
    ) -> tuple[float, str] | None:
        """Admit one query frame from ``client`` at time ``now``.

        Returns ``None`` to admit, or ``(retry_after_s, reason)`` to
        shed. Queue depth is checked first — when the whole node is
        drowning, per-client fairness is moot and the hint should
        reflect drain time, not bucket refill.
        """
        if (
            self.max_queue_depth is not None
            and queue_depth >= self.max_queue_depth
        ):
            self.stats["shed_queue"] += 1
            # No drain-rate estimate is worth its complexity here: hint
            # one "typical backlog" beat, scaled by how far past the
            # bound the node is, capped so clients re-probe promptly.
            over = queue_depth / self.max_queue_depth
            return min(1.0, 0.05 * over), (
                f"queue depth {queue_depth} >= shed threshold "
                f"{self.max_queue_depth}"
            )
        if self.rate is not None:
            bucket = self._buckets.get(client)
            if bucket is None:
                self._prune(now)
                bucket = self._buckets[client] = TokenBucket(
                    self.rate, self.burst, now
                )
            wait = bucket.take(now)
            if wait is not None:
                self.stats["shed_rate"] += 1
                return wait, (
                    f"client rate limit {self.rate:g}/s exceeded"
                )
        self.stats["admitted"] += 1
        return None

    def _prune(self, now: float) -> None:
        if len(self._buckets) < MAX_TRACKED_CLIENTS:
            return
        # Drop the most-idle half; an evicted client merely restarts
        # with a full burst, so eviction can only ever be generous.
        by_idle = sorted(
            self._buckets.items(), key=lambda kv: kv[1].idle_for(now)
        )
        self._buckets = dict(by_idle[: MAX_TRACKED_CLIENTS // 2])

    def snapshot(self) -> dict[str, int]:
        out = dict(self.stats)
        out["tracked_clients"] = len(self._buckets)
        return out
