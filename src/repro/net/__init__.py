"""The network gateway subsystem: the node boundary, crossed.

The paper deploys iNano as a service for "millions of users" whose
hosts hold no atlas, with one daily delta shipped to every full client
(Section 5's remote-query future work). Everything below this package
answers queries in-process or over ``multiprocessing`` pipes;
:mod:`repro.net` is the real transport:

* :mod:`repro.net.protocol` — the length-prefixed binary wire format
  (HELLO, PREDICT/PREDICT_BATCH, QUERY_INFO, ATLAS_FETCH,
  SUBSCRIBE/DELTA_PUSH on the ``INDB`` broadcast codec, ERROR), one
  pure-python encode/decode layer shared by both ends;
* :mod:`repro.net.gateway` — the asyncio front-end: TCP + unix-domain
  listeners, pipelined per-connection request streams, a single-thread
  bridge into a :class:`~repro.serve.service.PredictionService` or
  :class:`~repro.client.server.AtlasServer`, and delta pushes to
  subscribed connections;
* :mod:`repro.net.client` — :class:`NetworkClient` (surfaced as
  ``repro.client.INanoRemoteClient``): delegate queries over the wire
  like a :class:`~repro.client.remote.QueryAgent` caller, or bootstrap
  a full atlas over ``ATLAS_FETCH`` and apply pushed deltas through a
  local :class:`~repro.runtime.runtime.AtlasRuntime` — bit-for-bit the
  co-located answers, over either transport;
* :mod:`repro.net.admission` — :class:`AdmissionControl`: per-client
  token-bucket rate limits, node-wide queue-depth shedding (typed
  RETRY frames with a retry-after hint), and connection caps — the
  gateway's compute-side protection, next to its structural
  memory-side backpressure;
* :mod:`repro.net.relay` — :class:`RelayGateway`: a gateway that
  bootstraps from an *upstream* gateway and re-serves its anchor bytes
  and delta pushes verbatim downstream, chaining origin → region
  relays → clients without re-encoding anything on the path.
"""

from repro.net.admission import AdmissionControl, TokenBucket
from repro.net.client import NetworkClient
from repro.net.gateway import NetworkGateway
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
)
from repro.net.relay import RelayGateway

__all__ = [
    "AdmissionControl",
    "TokenBucket",
    "NetworkClient",
    "NetworkGateway",
    "RelayGateway",
    "FrameDecoder",
    "encode_frame",
    "DEFAULT_MAX_FRAME",
    "PROTOCOL_VERSION",
]
