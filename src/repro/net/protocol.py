"""The gateway wire protocol: length-prefixed binary frames.

One frame format carries every message between a
:class:`~repro.net.client.NetworkClient` and the
:class:`~repro.net.gateway.NetworkGateway`::

    +--------+---------+--------+------------+-------------+----------+
    | magic  | version | type   | request_id | payload_len | payload  |
    | "INWP" | u8      | u8     | u32        | u32         | bytes    |
    +--------+---------+--------+------------+-------------+----------+

``request_id`` pairs replies with pipelined requests (the gateway
answers a connection's requests in order, but clients verify the id
anyway); server-initiated pushes use id 0. ``payload_len`` is bounded
by a negotiated ``max_frame`` so a corrupt or hostile length prefix
cannot balloon a peer's buffer — an oversized or malformed frame raises
:class:`~repro.errors.ProtocolError` from :class:`FrameDecoder`.

Frame payloads are pure-``struct`` packings shared by both ends of the
wire (this module has no asyncio, no sockets — both the asyncio server
and the blocking client build on it):

* ``HELLO`` / ``WELCOME`` — version + capability handshake; a client
  may request the delta subscription in the HELLO flags.
* ``PREDICT`` / ``PREDICT_BATCH`` — one-way predictions; payloads carry
  the :class:`~repro.core.predictor.PredictorConfig` ablation flags, an
  optional registered-client token, and ``(src, dst)`` prefix pairs.
  Replies encode :class:`~repro.core.predictor.PredictedPath` rows with
  **lossless float64** latency/loss so a remote caller sees bit-for-bit
  what a co-located one computes.
* ``QUERY_INFO`` — two-way queries; replies encode full
  :class:`~repro.client.query.PathInfo` payloads (both directions plus
  atlas-day provenance).
* ``ATLAS_FETCH`` / ``ATLAS`` — bootstrap: the reply payload is the
  ``INNA`` atlas encoding (:func:`repro.atlas.serialization.encode_atlas`),
  which the client decodes into its own
  :class:`~repro.runtime.runtime.AtlasRuntime`.
* ``SUBSCRIBE`` / ``DELTA_PUSH`` — daily updates: a push payload is the
  ``INDB`` broadcast codec (:func:`repro.atlas.serialization.encode_delta`),
  exactly the bytes the sharded service fans to its workers, applied
  client-side through the same in-place patch + warm-start path.
* ``SUB_DROPPED`` — server-initiated notice (id 0) that the gateway
  unsubscribed this connection because its send queue exceeded the
  per-subscriber budget (it stopped reading pushes); the payload
  carries the atlas day the drop happened on plus a reason string, so
  the client knows to re-bootstrap instead of waiting for pushes that
  will never come.
* ``STATS`` — per-request kernel telemetry: a client that set
  ``FLAG_STATS`` in its HELLO receives one typed STATS frame after
  every successful PREDICT / PREDICT_BATCH / QUERY_INFO reply (same
  ``request_id``) carrying the backend wall time, the search-kernel
  counter deltas the request caused (cold searches, cache hits, kernel
  microseconds), and the repair-class counts of the backend's last
  applied delta (reused / repaired / replayed / dirty) — the first
  metrics hook an autoscaler needs, behind the capability bit.
* ``RETRY`` — a typed shed reply (same ``request_id`` as the refused
  query) from the gateway's admission layer: the client exceeded its
  token-bucket rate or the node's queue depth crossed the shed
  threshold. Carries a float64 retry-after hint (seconds) plus a
  reason string, so an over-rate client backs off instead of hanging
  on a silently dropped query. :class:`~repro.net.client.NetworkClient`
  honors it with capped exponential backoff.
* ``ERROR`` — a typed failure reply (code + message); decode failures
  of untrusted bytes (:class:`~repro.errors.CodecError`) and backend
  errors travel as these instead of killing the connection. A gateway
  configured with a shared-secret auth token answers a HELLO with a
  missing/wrong token (``FLAG_AUTH`` + token string in the HELLO
  payload) with ``E_UNAUTHORIZED`` and closes.
"""

from __future__ import annotations

import struct

from repro.core.predictor import PredictedPath, PredictorConfig
from repro.errors import ProtocolError

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
    "FrameDecoder",
    "encode_frame",
    "frame_name",
]

MAGIC = b"INWP"  # iNano wire protocol
PROTOCOL_VERSION = 1

#: frame header: magic, protocol version, frame type, request id, payload length
_HEADER = struct.Struct("<4sBBII")
HEADER_SIZE = _HEADER.size

#: default cap on one frame's payload (atlas payloads are the largest
#: legitimate frames; the default scenario encodes to well under this)
DEFAULT_MAX_FRAME = 64 * 1024 * 1024

# -- frame types -----------------------------------------------------------

HELLO = 1
WELCOME = 2
PREDICT = 3
PREDICT_OK = 4
PREDICT_BATCH = 5
PREDICT_BATCH_OK = 6
QUERY_INFO = 7
QUERY_INFO_OK = 8
ATLAS_FETCH = 9
ATLAS = 10
SUBSCRIBE = 11
SUBSCRIBE_OK = 12
DELTA_PUSH = 13
STATS = 14
SUB_DROPPED = 15
RETRY = 16
TRACE_FETCH = 17
TRACE_DUMP = 18
ERROR = 127

_FRAME_NAMES = {
    HELLO: "HELLO",
    WELCOME: "WELCOME",
    PREDICT: "PREDICT",
    PREDICT_OK: "PREDICT_OK",
    PREDICT_BATCH: "PREDICT_BATCH",
    PREDICT_BATCH_OK: "PREDICT_BATCH_OK",
    QUERY_INFO: "QUERY_INFO",
    QUERY_INFO_OK: "QUERY_INFO_OK",
    ATLAS_FETCH: "ATLAS_FETCH",
    ATLAS: "ATLAS",
    SUBSCRIBE: "SUBSCRIBE",
    SUBSCRIBE_OK: "SUBSCRIBE_OK",
    DELTA_PUSH: "DELTA_PUSH",
    STATS: "STATS",
    SUB_DROPPED: "SUB_DROPPED",
    RETRY: "RETRY",
    TRACE_FETCH: "TRACE_FETCH",
    TRACE_DUMP: "TRACE_DUMP",
    ERROR: "ERROR",
}

#: HELLO capability flags
FLAG_SUBSCRIBE = 1
FLAG_STATS = 2
FLAG_AUTH = 4
FLAG_TRACE = 8

# -- wire error codes ------------------------------------------------------

E_MALFORMED = 1      # payload failed to parse (ProtocolError / CodecError)
E_UNSUPPORTED = 2    # frame type or feature the backend cannot serve
E_BACKEND = 3        # the prediction backend raised
E_UNAVAILABLE = 4    # requested data not servable (e.g. unknown atlas day)
E_TOO_LARGE = 5      # frame exceeded the negotiated max_frame
E_UNAUTHORIZED = 6   # HELLO auth token missing or wrong (gateway closes)
E_OVERLOADED = 7     # admission refused and no RETRY could be computed


def frame_name(ftype: int) -> str:
    return _FRAME_NAMES.get(ftype, f"type{ftype}")


# -- framing ---------------------------------------------------------------


def encode_frame(ftype: int, request_id: int, payload: bytes = b"") -> bytes:
    """One complete frame as a single ``bytes`` (writers emit a frame in
    one ``write()`` call, so concurrent pushes never interleave
    mid-frame)."""
    return _HEADER.pack(
        MAGIC, PROTOCOL_VERSION, ftype, request_id, len(payload)
    ) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte stream.

    ``feed(chunk)`` returns every complete ``(type, request_id,
    payload)`` frame the buffer now holds; partial frames wait for more
    bytes. Violations — wrong magic, unsupported version, a payload
    length past ``max_frame`` — raise
    :class:`~repro.errors.ProtocolError` immediately (the stream is
    unrecoverable past a framing error, so callers close the
    connection).
    """

    __slots__ = ("max_frame", "_buf")

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = int(max_frame)
        self._buf = bytearray()

    @property
    def buffered(self) -> int:
        """Bytes waiting for the rest of their frame."""
        return len(self._buf)

    def feed(self, chunk: bytes) -> list[tuple[int, int, bytes]]:
        self._buf += chunk
        frames: list[tuple[int, int, bytes]] = []
        while True:
            if len(self._buf) < HEADER_SIZE:
                return frames
            magic, version, ftype, request_id, length = _HEADER.unpack_from(
                self._buf
            )
            if magic != MAGIC:
                raise ProtocolError(f"bad frame magic {bytes(magic)!r}")
            if version != PROTOCOL_VERSION:
                raise ProtocolError(f"unsupported protocol version {version}")
            if length > self.max_frame:
                raise ProtocolError(
                    f"{frame_name(ftype)} frame of {length} bytes exceeds "
                    f"max_frame {self.max_frame}"
                )
            end = HEADER_SIZE + length
            if len(self._buf) < end:
                return frames
            payload = bytes(self._buf[HEADER_SIZE:end])
            del self._buf[:end]
            frames.append((ftype, request_id, payload))


# -- payload primitives ----------------------------------------------------

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_PAIR = struct.Struct("<qq")
_PATH_FIXED = struct.Struct("<ddqB")  # latency_ms, loss, as_hops, used_from_src
_CONFIG = struct.Struct("<BBBBi")


class _Reader:
    """Bounds-checked cursor over one frame payload; every short read
    raises :class:`~repro.errors.ProtocolError` instead of
    ``struct.error``."""

    __slots__ = ("data", "off")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.off = 0

    def take(self, packer: struct.Struct) -> tuple:
        end = self.off + packer.size
        if end > len(self.data):
            raise ProtocolError("truncated payload")
        values = packer.unpack_from(self.data, self.off)
        self.off = end
        return values

    def take_bytes(self, n: int) -> bytes:
        end = self.off + n
        if n < 0 or end > len(self.data):
            raise ProtocolError("truncated payload")
        chunk = self.data[self.off : end]
        self.off = end
        return chunk

    @property
    def remaining(self) -> int:
        return len(self.data) - self.off

    def finish(self) -> None:
        if self.off != len(self.data):
            raise ProtocolError(
                f"{len(self.data) - self.off} trailing bytes in payload"
            )


def _pack_str(text: str | None) -> bytes:
    if text is None:
        return _U16.pack(0xFFFF)
    raw = text.encode("utf-8")
    if len(raw) >= 0xFFFF:
        raise ProtocolError("string field too long")
    return _U16.pack(len(raw)) + raw


def _read_str(r: _Reader) -> str | None:
    (n,) = r.take(_U16)
    if n == 0xFFFF:
        return None
    try:
        return r.take_bytes(n).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"undecodable string field: {exc}") from exc


def _pack_id_tuple(ids: tuple[int, ...]) -> bytes:
    # int() coercion: the vectorized batch paths return numpy scalars,
    # which struct refuses for some format codes
    return _U32.pack(len(ids)) + b"".join(_I64.pack(int(i)) for i in ids)


def _read_id_tuple(r: _Reader) -> tuple[int, ...]:
    (n,) = r.take(_U32)
    return tuple(r.take(_I64)[0] for _ in range(n))


# -- PredictorConfig -------------------------------------------------------


def pack_config(config: PredictorConfig | None) -> bytes:
    """Optional ablation config (None = the backend's shared default)."""
    if config is None:
        return _U8.pack(0)
    return _U8.pack(1) + _CONFIG.pack(
        config.use_from_src,
        config.use_three_tuples,
        config.use_preferences,
        config.use_providers,
        config.tuple_degree_threshold,
    )


def _read_config(r: _Reader) -> PredictorConfig | None:
    (present,) = r.take(_U8)
    if not present:
        return None
    from_src, tuples_, prefs, providers, threshold = r.take(_CONFIG)
    return PredictorConfig(
        use_from_src=bool(from_src),
        use_three_tuples=bool(tuples_),
        use_preferences=bool(prefs),
        use_providers=bool(providers),
        tuple_degree_threshold=threshold,
    )


# -- PredictedPath / PathInfo ----------------------------------------------


def pack_path(path: PredictedPath | None) -> bytes:
    """One optional path; floats travel as raw float64 (lossless — the
    bit-for-bit remote/co-located equivalence depends on it)."""
    if path is None:
        return _U8.pack(0)
    # float()/int()/bool() coercions are exact (float64 -> float keeps
    # every bit) and make numpy-scalar fields from the vectorized batch
    # paths packable
    return (
        _U8.pack(1)
        + _PATH_FIXED.pack(
            float(path.latency_ms),
            float(path.loss),
            int(path.as_hops),
            bool(path.used_from_src),
        )
        + _pack_id_tuple(path.clusters)
        + _pack_id_tuple(path.as_path)
    )


def _read_path(r: _Reader) -> PredictedPath | None:
    (present,) = r.take(_U8)
    if not present:
        return None
    latency_ms, loss, as_hops, used_from_src = r.take(_PATH_FIXED)
    clusters = _read_id_tuple(r)
    as_path = _read_id_tuple(r)
    return PredictedPath(
        clusters=clusters,
        as_path=as_path,
        latency_ms=latency_ms,
        loss=loss,
        as_hops=int(as_hops),
        used_from_src=bool(used_from_src),
    )


def pack_path_info(info) -> bytes:
    """One optional :class:`~repro.client.query.PathInfo`."""
    if info is None:
        return _U8.pack(0)
    day = info.atlas_day
    return (
        _U8.pack(1)
        + _PAIR.pack(int(info.src_prefix_index), int(info.dst_prefix_index))
        + _U8.pack(day is not None)
        + _I64.pack(int(day) if day is not None else 0)
        + pack_path(info.forward)
        + pack_path(info.reverse)
    )


def _read_path_info(r: _Reader):
    from repro.client.query import PathInfo

    (present,) = r.take(_U8)
    if not present:
        return None
    src, dst = r.take(_PAIR)
    (has_day,) = r.take(_U8)
    (day,) = r.take(_I64)
    forward = _read_path(r)
    reverse = _read_path(r)
    if forward is None or reverse is None:
        raise ProtocolError("PathInfo frame missing a direction")
    return PathInfo(
        src_prefix_index=src,
        dst_prefix_index=dst,
        forward=forward,
        reverse=reverse,
        atlas_day=day if has_day else None,
    )


# -- trace context ---------------------------------------------------------

#: the optional trailing TRACE field on query requests: one tag byte
#: (so trailing garbage still raises a typed error instead of parsing
#: as ids) plus the u64 trace id and u64 parent span id
_TRACE_TAG = 0x54  # ASCII 'T'
_TRACE = struct.Struct("<BQQ")


def pack_trace(trace) -> bytes:
    """The optional trailing TRACE field: empty for ``None`` (the
    payload stays byte-identical to a pre-trace peer's), else the
    tagged ``(trace_id, parent_span_id)`` pair. Only clients that
    negotiated ``FLAG_TRACE`` may append it — an old gateway's strict
    ``finish()`` rejects trailing bytes."""
    if trace is None:
        return b""
    trace_id, span_id = trace
    return _TRACE.pack(_TRACE_TAG, trace_id, span_id)


def _read_trace(r: _Reader) -> tuple[int, int] | None:
    """The trailing TRACE field, if any bytes remain past the base
    payload; wrong size or tag raises :class:`ProtocolError`."""
    if r.remaining == 0:
        return None
    tag, trace_id, span_id = r.take(_TRACE)
    if tag != _TRACE_TAG:
        raise ProtocolError(f"bad trace field tag 0x{tag:02x}")
    return trace_id, span_id


def peek_trace(payload: bytes) -> tuple[int, int] | None:
    """Best-effort tail sniff of a trace context without decoding the
    payload — for paths that must stay O(1) in payload size, like the
    gateway's pre-decode admission refusal (which still wants the
    refusal to appear in the trace). A payload whose last 17 bytes
    happen to look like a trace field can fool this; full decodes use
    the strict ``decode_*_traced`` readers instead."""
    if len(payload) < _TRACE.size or payload[-_TRACE.size] != _TRACE_TAG:
        return None
    _, trace_id, span_id = _TRACE.unpack(payload[-_TRACE.size:])
    return trace_id, span_id


# -- HELLO / WELCOME -------------------------------------------------------


def encode_hello(flags: int = 0, token: str | None = None) -> bytes:
    """Version + capability flags, plus an optional shared-secret auth
    token. Passing a token sets ``FLAG_AUTH`` and appends the string
    field; without one the payload is the classic fixed 3 bytes."""
    if token is not None:
        flags |= FLAG_AUTH
        return struct.pack("<HB", PROTOCOL_VERSION, flags) + _pack_str(token)
    return struct.pack("<HB", PROTOCOL_VERSION, flags)


def decode_hello(payload: bytes) -> tuple[int, int, str | None]:
    r = _Reader(payload)
    version, flags = r.take(struct.Struct("<HB"))
    token = _read_str(r) if flags & FLAG_AUTH else None
    r.finish()
    return version, flags, token


def encode_welcome(
    day: int, subscribed: bool, backend: str, caps: int = 0
) -> bytes:
    """``caps`` advertises the gateway's optional capabilities
    (``FLAG_TRACE``) as a trailing byte — appended only when non-zero,
    and the gateway sets it only for clients whose HELLO carried
    ``FLAG_TRACE``, so a pre-trace client's WELCOME stays the classic
    bytes its strict decoder expects."""
    base = _I64.pack(day) + _U8.pack(subscribed) + _pack_str(backend)
    if caps:
        return base + _U8.pack(caps)
    return base


def decode_welcome(payload: bytes) -> tuple[int, bool, str]:
    r = _Reader(payload)
    (day,) = r.take(_I64)
    (subscribed,) = r.take(_U8)
    backend = _read_str(r) or ""
    r.finish()
    return day, bool(subscribed), backend


def decode_welcome_caps(payload: bytes) -> tuple[int, bool, str, int]:
    """The trace-capable client's WELCOME decode: same fields plus the
    optional trailing capability byte (0 when absent — an old gateway
    that never appends one)."""
    r = _Reader(payload)
    (day,) = r.take(_I64)
    (subscribed,) = r.take(_U8)
    backend = _read_str(r) or ""
    caps = r.take(_U8)[0] if r.remaining else 0
    r.finish()
    return day, bool(subscribed), backend, caps


# -- PREDICT / PREDICT_BATCH -----------------------------------------------


def encode_predict_request(
    src: int, dst: int, config: PredictorConfig | None = None, trace=None
) -> bytes:
    return pack_config(config) + _PAIR.pack(src, dst) + pack_trace(trace)


def decode_predict_request(payload: bytes):
    """The classic (pre-``FLAG_TRACE``) decode: rejects a trailing
    TRACE field like any other trailing bytes — exactly what an old
    peer does, which is why the client only appends one after
    negotiating the capability."""
    src, dst, config, trace = decode_predict_request_traced(payload)
    if trace is not None:
        raise ProtocolError("unexpected trace field (FLAG_TRACE not negotiated)")
    return src, dst, config


def decode_predict_request_traced(payload: bytes):
    r = _Reader(payload)
    config = _read_config(r)
    src, dst = r.take(_PAIR)
    trace = _read_trace(r)
    r.finish()
    return src, dst, config, trace


def encode_predict_reply(path: PredictedPath | None) -> bytes:
    return pack_path(path)


def decode_predict_reply(payload: bytes) -> PredictedPath | None:
    r = _Reader(payload)
    path = _read_path(r)
    r.finish()
    return path


def encode_batch_request(
    pairs,
    config: PredictorConfig | None = None,
    client: str | None = None,
    trace=None,
) -> bytes:
    pairs = list(pairs)
    return (
        pack_config(config)
        + _pack_str(client)
        + _U32.pack(len(pairs))
        + b"".join(_PAIR.pack(s, d) for s, d in pairs)
        + pack_trace(trace)
    )


def decode_batch_request(payload: bytes):
    """Classic decode; a trailing TRACE field is a protocol error here
    (see :func:`decode_predict_request`)."""
    pairs, config, client, trace = decode_batch_request_traced(payload)
    if trace is not None:
        raise ProtocolError("unexpected trace field (FLAG_TRACE not negotiated)")
    return pairs, config, client


def decode_batch_request_traced(payload: bytes):
    r = _Reader(payload)
    config = _read_config(r)
    client = _read_str(r)
    (n,) = r.take(_U32)
    pairs = [r.take(_PAIR) for _ in range(n)]
    trace = _read_trace(r)
    r.finish()
    return pairs, config, client, trace


def encode_batch_reply(paths) -> bytes:
    paths = list(paths)
    return _U32.pack(len(paths)) + b"".join(pack_path(p) for p in paths)


def decode_batch_reply(payload: bytes) -> list[PredictedPath | None]:
    r = _Reader(payload)
    (n,) = r.take(_U32)
    paths = [_read_path(r) for _ in range(n)]
    r.finish()
    return paths


# -- QUERY_INFO ------------------------------------------------------------

# request payload shares the batch-request packing
encode_query_request = encode_batch_request
decode_query_request = decode_batch_request
decode_query_request_traced = decode_batch_request_traced


def encode_query_reply(infos) -> bytes:
    infos = list(infos)
    return _U32.pack(len(infos)) + b"".join(pack_path_info(i) for i in infos)


def decode_query_reply(payload: bytes) -> list:
    r = _Reader(payload)
    (n,) = r.take(_U32)
    infos = [_read_path_info(r) for _ in range(n)]
    r.finish()
    return infos


# -- ATLAS_FETCH / SUBSCRIBE -----------------------------------------------


def encode_atlas_fetch(day: int | None = None) -> bytes:
    return _I64.pack(-1 if day is None else day)


def decode_atlas_fetch(payload: bytes) -> int | None:
    r = _Reader(payload)
    (day,) = r.take(_I64)
    r.finish()
    return None if day == -1 else day


def encode_subscribe(on: bool = True) -> bytes:
    return _U8.pack(on)


def decode_subscribe(payload: bytes) -> bool:
    r = _Reader(payload)
    (on,) = r.take(_U8)
    r.finish()
    return bool(on)


def encode_subscribe_ok(day: int, subscribed: bool) -> bytes:
    return _I64.pack(day) + _U8.pack(subscribed)


def decode_subscribe_ok(payload: bytes) -> tuple[int, bool]:
    r = _Reader(payload)
    (day,) = r.take(_I64)
    (subscribed,) = r.take(_U8)
    r.finish()
    return day, bool(subscribed)


def encode_sub_dropped(day: int, reason: str) -> bytes:
    return _I64.pack(day) + _pack_str(reason[:2000])


def decode_sub_dropped(payload: bytes) -> tuple[int, str]:
    r = _Reader(payload)
    (day,) = r.take(_I64)
    reason = _read_str(r) or ""
    r.finish()
    return day, reason


# -- RETRY -----------------------------------------------------------------


def encode_retry(retry_after_s: float, reason: str) -> bytes:
    """An admission shed notice: try again after ``retry_after_s``
    seconds. Same ``request_id`` as the refused query frame."""
    return _F64.pack(float(retry_after_s)) + _pack_str(reason[:2000])


def decode_retry(payload: bytes) -> tuple[float, str]:
    r = _Reader(payload)
    (retry_after_s,) = r.take(_F64)
    reason = _read_str(r) or ""
    r.finish()
    return retry_after_s, reason


# -- TRACE_FETCH / TRACE_DUMP ----------------------------------------------

_U64 = struct.Struct("<Q")
_SPAN_IDS = struct.Struct("<QQQ")  # trace_id, span_id, parent_id
_SPAN_TIMES = struct.Struct("<dd")  # start_us, duration_us


def encode_trace_fetch(trace_id: int) -> bytes:
    """Ask the gateway for every span it (and its backend) recorded
    for one trace id — the STATS_DUMP-style retrieval behind
    ``NetworkClient.fetch_trace``."""
    return _U64.pack(trace_id)


def decode_trace_fetch(payload: bytes) -> int:
    r = _Reader(payload)
    (trace_id,) = r.take(_U64)
    r.finish()
    return trace_id


def encode_trace_dump(spans) -> bytes:
    """A span list reply: ids + times + name + string tags per span.
    Accepts any objects with the :class:`repro.obs.trace.Span` fields
    (this module stays import-light: no obs dependency)."""
    spans = list(spans)
    parts = [_U32.pack(len(spans))]
    for span in spans:
        tags = span.tags
        if len(tags) > 255:
            raise ProtocolError("too many span tags")
        parts.append(
            _SPAN_IDS.pack(span.trace_id, span.span_id, span.parent_id)
        )
        parts.append(_pack_str(span.name))
        parts.append(
            _SPAN_TIMES.pack(float(span.start_us), float(span.duration_us))
        )
        parts.append(_U8.pack(len(tags)))
        for key, value in tags.items():
            parts.append(_pack_str(str(key)))
            parts.append(_pack_str(str(value)))
    return b"".join(parts)


def decode_trace_dump(payload: bytes) -> list[dict]:
    """Span dicts (``trace_id``/``span_id``/``parent_id``/``name``/
    ``start_us``/``duration_us``/``tags``); the client rebuilds
    :class:`repro.obs.trace.Span` objects from them."""
    r = _Reader(payload)
    (n,) = r.take(_U32)
    spans = []
    for _ in range(n):
        trace_id, span_id, parent_id = r.take(_SPAN_IDS)
        name = _read_str(r) or ""
        start_us, duration_us = r.take(_SPAN_TIMES)
        (ntags,) = r.take(_U8)
        tags = {}
        for _ in range(ntags):
            key = _read_str(r) or ""
            tags[key] = _read_str(r) or ""
        spans.append(
            {
                "trace_id": trace_id,
                "span_id": span_id,
                "parent_id": parent_id,
                "name": name,
                "start_us": start_us,
                "duration_us": duration_us,
                "tags": tags,
            }
        )
    r.finish()
    return spans


# -- STATS -----------------------------------------------------------------

#: elapsed_us, searches, cache_hits, search_us, reused, repaired,
#: replayed, dirty, push_encode_us, push_enqueue_us, push_drain_us,
#: queue_depth, inflight, req_p50_us, req_p99_us — fixed layout so the
#: frame stays cheap to emit on every request. The three ``push_*``
#: floats mirror the gateway's last delta broadcast (encode once /
#: enqueue fan-out / slowest subscriber drain), zero until the gateway
#: has pushed a delta. The final four are the load telemetry an
#: autoscaler reads: queued + in-flight work at the backend and the
#: rolling request-latency percentiles (zero for backends that don't
#: track them).
_STATS = struct.Struct("<dqqdqqqqdddqqdd")

#: key order of the STATS payload (shared by encode and decode)
STATS_FIELDS = (
    "elapsed_us",
    "searches",
    "cache_hits",
    "search_us",
    "reused",
    "repaired",
    "replayed",
    "dirty",
    "push_encode_us",
    "push_enqueue_us",
    "push_drain_us",
    "queue_depth",
    "inflight",
    "req_p50_us",
    "req_p99_us",
)


def encode_stats(stats: dict) -> bytes:
    """One per-request kernel-telemetry payload; missing keys encode as
    zero so a backend without a given counter still emits a well-formed
    frame."""
    return _STATS.pack(
        float(stats.get("elapsed_us", 0.0)),
        int(stats.get("searches", 0)),
        int(stats.get("cache_hits", 0)),
        float(stats.get("search_us", 0.0)),
        int(stats.get("reused", 0)),
        int(stats.get("repaired", 0)),
        int(stats.get("replayed", 0)),
        int(stats.get("dirty", 0)),
        float(stats.get("push_encode_us", 0.0)),
        float(stats.get("push_enqueue_us", 0.0)),
        float(stats.get("push_drain_us", 0.0)),
        int(stats.get("queue_depth", 0)),
        int(stats.get("inflight", 0)),
        float(stats.get("req_p50_us", 0.0)),
        float(stats.get("req_p99_us", 0.0)),
    )


def decode_stats(payload: bytes) -> dict:
    r = _Reader(payload)
    values = r.take(_STATS)
    r.finish()
    return dict(zip(STATS_FIELDS, values))


# -- ERROR -----------------------------------------------------------------


def encode_error(code: int, message: str) -> bytes:
    return _U16.pack(code) + _pack_str(message[:2000])


def decode_error(payload: bytes) -> tuple[int, str]:
    r = _Reader(payload)
    (code,) = r.take(_U16)
    message = _read_str(r) or ""
    r.finish()
    return code, message
