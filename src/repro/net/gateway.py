"""The network gateway: asyncio front-end over the prediction backends.

The paper's deployment model is a *service*: remote hosts that hold no
atlas send path queries over the network, and one daily delta ships to
every full client. Everything below this module answers queries only
in-process (``repro.runtime``) or over ``multiprocessing`` pipes
(``repro.serve``); :class:`NetworkGateway` is the node boundary —

* it listens on **TCP and unix-domain sockets** simultaneously (one
  gateway, both transports, same protocol bytes);
* each connection speaks the length-prefixed binary frames of
  :mod:`repro.net.protocol`, **pipelined**: a client may send any
  number of requests before reading replies, and the gateway answers
  in order with matching request ids;
* requests fan out to a backend — a sharded
  :class:`~repro.serve.service.PredictionService` or a single-process
  :class:`~repro.client.server.AtlasServer` — through a **single-thread
  executor bridge**: the asyncio loop never blocks on a prediction, and
  the backends (whose pipe protocol and predictor pool are not
  thread-safe) see exactly one caller thread;
* **backpressure** is structural: a connection's frames are processed
  in arrival order and the socket is only read between requests, so a
  client that pipelines faster than the backend answers fills the
  kernel's TCP window instead of gateway memory. Frame sizes are capped
  by ``max_frame`` and a decoder violation closes the connection;
* **delta broadcast**: :meth:`push_delta` applies one day's
  :class:`~repro.atlas.delta.AtlasDelta` to the backend, then pushes the
  encoded ``INDB`` payload (the same broadcast codec the sharded fleet
  uses internally) to every subscribed connection, where a
  bootstrapped :class:`~repro.net.client.NetworkClient` applies it
  through its local runtime's in-place patch + warm-start path.

Run it synchronously from tests and applications: :meth:`start` spawns
a daemon thread owning the event loop and returns once the listeners
are bound; :meth:`close` tears everything down. The gateway is
observation-equivalent to its backend — a networked client's answers
are bit-for-bit the co-located answers (``tests/test_net_equivalence.py``
drives TCP and UDS clients through the full churn chain against a
co-located oracle).
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.atlas.serialization import encode_atlas, encode_delta
from repro.client.query import combine_batches
from repro.errors import (
    AtlasError,
    CodecError,
    NetworkError,
    ProtocolError,
    ReproError,
)
from repro.net import protocol as P

__all__ = ["NetworkGateway"]

_READ_CHUNK = 64 * 1024


# -- backend adapters ------------------------------------------------------


class _ServiceBackend:
    """Bridge to a sharded :class:`~repro.serve.service.PredictionService`."""

    name = "service"

    def __init__(self, service) -> None:
        self.service = service
        #: (day, encoded payload) bootstrap anchor, captured at first
        #: fetch; later fetches reuse it and the gateway replays its
        #: pushed-delta log on top (exact: the INNA atlas codec
        #: quantizes, so re-encoding a delta-evolved atlas would fork
        #: the client from the fleet — anchor + lossless INDB deltas
        #: lands bit-for-bit). All calls ride the bridge thread, so no
        #: locking.
        self._anchor: tuple[int, bytes] | None = None

    @property
    def day(self) -> int:
        return self.service.day

    def predict_batch(self, pairs, config, client):
        return self.service.predict_batch(pairs, config, client)

    def query_batch(self, pairs, config, client):
        return self.service.query_batch(pairs, config, client)

    def atlas_bytes(self, day: int | None) -> tuple[int, bytes]:
        """The bootstrap anchor ``(day, payload)``; the gateway replays
        newer pushed deltas on top so the client lands on the current
        day."""
        current = self.service.day
        if day is not None and day != current:
            raise AtlasError(
                f"service serves day {current}, cannot bootstrap day {day}"
            )
        if self._anchor is None:
            self._anchor = (current, encode_atlas(self.service.atlas))
        return self._anchor

    def apply_delta(self, delta, payload: bytes) -> int:
        # the push payload doubles as the shard broadcast payload
        self.service.apply_delta(delta, payload=payload)
        return self.service.day

    def kernel_sample(self):
        """The kernels live in the shard worker processes; sampling them
        per request would cost a pipe round-trip per query, so STATS
        frames from a service backend carry wall time only (the worker
        ``stats`` op exposes the per-shard kernel counters offline)."""
        return None


class _ServerBackend:
    """Bridge to a single-process :class:`~repro.client.server.AtlasServer`.

    Queries answer through the server's own shared runtime (one
    compiled graph + one pooled search cache with every co-located
    consumer — which is what makes the remote/co-located equivalence
    bit-for-bit trivial to audit)."""

    name = "server"

    def __init__(self, server) -> None:
        self.server = server

    @property
    def _runtime(self):
        return self.server.runtime()

    @property
    def day(self) -> int:
        return self._runtime.atlas.day

    def predict_batch(self, pairs, config, client):
        if client is not None:
            raise ProtocolError(
                "client-scoped queries need a sharded service backend"
            )
        return self._runtime.pool.predictor(config).predict_batch(list(pairs))

    def query_batch(self, pairs, config, client):
        if client is not None:
            raise ProtocolError(
                "client-scoped queries need a sharded service backend"
            )
        runtime = self._runtime
        return combine_batches(
            pairs,
            runtime.pool.predictor(config).predict_batch,
            runtime.atlas.day,
        )

    def atlas_bytes(self, day: int | None) -> tuple[int, bytes]:
        """The published payload as the bootstrap anchor; when pushes
        have advanced the runtime past the latest *published* day, the
        gateway's delta-log replay carries the client the rest of the
        way (the INNA codec quantizes, so only anchor + lossless INDB
        deltas reproduces the runtime's exact atlas)."""
        if day is None:
            day = self.server.latest_day()
        return day, self.server.full_atlas_bytes(day)

    def apply_delta(self, delta, payload: bytes) -> int:
        # server.runtime() rolls itself through the server's published
        # delta chain, so a delta that was published before being pushed
        # is already applied by the time we get here — push-only then
        runtime = self._runtime
        if runtime.atlas.day < delta.new_day:
            runtime.apply_delta(delta)
        return runtime.atlas.day

    def kernel_sample(self):
        """A snapshot of the shared pool's kernel counters plus the
        repair-class counts of the last applied delta; the gateway
        differences two snapshots to attribute kernel work per request.
        Runs on the bridge thread, like every backend call."""
        pool = self._runtime.pool
        return pool.kernel_stats(), dict(pool.last_repair)


def _resolve_backend(backend):
    if hasattr(backend, "shard_snapshots"):  # PredictionService
        return _ServiceBackend(backend)
    if hasattr(backend, "full_atlas_bytes"):  # AtlasServer
        return _ServerBackend(backend)
    if hasattr(backend, "atlas_bytes") and hasattr(backend, "predict_batch"):
        return backend  # pre-built adapter (tests)
    raise TypeError(
        f"cannot serve {type(backend).__name__}: expected a "
        "PredictionService or AtlasServer"
    )


# -- connection state ------------------------------------------------------


class _Conn:
    __slots__ = ("writer", "peer", "subscribed", "stats", "hello_done")

    def __init__(self, writer, peer: str) -> None:
        self.writer = writer
        self.peer = peer
        self.subscribed = False
        #: FLAG_STATS negotiated: every successful query reply is
        #: followed by a STATS frame with the same request id
        self.stats = False
        self.hello_done = False


class NetworkGateway:
    """Serves the wire protocol on TCP and/or unix-domain sockets."""

    def __init__(
        self,
        backend,
        *,
        tcp: tuple[str, int] | None = None,
        uds: str | None = None,
        max_frame: int = P.DEFAULT_MAX_FRAME,
        hello_timeout: float = 10.0,
    ) -> None:
        if tcp is None and uds is None:
            raise ValueError("gateway needs a TCP address and/or a UDS path")
        self.backend = _resolve_backend(backend)
        self._tcp_request = tcp
        self._uds_request = uds
        self.max_frame = int(max_frame)
        self.hello_timeout = hello_timeout
        self.tcp_address: tuple[str, int] | None = None
        self.uds_path: str | None = None
        # one bridge thread: the backends assume a single caller thread
        self._bridge = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="inano-gateway"
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._servers: list = []
        self._conns: set[_Conn] = set()
        #: every delta pushed through this gateway, in order
        #: ``(new_day, encoded payload)`` — replayed after an ATLAS
        #: reply so a bootstrap anchored on an older payload still
        #: lands, losslessly, on the current day
        self._delta_log: list[tuple[int, bytes]] = []
        self._closed = False
        self.stats = {
            "connections_total": 0,
            "connections_open": 0,
            "frames_in": 0,
            "frames_out": 0,
            "requests": 0,
            "errors_sent": 0,
            "bytes_in": 0,
            "bytes_out": 0,
            "deltas_pushed": 0,
            "push_frames": 0,
            "stats_frames": 0,
            "atlas_bytes_served": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "NetworkGateway":
        """Bind the listeners on a background event-loop thread; returns
        once both endpoints are accepting (or raises what binding
        raised)."""
        if self._thread is not None:
            raise NetworkError("gateway already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="inano-gateway-loop", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._startup_error is not None:
            self._thread.join(timeout=5.0)
            raise self._startup_error
        if not self._started.is_set():
            raise NetworkError("gateway failed to start in time")
        return self

    def __enter__(self) -> "NetworkGateway":
        return self.start() if self._thread is None else self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._bind())
        except BaseException as exc:
            self._startup_error = exc
            # a partial bind (TCP up, UDS failed) must not leak the
            # listeners that did bind
            with contextlib.suppress(Exception):
                loop.run_until_complete(self._teardown())
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self._teardown())
            loop.close()

    async def _bind(self) -> None:
        if self._tcp_request is not None:
            host, port = self._tcp_request
            server = await asyncio.start_server(self._serve_conn, host, port)
            self.tcp_address = server.sockets[0].getsockname()[:2]
            self._servers.append(server)
        if self._uds_request is not None:
            server = await asyncio.start_unix_server(
                self._serve_conn, path=self._uds_request
            )
            self.uds_path = self._uds_request
            self._servers.append(server)

    async def _teardown(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        for conn in list(self._conns):
            with contextlib.suppress(Exception):
                conn.writer.close()
        self._conns.clear()
        tasks = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def close(self) -> None:
        """Stop the listeners, close every connection, join the loop
        thread, and remove the UDS socket file. Idempotent."""
        if self._closed:
            return
        self._closed = True
        # _loop may already be closed when start() failed to bind
        if (
            self._loop is not None
            and self._thread is not None
            and not self._loop.is_closed()
        ):
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
        self._bridge.shutdown(wait=False)
        if self.uds_path:
            with contextlib.suppress(OSError):
                os.unlink(self.uds_path)

    # -- delta broadcast ---------------------------------------------------

    def push_delta(self, delta) -> dict:
        """Apply one daily delta to the backend, then push the encoded
        broadcast to every subscribed connection. Thread-safe (callable
        from any thread while the loop runs). Returns ``{"day",
        "wire_bytes", "subscribers"}``."""
        if self._loop is None or self._closed:
            raise NetworkError("gateway is not running")
        future = asyncio.run_coroutine_threadsafe(
            self._push_delta(delta), self._loop
        )
        return future.result()

    async def _push_delta(self, delta) -> dict:
        loop = asyncio.get_running_loop()
        payload = encode_delta(delta)  # one encode: shard fan-out + pushes
        day = await loop.run_in_executor(
            self._bridge, self.backend.apply_delta, delta, payload
        )
        self._delta_log.append((delta.new_day, payload))
        frame = P.encode_frame(P.DELTA_PUSH, 0, payload)
        receivers = [conn for conn in self._conns if conn.subscribed]
        for conn in receivers:
            with contextlib.suppress(Exception):
                conn.writer.write(frame)
        for conn in receivers:
            with contextlib.suppress(Exception):
                await conn.writer.drain()
        self.stats["deltas_pushed"] += 1
        self.stats["push_frames"] += len(receivers)
        self.stats["bytes_out"] += len(frame) * len(receivers)
        self.stats["frames_out"] += len(receivers)
        return {
            "day": day,
            "wire_bytes": len(payload),
            "subscribers": len(receivers),
        }

    # -- connection handling -----------------------------------------------

    async def _serve_conn(self, reader, writer) -> None:
        peername = writer.get_extra_info("peername")
        conn = _Conn(writer, peer=repr(peername))
        self._conns.add(conn)
        self.stats["connections_total"] += 1
        self.stats["connections_open"] += 1
        decoder = P.FrameDecoder(max_frame=self.max_frame)
        try:
            pending: list[tuple[int, int, bytes]] = []
            deadline = asyncio.get_running_loop().time() + self.hello_timeout
            while True:
                while not pending:
                    if conn.hello_done:
                        timeout = None
                    else:
                        # hard deadline: trickling bytes must not extend it
                        timeout = deadline - asyncio.get_running_loop().time()
                        if timeout <= 0:
                            raise asyncio.TimeoutError
                    chunk = await asyncio.wait_for(
                        reader.read(_READ_CHUNK), timeout=timeout
                    )
                    if not chunk:
                        return  # clean EOF
                    self.stats["bytes_in"] += len(chunk)
                    pending.extend(decoder.feed(chunk))
                # Requests are answered strictly in arrival order; the
                # socket is not read again until this batch drains
                # (per-connection backpressure).
                for ftype, request_id, payload in pending:
                    self.stats["frames_in"] += 1
                    await self._handle_frame(conn, ftype, request_id, payload)
                pending.clear()
        except (asyncio.TimeoutError, TimeoutError):
            # best effort: the peer may already be gone
            with contextlib.suppress(Exception):
                await self._send_error(
                    conn, 0, P.E_MALFORMED, "no HELLO before timeout"
                )
        except ProtocolError as exc:
            # framing is unrecoverable: report and drop the connection
            with contextlib.suppress(Exception):
                await self._send_error(conn, 0, P.E_MALFORMED, str(exc))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._conns.discard(conn)
            self.stats["connections_open"] -= 1
            # asyncio.CancelledError: loop teardown cancels us mid-wait
            with contextlib.suppress(Exception, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _send(self, conn: _Conn, frame: bytes) -> None:
        conn.writer.write(frame)
        self.stats["frames_out"] += 1
        self.stats["bytes_out"] += len(frame)
        await conn.writer.drain()

    async def _send_error(
        self, conn: _Conn, request_id: int, code: int, message: str
    ) -> None:
        self.stats["errors_sent"] += 1
        await self._send(
            conn, P.encode_frame(P.ERROR, request_id, P.encode_error(code, message))
        )

    async def _call(self, fn, *args):
        """Run one backend call on the bridge thread."""
        return await asyncio.get_running_loop().run_in_executor(
            self._bridge, fn, *args
        )

    async def _timed_call(self, conn: _Conn, fn, *args):
        """One backend query on the bridge thread, returning ``(result,
        stats)``. ``stats`` is None unless the connection negotiated
        ``FLAG_STATS``; then it holds the request's wall time plus —
        when the backend exposes :meth:`kernel_sample` counters — the
        search-kernel deltas this request caused and the repair-class
        counts of the last applied day. Sampling happens on the bridge
        thread around the call itself, so the counters (which are not
        thread-safe) see exactly one reader and the deltas attribute
        cleanly to this request (the bridge serializes requests)."""
        if not conn.stats:
            return await self._call(fn, *args), None
        sample = getattr(self.backend, "kernel_sample", None)

        def run():
            before = sample() if sample is not None else None
            t0 = time.perf_counter()
            result = fn(*args)
            stats = {"elapsed_us": (time.perf_counter() - t0) * 1e6}
            if before is not None:
                counters0, _ = before
                counters1, repair = sample()
                stats["searches"] = counters1["searches"] - counters0["searches"]
                stats["cache_hits"] = counters1["hits"] - counters0["hits"]
                stats["search_us"] = (
                    counters1["search_us"] - counters0["search_us"]
                )
                for key in ("reused", "repaired", "replayed", "dirty"):
                    stats[key] = repair.get(key, 0)
            return result, stats

        return await asyncio.get_running_loop().run_in_executor(
            self._bridge, run
        )

    async def _send_stats(
        self, conn: _Conn, request_id: int, stats: dict | None
    ) -> None:
        if stats is None:
            return
        self.stats["stats_frames"] += 1
        await self._send(
            conn, P.encode_frame(P.STATS, request_id, P.encode_stats(stats))
        )

    async def _handle_frame(
        self, conn: _Conn, ftype: int, request_id: int, payload: bytes
    ) -> None:
        if not conn.hello_done:
            if ftype != P.HELLO:
                raise ProtocolError(
                    f"first frame must be HELLO, got {P.frame_name(ftype)}"
                )
            version, flags = P.decode_hello(payload)
            if version != P.PROTOCOL_VERSION:
                raise ProtocolError(f"client speaks protocol {version}")
            conn.hello_done = True
            conn.subscribed = bool(flags & P.FLAG_SUBSCRIBE)
            conn.stats = bool(flags & P.FLAG_STATS)
            day = await self._call(lambda: self.backend.day)
            await self._send(
                conn,
                P.encode_frame(
                    P.WELCOME,
                    request_id,
                    P.encode_welcome(day, conn.subscribed, self.backend.name),
                ),
            )
            return
        self.stats["requests"] += 1
        try:
            await self._dispatch(conn, ftype, request_id, payload)
        except (ProtocolError, CodecError) as exc:
            await self._send_error(conn, request_id, P.E_MALFORMED, str(exc))
        except AtlasError as exc:
            await self._send_error(conn, request_id, P.E_UNAVAILABLE, str(exc))
        except ReproError as exc:
            await self._send_error(conn, request_id, P.E_BACKEND, repr(exc))
        except Exception as exc:  # keep the connection serving
            await self._send_error(conn, request_id, P.E_BACKEND, repr(exc))

    async def _dispatch(
        self, conn: _Conn, ftype: int, request_id: int, payload: bytes
    ) -> None:
        if ftype == P.PREDICT:
            src, dst, config = P.decode_predict_request(payload)
            paths, stats = await self._timed_call(
                conn, self.backend.predict_batch, [(src, dst)], config, None
            )
            await self._send(
                conn,
                P.encode_frame(
                    P.PREDICT_OK, request_id, P.encode_predict_reply(paths[0])
                ),
            )
            await self._send_stats(conn, request_id, stats)
        elif ftype == P.PREDICT_BATCH:
            pairs, config, client = P.decode_batch_request(payload)
            paths, stats = await self._timed_call(
                conn, self.backend.predict_batch, pairs, config, client
            )
            await self._send(
                conn,
                P.encode_frame(
                    P.PREDICT_BATCH_OK, request_id, P.encode_batch_reply(paths)
                ),
            )
            await self._send_stats(conn, request_id, stats)
        elif ftype == P.QUERY_INFO:
            pairs, config, client = P.decode_query_request(payload)
            infos, stats = await self._timed_call(
                conn, self.backend.query_batch, pairs, config, client
            )
            await self._send(
                conn,
                P.encode_frame(
                    P.QUERY_INFO_OK, request_id, P.encode_query_reply(infos)
                ),
            )
            await self._send_stats(conn, request_id, stats)
        elif ftype == P.ATLAS_FETCH:
            day = P.decode_atlas_fetch(payload)
            served_day, blob = await self._call(self.backend.atlas_bytes, day)
            self.stats["atlas_bytes_served"] += len(blob)
            await self._send(conn, P.encode_frame(P.ATLAS, request_id, blob))
            # catch-up replay: deltas pushed after the served anchor
            # follow the reply immediately, so the bootstrap lands on
            # the backend's current day bit for bit (the anchor codec
            # quantizes; the delta codec does not)
            for new_day, delta_payload in self._delta_log:
                if new_day > served_day:
                    await self._send(
                        conn, P.encode_frame(P.DELTA_PUSH, 0, delta_payload)
                    )
        elif ftype == P.SUBSCRIBE:
            conn.subscribed = P.decode_subscribe(payload)
            day = await self._call(lambda: self.backend.day)
            await self._send(
                conn,
                P.encode_frame(
                    P.SUBSCRIBE_OK,
                    request_id,
                    P.encode_subscribe_ok(day, conn.subscribed),
                ),
            )
        elif ftype == P.HELLO:
            raise ProtocolError("duplicate HELLO")
        else:
            await self._send_error(
                conn,
                request_id,
                P.E_UNSUPPORTED,
                f"unsupported frame {P.frame_name(ftype)}",
            )
